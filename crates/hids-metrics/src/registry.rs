//! The metric registry: families, label sets, and deterministic merge.
//!
//! A [`Registry`] is a plain value — no globals, no locks, no clocks.
//! Each worker owns its own registry (sharding), and the coordinator
//! folds the shards together with [`Registry::merge`] *in input order*.
//! Because counters and histogram buckets accumulate integers, the merge
//! commutes and associates exactly, and because every map is a `BTreeMap`
//! the rendered snapshot is a pure function of the work performed —
//! byte-identical no matter how many threads did it.
//!
//! Wall-clock measurements cannot satisfy that contract, so they live in
//! a separate *volatile* section ([`Registry::volatile_add`]) that the
//! default render excludes.

use std::collections::BTreeMap;

use crate::events::EventRing;
use crate::histogram::Histogram;

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone saturating `u64` total.
    Counter,
    /// Point-in-time `i64` level (merge sums across shards).
    Gauge,
    /// Fixed-bucket integer histogram.
    Histogram,
}

impl MetricKind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Bucket bounds for histogram families; empty otherwise.
    bounds: Vec<u64>,
}

/// Sharded, deterministically mergeable metric store.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: BTreeMap<String, Family>,
    /// family -> rendered label set -> value.
    counters: BTreeMap<String, BTreeMap<String, u64>>,
    gauges: BTreeMap<String, BTreeMap<String, i64>>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
    /// Nondeterministic measurements (wall-clock timings), quarantined
    /// from the default render. Merge sums.
    volatile: BTreeMap<String, BTreeMap<String, f64>>,
    volatile_help: BTreeMap<String, String>,
    events: EventRing,
}

/// Render a label slice into its canonical `{k="v",…}` form: keys
/// sorted, values escaped. Empty slice renders as the empty string.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// Empty registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty registry whose event ring holds at most `events` entries.
    pub fn with_event_capacity(events: usize) -> Self {
        Self {
            events: EventRing::new(events),
            ..Self::default()
        }
    }

    /// Declare a counter family (idempotent; help from the first call
    /// wins so shard registries agree).
    pub fn register_counter(&mut self, name: &str, help: &str) {
        self.register(name, MetricKind::Counter, help, &[]);
    }

    /// Declare a gauge family.
    pub fn register_gauge(&mut self, name: &str, help: &str) {
        self.register(name, MetricKind::Gauge, help, &[]);
    }

    /// Declare a histogram family over inclusive upper `bounds`.
    pub fn register_histogram(&mut self, name: &str, help: &str, bounds: &[u64]) {
        self.register(name, MetricKind::Histogram, help, bounds);
    }

    fn register(&mut self, name: &str, kind: MetricKind, help: &str, bounds: &[u64]) {
        self.families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            bounds: bounds.to_vec(),
        });
    }

    /// Add `delta` to a counter series, auto-registering the family with
    /// empty help if it was never declared. Saturating: a ledger, not a
    /// checksum.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.register(name, MetricKind::Counter, "", &[]);
        let slot = self
            .counters
            .entry(name.to_string())
            .or_default()
            .entry(label_key(labels))
            .or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Set a gauge series to `value`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.register(name, MetricKind::Gauge, "", &[]);
        self.gauges
            .entry(name.to_string())
            .or_default()
            .insert(label_key(labels), value);
    }

    /// Record `value` into a histogram series. The family must have been
    /// declared with [`Registry::register_histogram`] first — observing
    /// into an undeclared histogram has no bucket layout to use and is a
    /// wiring bug, reported by panic.
    pub fn histogram_observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let bounds = match self.families.get(name) {
            Some(f) if f.kind == MetricKind::Histogram => f.bounds.clone(),
            _ => unreachable_family(name),
        };
        self.histograms
            .entry(name.to_string())
            .or_default()
            .entry(label_key(labels))
            .or_insert_with(|| Histogram::new(&bounds))
            .observe(value);
    }

    /// Add a nondeterministic measurement (e.g. wall-clock nanoseconds)
    /// to the quarantined volatile section. Never part of the default
    /// deterministic render.
    pub fn volatile_add(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.volatile_help.entry(name.to_string()).or_default();
        let slot = self
            .volatile
            .entry(name.to_string())
            .or_default()
            .entry(label_key(labels))
            .or_insert(0.0);
        *slot += value;
    }

    /// Declare help text for a volatile family.
    pub fn register_volatile(&mut self, name: &str, help: &str) {
        self.volatile_help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
    }

    /// Record a structured event (see [`EventRing`]).
    pub fn event(&mut self, scope: &str, name: &str, fields: &[(&str, &str)]) {
        self.events.push(scope, name, fields);
    }

    /// The event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Append an externally owned ring's events (a producer that keeps
    /// its own [`EventRing`] rather than a whole registry) after ours.
    pub fn merge_events(&mut self, ring: &EventRing) {
        self.events.merge(ring);
    }

    /// Read a counter series back (0 if absent) — for tests and
    /// conservation-law checks.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(name)
            .and_then(|m| m.get(&label_key(labels)))
            .copied()
            .unwrap_or(0)
    }

    /// Read a gauge series back (0 if absent).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        self.gauges
            .get(name)
            .and_then(|m| m.get(&label_key(labels)))
            .copied()
            .unwrap_or(0)
    }

    /// Fold `other` into `self`: counters and histogram buckets add,
    /// gauges sum (a fleet-level gauge is the sum of its shards' levels),
    /// events concatenate after ours. Call in input order — shard 0
    /// first — so the result is independent of completion order.
    ///
    /// # Panics
    /// Panics when the same family name carries different kinds or
    /// bucket layouts in the two registries: shards built from the same
    /// instrumentation code cannot disagree unless miswired.
    pub fn merge(&mut self, other: &Registry) {
        for (name, fam) in &other.families {
            match self.families.get(name) {
                None => {
                    self.families.insert(name.clone(), fam.clone());
                }
                Some(existing) => {
                    if existing.kind != fam.kind || existing.bounds != fam.bounds {
                        unreachable_family(name);
                    }
                }
            }
        }
        for (name, series) in &other.counters {
            let dst = self.counters.entry(name.clone()).or_default();
            for (key, &v) in series {
                let slot = dst.entry(key.clone()).or_insert(0);
                *slot = slot.saturating_add(v);
            }
        }
        for (name, series) in &other.gauges {
            let dst = self.gauges.entry(name.clone()).or_default();
            for (key, &v) in series {
                let slot = dst.entry(key.clone()).or_insert(0);
                *slot = slot.saturating_add(v);
            }
        }
        for (name, series) in &other.histograms {
            let dst = self.histograms.entry(name.clone()).or_default();
            for (key, h) in series {
                match dst.get_mut(key) {
                    Some(mine) => mine.merge(h),
                    None => {
                        dst.insert(key.clone(), h.clone());
                    }
                }
            }
        }
        for (name, help) in &other.volatile_help {
            self.volatile_help
                .entry(name.clone())
                .or_insert_with(|| help.clone());
        }
        for (name, series) in &other.volatile {
            let dst = self.volatile.entry(name.clone()).or_default();
            for (key, &v) in series {
                *dst.entry(key.clone()).or_insert(0.0) += v;
            }
        }
        self.events.merge(other.events());
    }

    pub(crate) fn families_iter(
        &self,
    ) -> impl Iterator<Item = (&String, MetricKind, &String, &[u64])> {
        self.families
            .iter()
            .map(|(n, f)| (n, f.kind, &f.help, f.bounds.as_slice()))
    }

    pub(crate) fn counter_series(&self, name: &str) -> Option<&BTreeMap<String, u64>> {
        self.counters.get(name)
    }

    pub(crate) fn gauge_series(&self, name: &str) -> Option<&BTreeMap<String, i64>> {
        self.gauges.get(name)
    }

    pub(crate) fn histogram_series(&self, name: &str) -> Option<&BTreeMap<String, Histogram>> {
        self.histograms.get(name)
    }

    pub(crate) fn volatile_iter(
        &self,
    ) -> impl Iterator<Item = (&String, &String, &BTreeMap<String, f64>)> {
        self.volatile.iter().map(|(n, series)| {
            let help = self
                .volatile_help
                .get(n)
                .unwrap_or_else(|| unreachable_family(n));
            (n, help, series)
        })
    }
}

/// A family-kind/layout mismatch is a wiring bug (two code paths fighting
/// over one name), not a runtime condition — fail loudly at the single
/// point the invariant can break.
fn unreachable_family(name: &str) -> ! {
    // The clippy::panic gate exempts this single diagnostic site.
    #[allow(clippy::panic)]
    {
        panic!("metric family {name:?}: kind/bucket mismatch or undeclared histogram")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_keys_are_canonical() {
        assert_eq!(label_key(&[]), "");
        assert_eq!(
            label_key(&[("b", "2"), ("a", "1")]),
            "{a=\"1\",b=\"2\"}",
            "labels sort by key regardless of call order"
        );
        assert_eq!(label_key(&[("k", "a\"b\\c")]), "{k=\"a\\\"b\\\\c\"}");
    }

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut r = Registry::new();
        r.counter_add("x_total", &[], 2);
        r.counter_add("x_total", &[], 3);
        assert_eq!(r.counter_value("x_total", &[]), 5);
        r.counter_add("x_total", &[], u64::MAX);
        assert_eq!(r.counter_value("x_total", &[]), u64::MAX);
        assert_eq!(r.counter_value("absent", &[]), 0);
    }

    #[test]
    fn merge_is_order_insensitive_for_integer_metrics() {
        let build = |seed: u64| {
            let mut r = Registry::new();
            r.register_histogram("h", "h help", &[1, 4]);
            r.counter_add("c_total", &[("w", "a")], seed);
            r.gauge_set("g", &[], seed as i64);
            r.histogram_observe("h", &[], seed);
            r
        };
        let (a, b) = (build(3), build(5));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter_value("c_total", &[("w", "a")]), 8);
        assert_eq!(ab.gauge_value("g", &[]), 8);
        assert_eq!(
            ab.counter_value("c_total", &[("w", "a")]),
            ba.counter_value("c_total", &[("w", "a")])
        );
        assert_eq!(ab.gauge_value("g", &[]), ba.gauge_value("g", &[]));
    }

    #[test]
    #[should_panic(expected = "kind/bucket mismatch")]
    fn histogram_observe_without_registration_panics() {
        let mut r = Registry::new();
        r.histogram_observe("h", &[], 1);
    }

    #[test]
    #[should_panic(expected = "kind/bucket mismatch")]
    fn merge_with_conflicting_kinds_panics() {
        let mut a = Registry::new();
        a.register_counter("m", "");
        let mut b = Registry::new();
        b.register_gauge("m", "");
        a.merge(&b);
    }

    #[test]
    fn events_flow_through_merge() {
        let mut a = Registry::new();
        a.event("s", "first", &[]);
        let mut b = Registry::new();
        b.event("s", "second", &[("k", "v")]);
        a.merge(&b);
        let names: Vec<_> = a.events().events().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
