//! Bounded structured event ring.
//!
//! Counters say *how often*; events say *what happened, in order*. The
//! ring records discrete state transitions — a WAL tail truncated, a
//! circuit breaker tripping, an epoch promoted — as structured
//! `(scope, name, fields)` tuples with a monotone sequence number. It is
//! bounded: past capacity the oldest events are evicted and counted, so
//! a chatty subsystem can never grow the ring without bound (the same
//! discipline the delivery queue applies to batches).
//!
//! Determinism: producers are the workspace's virtual-clock state
//! machines, whose transition order is a pure function of their inputs;
//! merged rings concatenate in the caller's merge order. Nothing here
//! reads a clock.

/// One recorded state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number within the owning ring (re-assigned on
    /// merge so the merged ring is itself monotone).
    pub seq: u64,
    /// Subsystem that emitted the event (e.g. `fleetd.wal`).
    pub scope: String,
    /// What happened (e.g. `torn_tail_truncated`).
    pub name: String,
    /// Key/value payload, in the order the producer supplied it.
    pub fields: Vec<(String, String)>,
}

/// A bounded FIFO of [`Event`]s with eviction accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRing {
    capacity: usize,
    events: std::collections::VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

impl EventRing {
    /// Ring size used when none is specified.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Create a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: std::collections::VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Record one event, evicting the oldest when full.
    pub fn push(&mut self, scope: &str, name: &str, fields: &[(&str, &str)]) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq: self.next_seq,
            scope: scope.to_string(),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
        self.next_seq += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Does the ring currently hold an event with this scope and name?
    ///
    /// The common assertion shape for harnesses and tests ("did a
    /// `config_rejected` event land?") without spelling out an iterator
    /// chain at every call site. Only events still held count — an event
    /// evicted by ring pressure is gone.
    pub fn contains(&self, scope: &str, name: &str) -> bool {
        self.events
            .iter()
            .any(|e| e.scope == scope && e.name == name)
    }

    /// Events held right now.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (lost) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed.
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Append another ring's events after this ring's, re-sequencing so
    /// the merged ring stays monotone. Eviction and total counters add.
    /// Merge order is the caller's: merge shards in input order, not
    /// completion order, to keep the result deterministic.
    pub fn merge(&mut self, other: &EventRing) {
        for ev in other.events() {
            if self.events.len() == self.capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back(Event {
                seq: self.next_seq,
                ..ev.clone()
            });
            self.next_seq += 1;
        }
        self.dropped += other.dropped;
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back_in_order() {
        let mut r = EventRing::new(8);
        r.push("fleetd.wal", "torn_tail_truncated", &[("bytes", "17")]);
        r.push("fleetd.snapshot", "rotated", &[]);
        let names: Vec<_> = r.events().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["torn_tail_truncated", "rotated"]);
        assert_eq!(r.events().next().map(|e| e.seq), Some(0));
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.total(), 2);
    }

    #[test]
    fn overflow_evicts_oldest_with_accounting() {
        let mut r = EventRing::new(2);
        for i in 0..5 {
            r.push("s", &format!("e{i}"), &[]);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.total(), 5);
        let names: Vec<_> = r.events().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["e3", "e4"]);
    }

    #[test]
    fn merge_concatenates_and_resequences() {
        let mut a = EventRing::new(8);
        a.push("a", "one", &[]);
        let mut b = EventRing::new(8);
        b.push("b", "two", &[]);
        b.push("b", "three", &[]);
        a.merge(&b);
        let seqs: Vec<_> = a.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        let scopes: Vec<_> = a.events().map(|e| e.scope.as_str()).collect();
        assert_eq!(scopes, vec!["a", "b", "b"]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = EventRing::new(0);
        r.push("s", "only", &[]);
        assert_eq!(r.len(), 1);
    }
}
