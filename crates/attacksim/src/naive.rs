//! The naive attacker: flat additive injection, no host knowledge.

use flowtab::Windowing;
use serde::{Deserialize, Serialize};

/// A naive attack campaign: the botmaster orders every zombie to add `b`
/// units of the tracked feature during a fixed set of windows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaiveAttack {
    /// Indices of the attacked windows (within the test week).
    pub windows: Vec<usize>,
}

impl NaiveAttack {
    /// An attack over explicit windows.
    ///
    /// # Panics
    /// Panics if no windows are given.
    pub fn new(windows: Vec<usize>) -> Self {
        assert!(!windows.is_empty(), "an attack needs at least one window");
        Self { windows }
    }

    /// The paper-style default: a one-hour attack during business hours
    /// mid-week (when the most zombies are online).
    pub fn default_for(windowing: Windowing) -> Self {
        Self::new(business_hour_windows(windowing, 2, 14, 4))
    }
}

/// Window indices for `len` consecutive windows starting at `day`
/// (0 = Monday) and `hour` o'clock.
pub fn business_hour_windows(
    windowing: Windowing,
    day: usize,
    hour: usize,
    len: usize,
) -> Vec<usize> {
    let start_secs = day as f64 * 86_400.0 + hour as f64 * 3600.0;
    let first = windowing.window_of(start_secs);
    (first..first + len).collect()
}

/// Did this user raise at least one alarm during the attack?
///
/// `test_counts` is the user's benign per-window counts for the test week;
/// the attack adds `b` to each attacked window, and an alarm fires when
/// `g + b > T`.
pub fn user_detects(test_counts: &[u64], threshold: f64, b: f64, attack: &NaiveAttack) -> bool {
    attack.windows.iter().any(|&w| {
        let g = test_counts.get(w).copied().unwrap_or(0);
        g as f64 + b > threshold
    })
}

/// Fraction of the population raising at least one alarm for attack size
/// `b` (one y-value of Figure 4(a)).
///
/// # Panics
/// Panics when `test_counts` and `thresholds` differ in length.
pub fn detection_fraction(
    test_counts: &[Vec<u64>],
    thresholds: &[f64],
    b: f64,
    attack: &NaiveAttack,
) -> f64 {
    assert_eq!(test_counts.len(), thresholds.len());
    let detected = test_counts
        .iter()
        .zip(thresholds)
        .filter(|(counts, &t)| user_detects(counts, t, b, attack))
        .count();
    detected as f64 / test_counts.len().max(1) as f64
}

/// The full detection curve over a sweep of attack sizes.
///
/// Each size is an independent population pass, so the sweep parallelises
/// across sizes via [`hids_core::par_map`] (output order is preserved).
pub fn detection_curve(
    test_counts: &[Vec<u64>],
    thresholds: &[f64],
    sizes: &[f64],
    attack: &NaiveAttack,
) -> Vec<(f64, f64)> {
    hids_core::par_map(sizes, |_, &b| {
        (b, detection_fraction(test_counts, thresholds, b, attack))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize, v: u64) -> Vec<u64> {
        vec![v; n]
    }

    #[test]
    fn detection_requires_exceeding_threshold() {
        let attack = NaiveAttack::new(vec![3, 4]);
        let counts = flat(10, 10);
        assert!(!user_detects(&counts, 20.0, 10.0, &attack), "10+10 == 20, not >");
        assert!(user_detects(&counts, 20.0, 11.0, &attack));
    }

    #[test]
    fn only_attacked_windows_matter() {
        let mut counts = flat(10, 0);
        counts[7] = 1000; // huge benign spike outside the attack
        let attack = NaiveAttack::new(vec![2]);
        assert!(!user_detects(&counts, 100.0, 50.0, &attack));
    }

    #[test]
    fn attack_past_end_of_trace_sees_zero_traffic() {
        let counts = flat(5, 50);
        let attack = NaiveAttack::new(vec![100]);
        assert!(user_detects(&counts, 10.0, 11.0, &attack), "0 + 11 > 10");
        assert!(!user_detects(&counts, 10.0, 9.0, &attack));
    }

    #[test]
    fn fraction_counts_diverse_thresholds() {
        // Three users: light (T=10), medium (T=100), heavy (T=1000), all
        // with benign traffic 5 in the attacked window.
        let counts = vec![flat(8, 5), flat(8, 5), flat(8, 5)];
        let thresholds = vec![10.0, 100.0, 1000.0];
        let attack = NaiveAttack::new(vec![1]);
        assert_eq!(detection_fraction(&counts, &thresholds, 6.0, &attack), 1.0 / 3.0);
        assert_eq!(detection_fraction(&counts, &thresholds, 96.0, &attack), 2.0 / 3.0);
        assert_eq!(detection_fraction(&counts, &thresholds, 996.0, &attack), 1.0);
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let counts: Vec<Vec<u64>> = (0..20).map(|i| flat(16, i * 3)).collect();
        let thresholds: Vec<f64> = (0..20).map(|i| 10.0 + f64::from(i) * 17.0).collect();
        let sizes: Vec<f64> = (0..50).map(|i| f64::from(i) * 10.0).collect();
        let attack = NaiveAttack::new(vec![0, 1, 2, 3]);
        let curve = detection_curve(&counts, &thresholds, &sizes, &attack);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "{pair:?}");
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn business_hours_map_to_windows() {
        let w = business_hour_windows(Windowing::FIFTEEN_MIN, 2, 14, 4);
        // Wednesday 14:00 = (2*24 + 14) * 3600 s = 223200 s / 900 = window 248.
        assert_eq!(w, vec![248, 249, 250, 251]);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn empty_attack_rejected() {
        let _ = NaiveAttack::new(vec![]);
    }
}
