//! The omniscient attacker: an upper bound on undetectable exfiltration.
//!
//! The paper's resourceful attacker profiles the host's *distribution* and
//! commits to a fixed injection. The limit of that threat model is malware
//! that watches the host's live traffic and, window by window, injects
//! exactly up to the threshold: `b_t = max(0, ⌈T⌉ − 1 − g_t)` (the alarm
//! fires strictly above `T`). No behavioural detector with that threshold
//! can ever see this attacker, so the weekly sum of those budgets is the
//! detector-family-wide *capacity bound* — and the fair way to score how
//! much a policy's thresholds concede in aggregate.

use serde::{Deserialize, Serialize};

/// Per-user omniscient capacity over a test week.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OmniscientBudget {
    /// Total units the attacker can inject over the week, undetected.
    pub weekly_total: u64,
    /// Mean injectable units per window.
    pub per_window_mean: f64,
    /// Windows with zero headroom (benign traffic already at/over T).
    pub saturated_windows: u64,
}

/// Compute the bound for one user.
pub fn omniscient_budget(test_counts: &[u64], threshold: f64) -> OmniscientBudget {
    // Largest integer count that does NOT alarm: floor(T) when T is not an
    // integral count boundary, T itself when counts may equal it (alarm is
    // strict `>`).
    let ceiling = threshold.floor().max(0.0) as u64;
    let mut total = 0u64;
    let mut saturated = 0u64;
    for &g in test_counts {
        if g >= ceiling {
            saturated += 1;
        } else {
            total += ceiling - g;
        }
    }
    OmniscientBudget {
        weekly_total: total,
        per_window_mean: total as f64 / test_counts.len().max(1) as f64,
        saturated_windows: saturated,
    }
}

/// Population bound: one budget per user.
pub fn omniscient_population(test_counts: &[Vec<u64>], thresholds: &[f64]) -> Vec<OmniscientBudget> {
    assert_eq!(test_counts.len(), thresholds.len());
    test_counts
        .iter()
        .zip(thresholds)
        .map(|(counts, &t)| omniscient_budget(counts, t))
        .collect()
}

/// Total weekly undetectable DDoS capacity of the whole botnet.
pub fn total_capacity(budgets: &[OmniscientBudget]) -> u64 {
    budgets.iter().map(|b| b.weekly_total).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_fills_to_just_below_threshold() {
        // g = [0, 5, 10], T = 10: ceiling 10, injectable 10+5+0.
        let b = omniscient_budget(&[0, 5, 10], 10.0);
        assert_eq!(b.weekly_total, 15);
        assert_eq!(b.saturated_windows, 1);
        assert!((b.per_window_mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_threshold_floors() {
        // T = 10.7: counts of 10 don't alarm (10 < 10.7); 11 would. The
        // attacker can fill to 10.
        let b = omniscient_budget(&[0], 10.7);
        assert_eq!(b.weekly_total, 10);
    }

    #[test]
    fn zero_threshold_zero_budget() {
        let b = omniscient_budget(&[0, 0], 0.0);
        assert_eq!(b.weekly_total, 0);
        assert_eq!(b.saturated_windows, 2);
    }

    #[test]
    fn diversity_shrinks_total_capacity() {
        // Light user (counts ~2) and heavy user (counts ~900).
        let counts = vec![vec![2u64; 100], vec![900u64; 100]];
        // Homogeneous threshold at the pooled tail: 1000.
        let homog = omniscient_population(&counts, &[1000.0, 1000.0]);
        // Diverse thresholds at each user's own tail.
        let diverse = omniscient_population(&counts, &[4.0, 1000.0]);
        let (th, td) = (total_capacity(&homog), total_capacity(&diverse));
        assert!(td < th / 5, "diversity collapses capacity: {td} vs {th}");
        // The heavy user's contribution is identical under both.
        assert_eq!(homog[1], diverse[1]);
    }

    #[test]
    fn omniscient_dominates_fixed_mimicry() {
        // The fixed mimicry budget (attacksim::resourceful) commits to one
        // b for the whole week; the omniscient bound is at least b per
        // *evadable* window, hence at least the mimicry total when the
        // mimic evades in every window.
        use tailstats::EmpiricalDist;
        let counts: Vec<u64> = (0..100).collect();
        let dist = EmpiricalDist::from_counts(&counts);
        let t = 200.0;
        let fixed = crate::resourceful::evasion_budget(&dist, t, 1.0).budget;
        let omni = omniscient_budget(&counts, t);
        assert!(
            omni.weekly_total >= fixed * counts.len() as u64,
            "{} >= {}",
            omni.weekly_total,
            fixed * counts.len() as u64
        );
    }

    #[test]
    fn empty_counts() {
        let b = omniscient_budget(&[], 100.0);
        assert_eq!(b.weekly_total, 0);
        assert_eq!(b.per_window_mean, 0.0);
    }
}
