//! The resourceful (mimicry) attacker.
//!
//! The paper's strong threat model: the attacker has planted monitoring
//! code on the zombie and knows both the host's traffic distribution and
//! (by observing what does and doesn't trigger) its threshold. Being
//! cautious, the attacker picks the largest injection `b` that still evades
//! detection with probability ≥ `evade_prob` (0.9 in the paper):
//!
//! `b_i = max{ b : P(g_i + b < T_i) ≥ evade_prob }`
//!
//! The paper calls `T_i − g_i` the attacker's "room"; `b_i` over the whole
//! population is the hidden-traffic distribution of Figure 4(b).

use serde::{Deserialize, Serialize};
use tailstats::EmpiricalDist;

/// One host's computed evasion budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvasionBudget {
    /// Largest integer injection that keeps evasion probability ≥ target
    /// (0 when the threshold leaves no room).
    pub budget: u64,
    /// Evasion probability actually achieved at `budget` on the profiled
    /// distribution.
    pub profiled_evasion: f64,
}

/// Compute the evasion budget against `threshold` from the distribution
/// the attacker profiled (integer feature lattice).
pub fn evasion_budget(profiled: &EmpiricalDist, threshold: f64, evade_prob: f64) -> EvasionBudget {
    // Supremum of real-valued shifts, then step down to the integer lattice
    // (the strict inequality means an integer exactly at the supremum
    // already fails).
    let sup = profiled.max_shift_below(threshold, evade_prob);
    let mut b = if sup <= 0.0 {
        0
    } else if sup.fract() == 0.0 {
        (sup as u64).saturating_sub(1)
    } else {
        sup.floor() as u64
    };
    // Defensive: the empirical CDF is a step function; verify and back off
    // if flooring still lands on a violating step.
    while b > 0 && profiled.below(threshold - b as f64) < evade_prob {
        b -= 1;
    }
    EvasionBudget {
        budget: b,
        profiled_evasion: profiled.below(threshold - b as f64),
    }
}

/// Evasion budgets for a whole population (the paper's Figure 4(b) data).
pub fn hidden_traffic(
    profiled: &[EmpiricalDist],
    thresholds: &[f64],
    evade_prob: f64,
) -> Vec<EvasionBudget> {
    assert_eq!(profiled.len(), thresholds.len());
    hids_core::par_map_range(profiled.len(), |i| {
        evasion_budget(&profiled[i], thresholds[i], evade_prob)
    })
}

/// The evasion rate the attacker *actually* achieves when the injection
/// computed from the profiled week runs against the (different) test week:
/// `P_test(g + b < T)`. Profiling error is the defender's friend.
pub fn realized_evasion(test: &EmpiricalDist, threshold: f64, budget: u64) -> f64 {
    test.below(threshold - budget as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64) -> EmpiricalDist {
        EmpiricalDist::from_counts(&(0..n).collect::<Vec<_>>())
    }

    #[test]
    fn budget_is_tight_against_strict_inequality() {
        // g uniform over 0..=99; threshold 200; target 0.9.
        let d = uniform(100);
        let eb = evasion_budget(&d, 200.0, 0.9);
        // Need the 90 smallest values (<= 89) strictly below 200:
        // 89 + b < 200 => b <= 110.
        assert_eq!(eb.budget, 110);
        assert!(eb.profiled_evasion >= 0.9);
        // One more unit would break the target.
        assert!(d.below(200.0 - 111.0) < 0.9);
    }

    #[test]
    fn no_room_means_zero_budget() {
        let d = uniform(100);
        // Threshold in the bulk: even b=0 can't reach 90% evasion...
        let eb = evasion_budget(&d, 10.0, 0.9);
        assert_eq!(eb.budget, 0);
    }

    #[test]
    fn higher_threshold_more_room() {
        let d = uniform(100);
        let b_low = evasion_budget(&d, 150.0, 0.9).budget;
        let b_high = evasion_budget(&d, 1500.0, 0.9).budget;
        assert!(b_high > b_low);
        assert_eq!(b_high - b_low, 1350);
    }

    #[test]
    fn stricter_evasion_target_smaller_budget() {
        let d = uniform(100);
        let lax = evasion_budget(&d, 300.0, 0.5).budget;
        let strict = evasion_budget(&d, 300.0, 0.99).budget;
        assert!(strict < lax, "{strict} < {lax}");
    }

    #[test]
    fn diversity_shrinks_population_budgets() {
        // Two users: light (0..=9) and heavy (0..=999).
        let light = uniform(10);
        let heavy = uniform(1000);
        // Homogeneous threshold driven by the heavy user:
        let t_homog = 990.0;
        let homog = hidden_traffic(&[light.clone(), heavy.clone()], &[t_homog, t_homog], 0.9);
        // Diverse thresholds at each user's own 99th percentile:
        let diverse = hidden_traffic(&[light.clone(), heavy.clone()], &[9.0, 990.0], 0.9);
        // The light user's budget collapses from ~982 to ~1 under
        // diversity; the heavy user is unchanged.
        assert!(homog[0].budget > 900);
        assert!(diverse[0].budget <= 2);
        assert_eq!(homog[1].budget, diverse[1].budget);
        let total_homog: u64 = homog.iter().map(|e| e.budget).sum();
        let total_diverse: u64 = diverse.iter().map(|e| e.budget).sum();
        assert!(total_diverse < total_homog / 2);
    }

    #[test]
    fn realized_evasion_degrades_when_test_shifts_up() {
        let profiled = uniform(100);
        let eb = evasion_budget(&profiled, 200.0, 0.9);
        // Test week is busier: values 50..=149.
        let test = EmpiricalDist::from_counts(&(50..150).collect::<Vec<_>>());
        let realized = realized_evasion(&test, 200.0, eb.budget);
        assert!(
            realized < eb.profiled_evasion,
            "{realized} < {}",
            eb.profiled_evasion
        );
    }

    #[test]
    fn zero_threshold_zero_budget() {
        let d = uniform(10);
        assert_eq!(evasion_budget(&d, 0.0, 0.9).budget, 0);
    }
}
