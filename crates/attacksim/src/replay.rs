//! Real-malware replay: overlay a captured zombie trace on user traffic.
//!
//! The paper's Section 6.2 closing experiment: a week-long Storm zombie
//! trace is overlaid on *every* user's test trace; per user we measure the
//! false-positive rate on clean windows and the detection rate over
//! zombie-active windows, producing the ⟨FP, 1−FN⟩ scatter of Figure 5.

use serde::{Deserialize, Serialize};

/// One user's performance against a replayed attack trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayPerf {
    /// False-positive rate: fraction of windows whose *benign* traffic
    /// alone exceeded the threshold.
    pub fp: f64,
    /// Detection rate (1 − FN): fraction of zombie-active windows where
    /// the overlaid traffic exceeded the threshold.
    pub detection: f64,
    /// Number of zombie-active windows evaluated.
    pub attack_windows: usize,
}

/// Evaluate one user against a zombie overlay.
///
/// `benign` and `zombie` are per-window counts for the same feature; the
/// zombie trace is cycled if shorter than the user trace (the paper's
/// one-week zombie capture against multi-week user traces).
pub fn replay_attack(benign: &[u64], zombie: &[u64], threshold: f64) -> ReplayPerf {
    assert!(!zombie.is_empty(), "zombie trace must be non-empty");
    let mut fp = 0usize;
    let mut attacked = 0usize;
    let mut detected = 0usize;
    for (w, &g) in benign.iter().enumerate() {
        let b = zombie[w % zombie.len()];
        if g as f64 > threshold {
            fp += 1;
        }
        if b > 0 {
            attacked += 1;
            if (g + b) as f64 > threshold {
                detected += 1;
            }
        }
    }
    ReplayPerf {
        fp: fp as f64 / benign.len().max(1) as f64,
        detection: if attacked == 0 {
            0.0
        } else {
            detected as f64 / attacked as f64
        },
        attack_windows: attacked,
    }
}

/// Replay the zombie over a whole population.
pub fn replay_population(
    benign: &[Vec<u64>],
    zombie: &[u64],
    thresholds: &[f64],
) -> Vec<ReplayPerf> {
    assert_eq!(benign.len(), thresholds.len());
    hids_core::par_map_range(benign.len(), |i| {
        replay_attack(&benign[i], zombie, thresholds[i])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_and_detection_disentangled() {
        // Benign: mostly 5, one spike of 100. Zombie: 50 in half the
        // windows. Threshold 60.
        let benign = vec![5, 5, 100, 5, 5, 5, 5, 5];
        let zombie = vec![50, 0, 50, 0, 50, 0, 50, 0];
        let perf = replay_attack(&benign, &zombie, 60.0);
        // FP: only the benign 100 window => 1/8.
        assert!((perf.fp - 0.125).abs() < 1e-12);
        // Attacked windows: 0,2,4,6. Overlaid: 55,150,55,55 => only w2 > 60.
        assert_eq!(perf.attack_windows, 4);
        assert!((perf.detection - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zombie_shorter_than_trace_cycles() {
        let benign = vec![0u64; 6];
        let zombie = vec![10, 0];
        let perf = replay_attack(&benign, &zombie, 5.0);
        assert_eq!(perf.attack_windows, 3);
        assert_eq!(perf.detection, 1.0);
        assert_eq!(perf.fp, 0.0);
    }

    #[test]
    fn low_threshold_user_detects_stealth_better() {
        let benign = vec![2u64; 100];
        let zombie = vec![30u64; 100];
        let light = replay_attack(&benign, &zombie, 10.0);
        let heavy_threshold = replay_attack(&benign, &zombie, 1000.0);
        assert_eq!(light.detection, 1.0);
        assert_eq!(heavy_threshold.detection, 0.0);
    }

    #[test]
    fn population_replay_shapes() {
        let benign = vec![vec![1u64; 10], vec![100u64; 10]];
        let zombie = vec![50u64; 10];
        let perfs = replay_population(&benign, &zombie, &[10.0, 1000.0]);
        assert_eq!(perfs.len(), 2);
        assert_eq!(perfs[0].detection, 1.0);
        assert_eq!(perfs[1].detection, 0.0);
    }

    #[test]
    fn all_zero_zombie_windows_mean_no_attack() {
        let perf = replay_attack(&[5, 5], &[0, 0], 10.0);
        assert_eq!(perf.attack_windows, 0);
        assert_eq!(perf.detection, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_zombie_rejected() {
        let _ = replay_attack(&[1], &[], 1.0);
    }
}
