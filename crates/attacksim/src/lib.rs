//! # attacksim — attacker models against configured HIDS populations
//!
//! Implements the paper's three attack evaluations (Section 6):
//!
//! * [`naive`] — an attacker with no knowledge of the host injects a flat
//!   additive load `b`; sweeping `b` over the full range yields the
//!   detection curves of Figure 4(a).
//! * [`resourceful`] — a mimicry attacker who has profiled the host
//!   computes the largest injection that still evades detection with a
//!   target probability (90% in the paper); the per-host budgets are the
//!   "hidden traffic" boxplots of Figure 4(b).
//! * [`omniscient`] — the capacity *bound*: malware that watches live
//!   traffic and fills every window exactly to the threshold;
//! * [`replay`] — a real malware trace (the Storm zombie model from
//!   `synthgen`) is overlaid additively on every user trace, yielding the
//!   per-user ⟨FP, detection⟩ scatter of Figure 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive;
pub mod omniscient;
pub mod replay;
pub mod resourceful;

pub use naive::{business_hour_windows, detection_curve, detection_fraction, NaiveAttack};
pub use omniscient::{omniscient_budget, omniscient_population, total_capacity, OmniscientBudget};
pub use replay::{replay_attack, replay_population, ReplayPerf};
pub use resourceful::{evasion_budget, hidden_traffic, realized_evasion, EvasionBudget};
