//! Micro-benchmarks of the mergeable quantile sketch behind the
//! megafleet path: update throughput, shard merge/pool cost, and
//! quantile query latency, each against the exact `EmpiricalDist`
//! equivalent where one exists.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tailstats::{EmpiricalDist, KllSketch, QuantileSource};

const EPS: f64 = 0.01;
const STREAM: usize = 100_000;

/// A heavy-tailed count stream shaped like a busy host's week.
fn stream(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            // Pareto-ish: most windows small, a few enormous.
            ((1.0 - u).powf(-1.5) - 1.0).min(1e7) as u64
        })
        .collect()
}

fn update(c: &mut Criterion) {
    let data = stream(7, STREAM);
    let mut group = c.benchmark_group("sketch_update");
    group.throughput(Throughput::Elements(STREAM as u64));
    group.bench_function(format!("kll_insert_{STREAM}"), |b| {
        b.iter(|| {
            let mut s = KllSketch::new(EPS);
            for &v in black_box(&data) {
                s.insert(v);
            }
            black_box(s.len())
        })
    });
    group.bench_function(format!("exact_from_counts_{STREAM}"), |b| {
        b.iter(|| black_box(EmpiricalDist::from_counts(black_box(&data))).len())
    });
    group.finish();
}

fn merge(c: &mut Criterion) {
    // 64 shard sketches over distinct sub-streams, as megafleet pools
    // per-shard summaries into a fleet tail.
    let shards: Vec<KllSketch> = (0..64)
        .map(|i| {
            let mut s = KllSketch::new(EPS);
            for v in stream(100 + i, STREAM / 64) {
                s.insert(v);
            }
            s
        })
        .collect();
    let mut group = c.benchmark_group("sketch_merge");
    group.throughput(Throughput::Elements(64));
    group.bench_function("pairwise_merge_64_shards", |b| {
        b.iter(|| {
            let mut acc = shards[0].clone();
            for s in &shards[1..] {
                acc.merge(black_box(s));
            }
            black_box(acc.len())
        })
    });
    group.bench_function("canonical_pool_64_shards", |b| {
        b.iter(|| {
            let refs: Vec<&KllSketch> = shards.iter().collect();
            black_box(KllSketch::pool(black_box(&refs)).len())
        })
    });
    group.finish();
}

fn query(c: &mut Criterion) {
    let data = stream(13, STREAM);
    let mut sk = KllSketch::new(EPS);
    for &v in &data {
        sk.insert(v);
    }
    let sketch_src = QuantileSource::Sketch(sk);
    let exact_src = QuantileSource::Exact(EmpiricalDist::from_counts(&data));
    let qs = [0.5, 0.9, 0.95, 0.99, 0.999];
    let mut group = c.benchmark_group("sketch_query");
    group.throughput(Throughput::Elements(qs.len() as u64));
    group.bench_function("sketch_quantiles", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &q in black_box(&qs) {
                acc += sketch_src.quantile(q);
            }
            black_box(acc)
        })
    });
    group.bench_function("exact_quantiles", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &q in black_box(&qs) {
                acc += exact_src.quantile(q);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, update, merge, query);
criterion_main!(benches);
