//! Micro-benchmarks of the substrate layers: wire parsing, flow
//! reconstruction, statistics, and trace generation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use flowtab::{extract_features, FlowExtractor, FlowTableConfig, Windowing};
use hids_core::{AttackSweep, RocCurve, SweepTable, ThresholdHeuristic};
use netpkt::testutil::{build_tcp_frame, FrameSpec};
use netpkt::{EthernetFrame, Ipv4Packet, TcpFlags, TcpSegment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synthgen::{
    render_flows_to_frames, render_window_flows, user_week_series, Population, PopulationConfig,
};
use tailstats::{EmpiricalDist, P2Quantile};

fn packet_layer(c: &mut Criterion) {
    let frame = build_tcp_frame(
        &FrameSpec::default(),
        TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
        42,
        &[0xAB; 512],
    );
    let mut group = c.benchmark_group("netpkt");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("parse_eth_ip_tcp_512B", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(black_box(&frame[..])).unwrap();
            let ip = Ipv4Packet::parse(eth.payload()).unwrap();
            let tcp = TcpSegment::parse(ip.payload()).unwrap();
            black_box((ip.src(), tcp.dst_port(), tcp.payload().len()))
        })
    });
    group.bench_function("parse_and_verify_checksums_512B", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(black_box(&frame[..])).unwrap();
            let ip = Ipv4Packet::parse(eth.payload()).unwrap();
            let tcp = TcpSegment::parse(ip.payload()).unwrap();
            black_box(ip.verify_checksum() && tcp.verify_checksum(ip.src(), ip.dst()))
        })
    });
    group.bench_function("build_tcp_frame_512B", |b| {
        b.iter(|| {
            black_box(build_tcp_frame(
                &FrameSpec::default(),
                TcpFlags::syn_only(),
                7,
                &[0xCD; 512],
            ))
        })
    });
    group.finish();
}

fn flow_layer(c: &mut Criterion) {
    // Pre-render a realistic window of frames.
    let pop = Population::sample(PopulationConfig {
        n_users: 2,
        ..Default::default()
    });
    let mut profile = pop.users[0].clone();
    profile.levels = synthgen::TailLevels {
        tcp: 300.0,
        udp: 100.0,
        dns: 60.0,
    };
    let week = user_week_series(&profile, 1, 0, Windowing::FIFTEEN_MIN);
    let mut rng = StdRng::seed_from_u64(5);
    let (w_idx, counts) = week
        .windows
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.0.iter().sum::<u64>())
        .map(|(i, c)| (i, *c))
        .unwrap();
    let flows = render_window_flows(&profile, &counts, w_idx, Windowing::FIFTEEN_MIN, &mut rng);
    let frames = render_flows_to_frames(&flows, &mut rng);

    let mut group = c.benchmark_group("flowtab");
    group.sample_size(20);
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("extract_flows_from_frames", |b| {
        b.iter(|| {
            let mut ex = FlowExtractor::new(FlowTableConfig::default());
            for f in &frames {
                let _ = ex.push_frame(f.ts, &f.frame);
            }
            black_box(ex.finish().len())
        })
    });
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("extract_features_from_flows", |b| {
        b.iter(|| {
            black_box(extract_features(
                &flows,
                profile.addr,
                Windowing::FIFTEEN_MIN,
                w_idx + 1,
            ))
        })
    });
    group.finish();
}

fn stats_layer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let samples: Vec<u64> = (0..672).map(|_| rng.random_range(0..5_000)).collect();
    let big: Vec<f64> = (0..100_000).map(|_| rng.random::<f64>() * 1e4).collect();

    let mut group = c.benchmark_group("tailstats");
    group.bench_function("empirical_dist_build_672", |b| {
        b.iter(|| black_box(EmpiricalDist::from_counts(&samples)))
    });
    let dist = EmpiricalDist::from_counts(&samples);
    group.bench_function("quantile_lookup", |b| {
        b.iter(|| black_box(dist.quantile(0.99)))
    });
    group.bench_function("exceedance_lookup", |b| {
        b.iter(|| black_box(dist.exceedance(2_500.0)))
    });
    group.throughput(Throughput::Elements(big.len() as u64));
    group.bench_function("p2_stream_100k", |b| {
        b.iter(|| {
            let mut p2 = P2Quantile::new(0.99);
            for &x in &big {
                p2.observe(x);
            }
            black_box(p2.estimate())
        })
    });
    group.finish();
}

fn generator_layer(c: &mut Criterion) {
    let pop = Population::sample(PopulationConfig {
        n_users: 8,
        ..Default::default()
    });
    let mut group = c.benchmark_group("synthgen");
    group.sample_size(20);
    group.throughput(Throughput::Elements(672));
    group.bench_function("user_week_672_windows", |b| {
        let mut user = 0usize;
        b.iter(|| {
            user = (user + 1) % pop.users.len();
            black_box(user_week_series(
                &pop.users[user],
                pop.config.seed,
                0,
                Windowing::FIFTEEN_MIN,
            ))
        })
    });
    group.bench_function("storm_week", |b| {
        b.iter(|| {
            black_box(synthgen::storm_week_series(
                &synthgen::StormConfig::default(),
                Windowing::FIFTEEN_MIN,
                0,
            ))
        })
    });
    group.finish();
}

/// The pre-kernel threshold selection: per candidate, one `exceedance`
/// binary search plus an `AttackSweep::mean_fn` point query (itself one
/// binary search per attack size). Kept here as the baseline the batched
/// [`SweepTable`] kernel is measured against.
fn naive_utility_threshold(dist: &EmpiricalDist, sweep: &AttackSweep, w: f64) -> f64 {
    let samples = dist.samples();
    let mut candidates: Vec<f64> = Vec::with_capacity(samples.len() + 1);
    for &v in samples {
        if candidates.last() != Some(&v) {
            candidates.push(v);
        }
    }
    candidates.push(dist.max() + 1.0);
    let mut best_t = f64::NAN;
    let mut best_s = f64::NEG_INFINITY;
    for &t in candidates.iter().rev() {
        let fp = dist.exceedance(t);
        let fn_rate = sweep.mean_fn(dist, t);
        let s = 1.0 - (w * fn_rate + (1.0 - w) * fp);
        if s >= best_s {
            best_s = s;
            best_t = t;
        }
    }
    best_t
}

fn sweep_kernel_layer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    // A paper-sized problem: one user-week (672 windows), 256 attack sizes.
    let counts: Vec<u64> = (0..672).map(|_| rng.random_range(0..5_000)).collect();
    let dist = EmpiricalDist::from_counts(&counts);
    let sweep = AttackSweep::up_to(dist.max());

    let mut group = c.benchmark_group("sweep_kernel");
    group.bench_function("utility_threshold_naive_672w", |b| {
        b.iter(|| black_box(naive_utility_threshold(&dist, &sweep, 0.4)))
    });
    let heuristic = ThresholdHeuristic::UtilityMax {
        w: 0.4,
        sweep: sweep.clone(),
    };
    group.bench_function("utility_threshold_kernel_672w", |b| {
        b.iter(|| black_box(heuristic.threshold(&dist)))
    });
    group.bench_function("sweep_table_build_672w_x256", |b| {
        b.iter(|| black_box(SweepTable::compute(&dist, &sweep)))
    });
    group.bench_function("roc_curve_672w_x256", |b| {
        b.iter(|| black_box(RocCurve::compute(&dist, &sweep)))
    });
    group.finish();
}

criterion_group!(
    benches,
    packet_layer,
    flow_layer,
    stats_layer,
    generator_layer,
    sweep_kernel_layer
);
criterion_main!(benches);
