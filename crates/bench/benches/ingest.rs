//! Micro-benchmarks of the wire-ingest hot path: sanitization (the
//! scan-first zero-copy fast path against the strip-and-rebuild slow
//! path) and the full syslog/CEF datagram decode it front-ends.
//!
//! The interesting comparison is `sanitize/clean_*` vs `sanitize/dirty_*`:
//! clean telemetry — the overwhelmingly common case — must cost a scan
//! and no allocation, while hostile input pays for the rebuild.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fleetd::ingest::{decode_batch_datagram, sanitize};
use fleetd::{IngestConfig, WindowBatch};

const MAX_LEN: usize = 8 * 1024;

/// A realistic clean CEF-in-syslog line (printable ASCII, ~230 bytes).
fn clean_line() -> String {
    let counts: String = (0..24).map(|i| format!("{},", i * 7 % 97)).collect();
    format!(
        "<134>1 2009-04-07T12:00:00Z host042 hids - - - \
         CEF:0|fleet|hids|1.0|batch|window batch|3|host=42 seq=9 week=test start=96 counts={}",
        counts.trim_end_matches(',')
    )
}

/// The same line with interleaved ANSI escapes and control bytes.
fn dirty_line() -> String {
    let mut out = String::new();
    for (i, c) in clean_line().chars().enumerate() {
        out.push(c);
        if i % 16 == 0 {
            out.push_str("\x1b[31m");
        }
        if i % 37 == 0 {
            out.push('\u{0007}');
        }
    }
    out
}

/// Clean multi-byte text: exercises the char-scan identity check.
fn clean_unicode_line() -> String {
    "höst=42 wéek=test münich köln ü".repeat(8)
}

fn bench_sanitize(c: &mut Criterion) {
    let clean = clean_line();
    let dirty = dirty_line();
    let unicode = clean_unicode_line();

    let mut group = c.benchmark_group("sanitize");
    group.sample_size(60);

    group.throughput(Throughput::Bytes(clean.len() as u64));
    group.bench_function("clean_ascii_borrowed", |b| {
        b.iter(|| black_box(sanitize(black_box(&clean), MAX_LEN)))
    });

    group.throughput(Throughput::Bytes(unicode.len() as u64));
    group.bench_function("clean_unicode_borrowed", |b| {
        b.iter(|| black_box(sanitize(black_box(&unicode), MAX_LEN)))
    });

    group.throughput(Throughput::Bytes(dirty.len() as u64));
    group.bench_function("dirty_ansi_rebuilt", |b| {
        b.iter(|| black_box(sanitize(black_box(&dirty), MAX_LEN)))
    });

    group.throughput(Throughput::Bytes(clean.len() as u64));
    group.bench_function("clean_truncated_rebuilt", |b| {
        b.iter(|| black_box(sanitize(black_box(&clean), 64)))
    });

    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    // A canonical wire datagram, exactly as the flood benchmarks in the
    // repro `ingest` experiment produce it.
    let batch = WindowBatch {
        host: 42,
        seq: 9,
        week: fleetd::Week::Test,
        start: 96,
        counts: (0..96).map(|i| i * 7 % 97).collect(),
        poison: false,
    };
    let config = IngestConfig::default();
    let payload = fleetd::ingest::encode_batch_datagram(&batch, "host042", "hids");
    assert!(decode_batch_datagram(&payload, &config).is_ok());

    let mut group = c.benchmark_group("decode");
    group.sample_size(60);
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("batch_datagram_end_to_end", |b| {
        b.iter(|| black_box(decode_batch_datagram(black_box(&payload), &config)))
    });
    group.finish();
}

criterion_group!(benches, bench_sanitize, bench_decode);
criterion_main!(benches);
