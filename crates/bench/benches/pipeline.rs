//! End-to-end pipeline benchmark: pcap → decode → sanitize → features
//! → threshold sweep, as one measured unit.
//!
//! Complements the `ingest` micro-benchmarks: where those isolate the
//! sanitizer and the datagram decoder, this drives the whole measurement
//! path the paper's deployment implies — synthetic weeks rendered to a
//! real pcap capture, read back through the fault-tolerant reader,
//! decoded into flows, folded into per-window features, shipped over the
//! hardened syslog/CEF wire (hostile envelope, so the sanitizer's
//! rebuild path runs for real) and swept through the grouping policies.
//! `repro pipeline` records the same figure in `BENCH_pipeline.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use experiments::pipeline::{run, PipelineScenario};

fn bench_pipeline(c: &mut Criterion) {
    // Small but complete: every stage runs, every identity check holds.
    let scenario = PipelineScenario {
        n_users: 2,
        n_windows: 8,
        ..PipelineScenario::default()
    };
    let probe = run(&scenario).expect("pipeline scenario runs");
    probe.check().expect("pipeline invariants");
    assert!(probe.frames_written > 0, "span must carry traffic");

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    // Events = window-slots carried end to end (users × windows × 2 weeks).
    group.throughput(Throughput::Elements(probe.feature_windows));
    group.bench_function("pcap_to_sweep_end_to_end", |b| {
        b.iter(|| {
            let r = run(black_box(&scenario)).expect("pipeline scenario runs");
            assert_eq!(r.feature_mismatches, 0);
            black_box(r)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
