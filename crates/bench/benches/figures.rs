//! One benchmark per paper artifact: how long each table/figure takes to
//! regenerate on a reduced corpus (the `repro` binary runs the full-scale
//! version; these benches track the cost of the analysis itself).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use experiments::{ablation, data::CorpusConfig, drift, fig1, fig2, fig3, fig4, fig5, tab2, tab3, Corpus};
use flowtab::FeatureKind;
use synthgen::StormConfig;

fn bench_corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        n_users: 60,
        n_weeks: 2,
        ..Default::default()
    })
}

fn figures(c: &mut Criterion) {
    let corpus = bench_corpus();
    let tcp = FeatureKind::TcpConnections;

    let mut group = c.benchmark_group("paper");
    group.sample_size(10);

    group.bench_function("corpus_generation_60x2", |b| {
        b.iter(|| {
            black_box(Corpus::generate(CorpusConfig {
                n_users: 60,
                n_weeks: 2,
                ..Default::default()
            }))
        })
    });

    group.bench_function("fig1_tail_curves", |b| {
        b.iter(|| black_box(fig1::run(&corpus, 0)))
    });

    group.bench_function("fig2_scatter", |b| {
        b.iter(|| black_box(fig2::run(&corpus, 0)))
    });

    group.bench_function("tab2_best_users", |b| {
        b.iter(|| black_box(tab2::run(&corpus, 0, 10)))
    });

    group.bench_function("fig3a_utility_boxes", |b| {
        b.iter(|| black_box(fig3::run_a(&corpus, tcp, 0.4)))
    });

    group.bench_function("fig3b_weight_sweep", |b| {
        b.iter(|| black_box(fig3::run_b(&corpus, tcp, &[0.1, 0.5, 0.9])))
    });

    group.bench_function("tab3_console_alarms", |b| {
        b.iter(|| black_box(tab3::run(&corpus, tcp)))
    });

    group.bench_function("fig4a_naive_curves", |b| {
        b.iter(|| black_box(fig4::run_a(&corpus, tcp, 0, 32)))
    });

    group.bench_function("fig4b_mimicry_budgets", |b| {
        b.iter(|| black_box(fig4::run_b(&corpus, tcp, 0, 0.9)))
    });

    group.bench_function("fig5_storm_replay", |b| {
        b.iter(|| black_box(fig5::run(&corpus, 0, &StormConfig::default())))
    });

    group.bench_function("drift_analysis", |b| {
        b.iter(|| black_box(drift::run(&corpus, tcp)))
    });

    group.bench_function("ablation_group_count", |b| {
        b.iter(|| black_box(ablation::group_count(&corpus, tcp, 0.5)))
    });

    group.bench_function("ablation_kmeans_probe", |b| {
        b.iter(|| black_box(ablation::kmeans_probe(&corpus, tcp)))
    });

    group.finish();
}

fn policies(c: &mut Criterion) {
    use hids_core::{eval::evaluate_policy, EvalConfig, Grouping, PartialMethod, Policy, ThresholdHeuristic};
    let corpus = bench_corpus();
    let ds = corpus.dataset(FeatureKind::TcpConnections, 0);
    let config = EvalConfig {
        w: 0.4,
        sweep: ds.default_sweep(),
    };

    let mut group = c.benchmark_group("policy");
    group.sample_size(10);
    for (name, grouping) in [
        ("homogeneous", Grouping::Homogeneous),
        ("full_diversity", Grouping::FullDiversity),
        ("partial_8", Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
    ] {
        group.bench_function(format!("configure_eval_p99/{name}"), |b| {
            b.iter_batched(
                || Policy {
                    grouping,
                    heuristic: ThresholdHeuristic::P99,
                },
                |policy| black_box(evaluate_policy(&ds, &policy, &config)),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("configure_eval_utility/{name}"), |b| {
            b.iter_batched(
                || Policy {
                    grouping,
                    heuristic: ThresholdHeuristic::UtilityMax {
                        w: 0.4,
                        sweep: ds.default_sweep(),
                    },
                },
                |policy| black_box(evaluate_policy(&ds, &policy, &config)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, figures, policies);
criterion_main!(benches);
