//! Benchmark-only crate: see `benches/figures.rs` (one benchmark per paper
//! table/figure) and `benches/substrate.rs` (micro-benchmarks of the
//! packet, flow, statistics and generator layers).
