//! # flowtab — flow reconstruction for the measurement pipeline
//!
//! Turns a stream of captured packets (parsed with [`netpkt`]) into
//! *flow records*: one record per transport connection, carrying the fields
//! the HIDS feature extractor needs — initiator/responder endpoints,
//! transport protocol, whether a SYN was seen from the initiator, packet and
//! byte counts, timestamps, and an application-protocol label.
//!
//! The paper's data pipeline ran `windump` on each end host and post-
//! processed with Bro; this crate is the equivalent of that post-processing
//! stage. The same [`FlowRecord`] type is also produced directly by the
//! synthetic trace generator, which is what makes the fast (flow-level) and
//! faithful (packet-level) experiment paths comparable.
//!
//! ```
//! use flowtab::{FlowExtractor, AppProtocol};
//! use netpkt::testutil::{build_tcp_frame, FrameSpec};
//! use netpkt::TcpFlags;
//!
//! let mut ex = FlowExtractor::new(Default::default());
//! let spec = FrameSpec::default(); // TCP to port 80
//! ex.push_frame(0.0, &build_tcp_frame(&spec, TcpFlags::syn_only(), 1, &[])).unwrap();
//! ex.push_frame(0.2, &build_tcp_frame(&spec, TcpFlags(TcpFlags::ACK), 2, b"GET /")).unwrap();
//! let records = ex.finish();
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].app, AppProtocol::Http);
//! assert!(records[0].initiator_syn);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod connlog;
pub mod dnstrack;
pub mod extract;
pub mod features;
pub mod record;
pub mod table;
pub mod tuple;

pub use conn::{TcpConnState, TcpTracker};
pub use dnstrack::{DnsStats, DnsTracker, DnsTransaction};
pub use extract::{ExtractError, ExtractStats, FlowExtractor};
pub use features::{extract_features, FeatureCounts, FeatureKind, FeatureSeries, Windowing};
pub use record::{AppProtocol, FlowRecord};
pub use table::{FlowTable, FlowTableConfig};
pub use tuple::{Endpoint, FiveTuple, FlowDirection, Transport};
