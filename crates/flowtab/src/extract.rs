//! Frame-level driver: parse captured Ethernet frames and feed the flow table.

use std::net::Ipv4Addr;

use crate::table::{FlowTable, FlowTableConfig};
use crate::tuple::{Endpoint, FiveTuple, Transport};
use crate::FlowRecord;
use netpkt::{
    DecodeError, EtherType, EthernetFrame, IcmpMessage, IpProtocol, Ipv4Packet, Layer,
    LayerResultExt, PcapPacket, TcpSegment, UdpDatagram,
};

/// Why a frame was skipped rather than contributing to a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractError {
    /// Frame failed to parse, tagged with the layer that rejected it.
    Parse(DecodeError),
    /// EtherType we don't decode (ARP, IPv6, ...).
    NonIpv4,
    /// IP protocol we don't track.
    UnsupportedProtocol,
}

impl From<DecodeError> for ExtractError {
    fn from(e: DecodeError) -> Self {
        ExtractError::Parse(e)
    }
}

impl core::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExtractError::Parse(e) => write!(f, "frame parse error: {e}"),
            ExtractError::NonIpv4 => write!(f, "not an IPv4 frame"),
            ExtractError::UnsupportedProtocol => write!(f, "untracked IP protocol"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Counters describing what the extractor saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Frames fed in.
    pub frames: u64,
    /// Frames contributing to a flow.
    pub accepted: u64,
    /// Frames skipped (parse errors, non-IPv4, unsupported protocols).
    pub skipped: u64,
    /// Frames with invalid IPv4 header checksums (still skipped).
    pub bad_ip_checksum: u64,
    /// Parse failures by layer (dense by [`Layer::index`]); the loss
    /// taxonomy operators read when judging a host's telemetry quality.
    pub parse_errors: [u64; Layer::ALL.len()],
}

impl ExtractStats {
    /// Parse failures recorded at one layer.
    pub fn parse_errors_at(&self, layer: Layer) -> u64 {
        self.parse_errors[layer.index()]
    }

    /// Total parse failures across all layers.
    pub fn parse_errors_total(&self) -> u64 {
        self.parse_errors.iter().sum()
    }
}

/// Parses frames and maintains a [`FlowTable`].
#[derive(Debug)]
pub struct FlowExtractor {
    table: FlowTable,
    stats: ExtractStats,
}

impl FlowExtractor {
    /// Create an extractor with the given flow-table configuration.
    pub fn new(config: FlowTableConfig) -> Self {
        Self {
            table: FlowTable::new(config),
            stats: ExtractStats::default(),
        }
    }

    /// Extraction counters so far.
    pub fn stats(&self) -> ExtractStats {
        self.stats
    }

    /// Feed one Ethernet frame captured at `ts` (seconds).
    pub fn push_frame(&mut self, ts: f64, frame: &[u8]) -> Result<(), ExtractError> {
        self.stats.frames += 1;
        match self.decode_and_observe(ts, frame) {
            Ok(()) => {
                self.stats.accepted += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.skipped += 1;
                if let ExtractError::Parse(d) = e {
                    self.stats.parse_errors[d.layer.index()] += 1;
                }
                Err(e)
            }
        }
    }

    /// Feed one pcap record (Ethernet link type assumed).
    pub fn push_pcap(&mut self, pkt: &PcapPacket) -> Result<(), ExtractError> {
        self.push_frame(pkt.timestamp(), &pkt.data)
    }

    fn decode_and_observe(&mut self, ts: f64, frame: &[u8]) -> Result<(), ExtractError> {
        let eth = EthernetFrame::parse(frame).at_layer(Layer::Ethernet)?;
        if eth.ethertype() != EtherType::Ipv4 {
            return Err(ExtractError::NonIpv4);
        }
        let ip = Ipv4Packet::parse(eth.payload()).at_layer(Layer::Ipv4)?;
        if !ip.verify_checksum() {
            self.stats.bad_ip_checksum += 1;
            return Err(ExtractError::Parse(
                netpkt::Error::BadChecksum.at(Layer::Ipv4),
            ));
        }
        let (src, dst) = (ip.src(), ip.dst());
        match ip.protocol() {
            IpProtocol::Tcp => {
                let tcp = TcpSegment::parse(ip.payload()).at_layer(Layer::Tcp)?;
                let tuple = tcp_tuple(src, dst, tcp.src_port(), tcp.dst_port());
                self.table
                    .observe(ts, tuple, tcp.payload().len(), Some(tcp.flags()));
                Ok(())
            }
            IpProtocol::Udp => {
                let udp = UdpDatagram::parse(ip.payload()).at_layer(Layer::Udp)?;
                let tuple = FiveTuple::new(
                    Endpoint::new(src, udp.src_port()),
                    Endpoint::new(dst, udp.dst_port()),
                    Transport::Udp,
                );
                self.table.observe(ts, tuple, udp.payload().len(), None);
                Ok(())
            }
            IpProtocol::Icmp => {
                let icmp = IcmpMessage::parse(ip.payload()).at_layer(Layer::Icmp)?;
                let tuple = FiveTuple::new(
                    Endpoint::new(src, icmp.identifier()),
                    Endpoint::new(dst, 0),
                    Transport::Icmp,
                );
                self.table.observe(ts, tuple, icmp.payload().len(), None);
                Ok(())
            }
            _ => Err(ExtractError::UnsupportedProtocol),
        }
    }

    /// Harvest flow records completed so far.
    pub fn harvest(&mut self) -> Vec<FlowRecord> {
        self.table.harvest()
    }

    /// End the trace and return all flow records, sorted by start time.
    pub fn finish(mut self) -> Vec<FlowRecord> {
        self.table.drain()
    }
}

fn tcp_tuple(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> FiveTuple {
    FiveTuple::new(
        Endpoint::new(src, sport),
        Endpoint::new(dst, dport),
        Transport::Tcp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AppProtocol;
    use netpkt::testutil::{build_dns_query_frame, build_tcp_frame, build_udp_frame, FrameSpec};
    use netpkt::TcpFlags;

    #[test]
    fn tcp_http_session_extracts_one_flow() {
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        let spec = FrameSpec::default();
        ex.push_frame(0.0, &build_tcp_frame(&spec, TcpFlags::syn_only(), 1, &[]))
            .unwrap();
        ex.push_frame(0.1, &build_tcp_frame(&spec, TcpFlags(TcpFlags::ACK), 2, b"GET / HTTP/1.0"))
            .unwrap();
        let recs = ex.finish();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].app, AppProtocol::Http);
        assert_eq!(recs[0].packets_fwd, 2);
        assert_eq!(recs[0].bytes_fwd, 14);
        assert!(recs[0].initiator_syn);
    }

    #[test]
    fn dns_and_udp_flows_separate() {
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        let spec = FrameSpec::default();
        ex.push_frame(0.0, &build_dns_query_frame(&spec, 1, "example.com"))
            .unwrap();
        let other = FrameSpec {
            dst_port: 12345,
            ..FrameSpec::default()
        };
        ex.push_frame(0.1, &build_udp_frame(&other, b"hello"))
            .unwrap();
        let recs = ex.finish();
        assert_eq!(recs.len(), 2);
        let apps: Vec<AppProtocol> = recs.iter().map(|r| r.app).collect();
        assert!(apps.contains(&AppProtocol::Dns));
        assert!(apps.contains(&AppProtocol::Other));
    }

    #[test]
    fn corrupt_frame_counted_and_skipped() {
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        let spec = FrameSpec::default();
        let mut frame = build_tcp_frame(&spec, TcpFlags::syn_only(), 1, &[]);
        frame[22] ^= 0xff; // corrupt an IP header byte (TTL) -> checksum fails
        let err = ex.push_frame(0.0, &frame).unwrap_err();
        assert_eq!(
            err,
            ExtractError::Parse(netpkt::Error::BadChecksum.at(Layer::Ipv4))
        );
        let stats = ex.stats();
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.bad_ip_checksum, 1);
        assert_eq!(stats.parse_errors_at(Layer::Ipv4), 1);
        assert_eq!(stats.parse_errors_total(), 1);
        assert!(ex.finish().is_empty());
    }

    #[test]
    fn short_garbage_rejected() {
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        assert!(ex.push_frame(0.0, &[0u8; 5]).is_err());
        assert!(matches!(
            ex.push_frame(0.0, &[0u8; 60]).unwrap_err(),
            ExtractError::NonIpv4 | ExtractError::Parse(_)
        ));
    }

    #[test]
    fn stats_track_accepted() {
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        let spec = FrameSpec::default();
        for i in 0..5u32 {
            ex.push_frame(
                f64::from(i) * 0.1,
                &build_tcp_frame(&spec, TcpFlags(TcpFlags::ACK), i, b"x"),
            )
            .unwrap();
        }
        assert_eq!(ex.stats().accepted, 5);
        assert_eq!(ex.stats().frames, 5);
    }
}
