//! Zeek-style `conn.log` text export/import for flow records.
//!
//! The paper processed its traces with Bro (now Zeek); emitting the same
//! tab-separated connection-summary format makes our flow records directly
//! comparable with a Zeek run over the exported pcaps, and gives the repo
//! a human-greppable trace artifact.

use std::net::Ipv4Addr;

use crate::conn::TcpConnState;
use crate::record::{AppProtocol, FlowRecord};
use crate::tuple::{Endpoint, Transport};

/// Render one record as a conn.log line:
/// `ts  id.orig_h  id.orig_p  id.resp_h  id.resp_p  proto  service
///  duration  orig_pkts  resp_pkts  orig_bytes  resp_bytes  conn_state`.
pub fn to_line(r: &FlowRecord) -> String {
    format!(
        "{:.6}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.6}\t{}\t{}\t{}\t{}\t{}",
        r.first_ts,
        r.initiator.addr,
        r.initiator.port,
        r.responder.addr,
        r.responder.port,
        proto_str(r.transport),
        service_str(r.app),
        r.duration(),
        r.packets_fwd,
        r.packets_rev,
        r.bytes_fwd,
        r.bytes_rev,
        state_str(r.tcp_state, r.initiator_syn),
    )
}

/// Render a whole trace with the header line.
pub fn to_log(records: &[FlowRecord]) -> String {
    let mut out = String::from(
        "#fields\tts\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\tproto\tservice\tduration\torig_pkts\tresp_pkts\torig_bytes\tresp_bytes\tconn_state\n",
    );
    for r in records {
        out.push_str(&to_line(r));
        out.push('\n');
    }
    out
}

/// Parse one line back into a flow record (inverse of [`to_line`] for the
/// fields the format carries; `syn_count` is reconstructed as 0/1 from the
/// connection state).
pub fn from_line(line: &str) -> Option<FlowRecord> {
    let mut f = line.split('\t');
    let first_ts: f64 = f.next()?.parse().ok()?;
    let orig_h: Ipv4Addr = f.next()?.parse().ok()?;
    let orig_p: u16 = f.next()?.parse().ok()?;
    let resp_h: Ipv4Addr = f.next()?.parse().ok()?;
    let resp_p: u16 = f.next()?.parse().ok()?;
    let transport = match f.next()? {
        "tcp" => Transport::Tcp,
        "udp" => Transport::Udp,
        "icmp" => Transport::Icmp,
        _ => return None,
    };
    let _service = f.next()?;
    let duration: f64 = f.next()?.parse().ok()?;
    let packets_fwd: u64 = f.next()?.parse().ok()?;
    let packets_rev: u64 = f.next()?.parse().ok()?;
    let bytes_fwd: u64 = f.next()?.parse().ok()?;
    let bytes_rev: u64 = f.next()?.parse().ok()?;
    let state = f.next()?;
    let (tcp_state, initiator_syn) = parse_state(transport, state);
    Some(FlowRecord {
        initiator: Endpoint::new(orig_h, orig_p),
        responder: Endpoint::new(resp_h, resp_p),
        transport,
        app: AppProtocol::classify(transport, resp_p),
        first_ts,
        last_ts: first_ts + duration,
        packets_fwd,
        packets_rev,
        bytes_fwd,
        bytes_rev,
        initiator_syn,
        syn_count: u32::from(initiator_syn),
        tcp_state,
    })
}

/// Parse a whole log (skipping `#` comment lines).
pub fn from_log(text: &str) -> Vec<FlowRecord> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(from_line)
        .collect()
}

fn proto_str(t: Transport) -> &'static str {
    match t {
        Transport::Tcp => "tcp",
        Transport::Udp => "udp",
        Transport::Icmp => "icmp",
    }
}

fn service_str(a: AppProtocol) -> &'static str {
    match a {
        AppProtocol::Dns => "dns",
        AppProtocol::Http => "http",
        AppProtocol::Https => "ssl",
        AppProtocol::Smtp => "smtp",
        AppProtocol::Other => "-",
    }
}

/// Zeek-ish conn_state labels for the states our tracker distinguishes.
fn state_str(state: Option<TcpConnState>, initiator_syn: bool) -> &'static str {
    match state {
        None => "-",
        Some(TcpConnState::Closed) => "SF",
        Some(TcpConnState::Reset) => "RSTO",
        Some(TcpConnState::SynSent) => "S0",
        Some(TcpConnState::SynReceived) => "S1",
        Some(TcpConnState::Established) => "S1E",
        Some(TcpConnState::FinWait) => "S2",
        Some(TcpConnState::Midstream) => {
            if initiator_syn {
                "SH"
            } else {
                "OTH"
            }
        }
    }
}

fn parse_state(transport: Transport, s: &str) -> (Option<TcpConnState>, bool) {
    if transport != Transport::Tcp {
        return (None, false);
    }
    match s {
        "SF" => (Some(TcpConnState::Closed), true),
        "RSTO" => (Some(TcpConnState::Reset), true),
        "S0" => (Some(TcpConnState::SynSent), true),
        "S1" => (Some(TcpConnState::SynReceived), true),
        "S1E" => (Some(TcpConnState::Established), true),
        "S2" => (Some(TcpConnState::FinWait), true),
        "SH" => (Some(TcpConnState::Midstream), true),
        _ => (Some(TcpConnState::Midstream), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> FlowRecord {
        FlowRecord {
            initiator: Endpoint::new(Ipv4Addr::new(10, 1, 0, 3), 50123),
            responder: Endpoint::new(Ipv4Addr::new(93, 184, 216, 34), 80),
            transport: Transport::Tcp,
            app: AppProtocol::Http,
            first_ts: 1234.5,
            last_ts: 1236.75,
            packets_fwd: 8,
            packets_rev: 6,
            bytes_fwd: 900,
            bytes_rev: 14000,
            initiator_syn: true,
            syn_count: 1,
            tcp_state: Some(TcpConnState::Closed),
        }
    }

    #[test]
    fn line_roundtrip_preserves_core_fields() {
        let r = record();
        let parsed = from_line(&to_line(&r)).expect("parses");
        assert_eq!(parsed.initiator, r.initiator);
        assert_eq!(parsed.responder, r.responder);
        assert_eq!(parsed.transport, r.transport);
        assert_eq!(parsed.app, r.app);
        assert!((parsed.first_ts - r.first_ts).abs() < 1e-6);
        assert!((parsed.duration() - r.duration()).abs() < 1e-6);
        assert_eq!(parsed.packets_fwd, r.packets_fwd);
        assert_eq!(parsed.bytes_rev, r.bytes_rev);
        assert_eq!(parsed.tcp_state, r.tcp_state);
        assert!(parsed.initiator_syn);
    }

    #[test]
    fn log_roundtrip_all_records() {
        let mut records = vec![record()];
        let mut udp = record();
        udp.transport = Transport::Udp;
        udp.responder.port = 53;
        udp.app = AppProtocol::Dns;
        udp.tcp_state = None;
        udp.initiator_syn = false;
        udp.syn_count = 0;
        records.push(udp);

        let text = to_log(&records);
        assert!(text.starts_with("#fields"));
        let parsed = from_log(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].app, AppProtocol::Dns);
        assert_eq!(parsed[1].tcp_state, None);
    }

    #[test]
    fn service_labels() {
        let mut r = record();
        assert!(to_line(&r).contains("\thttp\t"));
        r.responder.port = 443;
        r.app = AppProtocol::classify(r.transport, 443);
        assert!(to_line(&r).contains("\tssl\t"));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(from_line("not a log line").is_none());
        assert!(from_line("").is_none());
        assert!(from_line("1.0\t10.0.0.1\tnotaport\t1.2.3.4\t80\ttcp\t-\t0\t1\t1\t1\t1\tSF").is_none());
        // Comment/garbage lines skipped by from_log.
        assert_eq!(from_log("#comment\n\ngarbage\n").len(), 0);
    }

    #[test]
    fn state_labels_distinguish_scan_from_established() {
        let mut r = record();
        r.tcp_state = Some(TcpConnState::SynSent);
        assert!(to_line(&r).ends_with("S0"), "bare SYN = scan-like S0");
        r.tcp_state = Some(TcpConnState::Reset);
        assert!(to_line(&r).ends_with("RSTO"));
    }
}
