//! Transport endpoints and canonical five-tuples.

use std::net::Ipv4Addr;

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transport {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP, keyed by (identifier, 0) instead of ports.
    Icmp,
}

/// One side of a transport conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: Ipv4Addr,
    /// Transport port (or ICMP identifier).
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub fn new(addr: Ipv4Addr, port: u16) -> Self {
        Self { addr, port }
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// Direction of a packet relative to a flow's canonical orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDirection {
    /// Packet travels from the flow's initiator to its responder.
    FromInitiator,
    /// Packet travels from the responder back to the initiator.
    FromResponder,
}

impl FlowDirection {
    /// The opposite direction.
    pub fn reverse(self) -> Self {
        match self {
            FlowDirection::FromInitiator => FlowDirection::FromResponder,
            FlowDirection::FromResponder => FlowDirection::FromInitiator,
        }
    }
}

/// A directed five-tuple as observed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Packet source.
    pub src: Endpoint,
    /// Packet destination.
    pub dst: Endpoint,
    /// Transport protocol.
    pub transport: Transport,
}

impl FiveTuple {
    /// Construct a directed five-tuple.
    pub fn new(src: Endpoint, dst: Endpoint, transport: Transport) -> Self {
        Self {
            src,
            dst,
            transport,
        }
    }

    /// The same conversation viewed from the other side.
    pub fn reversed(&self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            transport: self.transport,
        }
    }

    /// Canonical (direction-independent) key for flow-table lookup, plus the
    /// direction this particular tuple represents relative to that key.
    ///
    /// The canonical orientation puts the lexicographically smaller
    /// `(addr, port)` endpoint first, so both directions of a conversation
    /// map to the same key.
    pub fn canonical(&self) -> (FlowKey, FlowDirection) {
        let a = (self.src.addr, self.src.port);
        let b = (self.dst.addr, self.dst.port);
        if a <= b {
            (
                FlowKey {
                    lo: self.src,
                    hi: self.dst,
                    transport: self.transport,
                },
                FlowDirection::FromInitiator,
            )
        } else {
            (
                FlowKey {
                    lo: self.dst,
                    hi: self.src,
                    transport: self.transport,
                },
                FlowDirection::FromResponder,
            )
        }
    }
}

impl core::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let proto = match self.transport {
            Transport::Tcp => "tcp",
            Transport::Udp => "udp",
            Transport::Icmp => "icmp",
        };
        write!(f, "{} {} -> {}", proto, self.src, self.dst)
    }
}

/// Direction-independent flow-table key.
///
/// Note: the *canonical* orientation (`lo`/`hi`) is a lookup artifact only;
/// which endpoint actually initiated the flow is recorded on the flow entry
/// from the first observed packet, not from this ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    pub(crate) lo: Endpoint,
    pub(crate) hi: Endpoint,
    /// Transport protocol.
    pub transport: Transport,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(last: u8, port: u16) -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    #[test]
    fn both_directions_share_a_key() {
        let fwd = FiveTuple::new(ep(1, 49152), ep(2, 80), Transport::Tcp);
        let rev = fwd.reversed();
        let (k1, d1) = fwd.canonical();
        let (k2, d2) = rev.canonical();
        assert_eq!(k1, k2);
        assert_eq!(d1, d2.reverse());
    }

    #[test]
    fn same_addr_different_port_ordering() {
        let t = FiveTuple::new(ep(1, 9000), ep(1, 80), Transport::Udp);
        let (k1, d1) = t.canonical();
        let (k2, d2) = t.reversed().canonical();
        assert_eq!(k1, k2);
        assert_ne!(d1, d2);
    }

    #[test]
    fn transport_distinguishes_flows() {
        let tcp = FiveTuple::new(ep(1, 1234), ep(2, 53), Transport::Tcp);
        let udp = FiveTuple::new(ep(1, 1234), ep(2, 53), Transport::Udp);
        assert_ne!(tcp.canonical().0, udp.canonical().0);
    }

    #[test]
    fn display_formats() {
        let t = FiveTuple::new(ep(1, 1234), ep(2, 53), Transport::Udp);
        assert_eq!(t.to_string(), "udp 10.0.0.1:1234 -> 10.0.0.2:53");
    }

    #[test]
    fn equal_endpoints_still_canonicalise() {
        // Degenerate but must not panic: both sides identical.
        let t = FiveTuple::new(ep(1, 80), ep(1, 80), Transport::Tcp);
        let (_, d) = t.canonical();
        assert_eq!(d, FlowDirection::FromInitiator);
    }
}
