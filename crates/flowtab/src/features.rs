//! Per-window anomaly-detection features (the paper's Table 1).
//!
//! Each end host aggregates its flow records into fixed-width time windows
//! (5- or 15-minute bins in the paper) and counts, per window:
//!
//! | feature | anomaly targeted | commercial example |
//! |---|---|---|
//! | `num-DNS-connections` | botnet C&C | Damballa |
//! | `num-TCP-connections` | scans, DDoS | Cisco CSA |
//! | `num-TCP-SYN` | scans, DDoS | Bro, CSA |
//! | `num-HTTP-connections` | clickfraud, DDoS | Bro, BlackICE |
//! | `num-distinct-connections` | scans | Bro |
//! | `num-UDP-connections` | scans, DDoS | Cisco CSA |
//!
//! All features are *additive*: malicious traffic overlaid on benign traffic
//! adds to the per-window counts, which is the property the paper's attack
//! model (`g + b`) relies on.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

use crate::record::{AppProtocol, FlowRecord};
use crate::tuple::Transport;

/// The six monitored traffic features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FeatureKind {
    /// DNS transactions initiated by the host (port 53, UDP or TCP).
    DnsConnections,
    /// TCP connections initiated by the host.
    TcpConnections,
    /// TCP SYN packets sent by the host (retransmissions included).
    TcpSyn,
    /// HTTP connections (TCP port 80/8080) initiated by the host.
    HttpConnections,
    /// Distinct destination IP addresses contacted by the host.
    DistinctConnections,
    /// Non-DNS UDP flows initiated by the host.
    UdpConnections,
}

impl FeatureKind {
    /// All features, in a stable display order.
    pub const ALL: [FeatureKind; 6] = [
        FeatureKind::DnsConnections,
        FeatureKind::TcpConnections,
        FeatureKind::TcpSyn,
        FeatureKind::HttpConnections,
        FeatureKind::DistinctConnections,
        FeatureKind::UdpConnections,
    ];

    /// Dense index into feature arrays.
    pub fn index(self) -> usize {
        match self {
            FeatureKind::DnsConnections => 0,
            FeatureKind::TcpConnections => 1,
            FeatureKind::TcpSyn => 2,
            FeatureKind::HttpConnections => 3,
            FeatureKind::DistinctConnections => 4,
            FeatureKind::UdpConnections => 5,
        }
    }

    /// Human-readable name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            FeatureKind::DnsConnections => "num-DNS-connections",
            FeatureKind::TcpConnections => "num-TCP-connections",
            FeatureKind::TcpSyn => "num-TCP-SYN",
            FeatureKind::HttpConnections => "num-HTTP-connections",
            FeatureKind::DistinctConnections => "num-distinct-connections",
            FeatureKind::UdpConnections => "num-UDP-connections",
        }
    }
}

impl core::fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// One window's counts for all six features.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureCounts(pub [u64; 6]);

impl FeatureCounts {
    /// Count for one feature.
    pub fn get(&self, k: FeatureKind) -> u64 {
        self.0[k.index()]
    }

    /// Mutable count for one feature.
    pub fn get_mut(&mut self, k: FeatureKind) -> &mut u64 {
        &mut self.0[k.index()]
    }

    /// Element-wise (saturating) addition — additive attack overlay.
    pub fn saturating_add(&self, other: &FeatureCounts) -> FeatureCounts {
        let mut out = [0u64; 6];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            *o = a.saturating_add(*b);
        }
        FeatureCounts(out)
    }
}

/// Fixed-width time binning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Windowing {
    /// Window width, seconds (the paper uses 300 and 900).
    pub width_secs: f64,
}

impl Windowing {
    /// The paper's default 15-minute bins.
    pub const FIFTEEN_MIN: Windowing = Windowing { width_secs: 900.0 };
    /// The paper's alternative 5-minute bins.
    pub const FIVE_MIN: Windowing = Windowing { width_secs: 300.0 };

    /// Window index for a timestamp (seconds from trace start).
    pub fn window_of(&self, ts: f64) -> usize {
        (ts / self.width_secs).floor().max(0.0) as usize
    }

    /// Windows per 7-day week.
    pub fn windows_per_week(&self) -> usize {
        (7.0 * 86_400.0 / self.width_secs).round() as usize
    }
}

/// A host's binned feature time series.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSeries {
    /// The binning used.
    pub windowing: Windowing,
    /// Per-window counts, index 0 = first window of the trace.
    pub windows: Vec<FeatureCounts>,
}

impl FeatureSeries {
    /// All-zero series of `n` windows.
    pub fn zeros(windowing: Windowing, n: usize) -> Self {
        Self {
            windowing,
            windows: vec![FeatureCounts::default(); n],
        }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when the series has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// One feature's counts as a dense vector.
    pub fn feature(&self, k: FeatureKind) -> Vec<u64> {
        self.windows.iter().map(|w| w.get(k)).collect()
    }

    /// Overlay (add) another series window-by-window; the shorter series
    /// padding with zeros. Used for additive attack injection.
    pub fn overlay(&self, other: &FeatureSeries) -> FeatureSeries {
        let n = self.windows.len().max(other.windows.len());
        let mut windows = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.windows.get(i).copied().unwrap_or_default();
            let b = other.windows.get(i).copied().unwrap_or_default();
            windows.push(a.saturating_add(&b));
        }
        FeatureSeries {
            windowing: self.windowing,
            windows,
        }
    }
}

/// Extract a host's [`FeatureSeries`] from its flow records.
///
/// Only flows *initiated by* `host` count (the paper's per-source features):
/// a flow contributes to the window containing its first packet.
/// `n_windows` fixes the series length so hosts with no late traffic still
/// produce comparable series.
pub fn extract_features(
    flows: &[FlowRecord],
    host: Ipv4Addr,
    windowing: Windowing,
    n_windows: usize,
) -> FeatureSeries {
    let mut series = FeatureSeries::zeros(windowing, n_windows);
    let mut distinct: Vec<HashSet<Ipv4Addr>> = vec![HashSet::new(); n_windows];
    for flow in flows {
        if flow.initiator.addr != host {
            continue;
        }
        let w = windowing.window_of(flow.first_ts);
        if w >= n_windows {
            continue;
        }
        let counts = &mut series.windows[w];
        match (flow.transport, flow.app) {
            (_, AppProtocol::Dns) => *counts.get_mut(FeatureKind::DnsConnections) += 1,
            (Transport::Tcp, _) => {
                *counts.get_mut(FeatureKind::TcpConnections) += 1;
                *counts.get_mut(FeatureKind::TcpSyn) += u64::from(flow.syn_count);
                if flow.app == AppProtocol::Http {
                    *counts.get_mut(FeatureKind::HttpConnections) += 1;
                }
            }
            (Transport::Udp, _) => *counts.get_mut(FeatureKind::UdpConnections) += 1,
            (Transport::Icmp, _) => {}
        }
        distinct[w].insert(flow.responder.addr);
    }
    for (w, set) in distinct.iter().enumerate() {
        *series.windows[w].get_mut(FeatureKind::DistinctConnections) = set.len() as u64;
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Endpoint;

    fn host() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }

    fn flow(ts: f64, transport: Transport, dport: u16, dst_last: u8, syn: bool) -> FlowRecord {
        FlowRecord::synthetic(
            Endpoint::new(host(), 50_000),
            Endpoint::new(Ipv4Addr::new(93, 184, 0, dst_last), dport),
            transport,
            ts,
            1.0,
            4,
            400,
            syn,
        )
    }

    #[test]
    fn feature_indices_are_dense_and_distinct() {
        let mut seen = [false; 6];
        for k in FeatureKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn extraction_counts_by_kind() {
        let flows = vec![
            flow(10.0, Transport::Tcp, 80, 1, true),   // tcp + http + syn
            flow(20.0, Transport::Tcp, 443, 2, true),  // tcp + syn
            flow(30.0, Transport::Tcp, 22, 2, false),  // tcp, midstream (no syn)
            flow(40.0, Transport::Udp, 53, 3, false),  // dns
            flow(50.0, Transport::Udp, 9999, 4, false), // udp
            flow(60.0, Transport::Icmp, 0, 5, false),  // distinct only
        ];
        let s = extract_features(&flows, host(), Windowing::FIFTEEN_MIN, 1);
        let w = &s.windows[0];
        assert_eq!(w.get(FeatureKind::TcpConnections), 3);
        assert_eq!(w.get(FeatureKind::TcpSyn), 2);
        assert_eq!(w.get(FeatureKind::HttpConnections), 1);
        assert_eq!(w.get(FeatureKind::DnsConnections), 1);
        assert_eq!(w.get(FeatureKind::UdpConnections), 1);
        assert_eq!(w.get(FeatureKind::DistinctConnections), 5);
    }

    #[test]
    fn flows_from_other_hosts_ignored() {
        let mut f = flow(10.0, Transport::Tcp, 80, 1, true);
        f.initiator.addr = Ipv4Addr::new(10, 0, 0, 99);
        let s = extract_features(&[f], host(), Windowing::FIFTEEN_MIN, 1);
        assert_eq!(s.windows[0], FeatureCounts::default());
    }

    #[test]
    fn windows_partition_time() {
        let w = Windowing::FIFTEEN_MIN;
        assert_eq!(w.window_of(0.0), 0);
        assert_eq!(w.window_of(899.999), 0);
        assert_eq!(w.window_of(900.0), 1);
        assert_eq!(w.windows_per_week(), 672);
        assert_eq!(Windowing::FIVE_MIN.windows_per_week(), 2016);
    }

    #[test]
    fn late_flows_dropped_not_panicking() {
        let flows = vec![flow(10_000.0, Transport::Tcp, 80, 1, true)];
        let s = extract_features(&flows, host(), Windowing::FIFTEEN_MIN, 2);
        assert!(s.windows.iter().all(|w| *w == FeatureCounts::default()));
    }

    #[test]
    fn overlay_adds_and_pads() {
        let mut a = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, 2);
        *a.windows[0].get_mut(FeatureKind::TcpConnections) = 5;
        let mut b = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, 3);
        *b.windows[0].get_mut(FeatureKind::TcpConnections) = 7;
        *b.windows[2].get_mut(FeatureKind::UdpConnections) = 1;
        let c = a.overlay(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.windows[0].get(FeatureKind::TcpConnections), 12);
        assert_eq!(c.windows[2].get(FeatureKind::UdpConnections), 1);
    }

    #[test]
    fn syn_retransmissions_add_up() {
        let mut f = flow(10.0, Transport::Tcp, 80, 1, true);
        f.syn_count = 3;
        let s = extract_features(&[f], host(), Windowing::FIFTEEN_MIN, 1);
        assert_eq!(s.windows[0].get(FeatureKind::TcpSyn), 3);
        assert_eq!(s.windows[0].get(FeatureKind::TcpConnections), 1);
    }

    #[test]
    fn distinct_counts_unique_responders_across_protocols() {
        let flows = vec![
            flow(10.0, Transport::Tcp, 80, 1, true),
            flow(11.0, Transport::Tcp, 443, 1, true), // same dest
            flow(12.0, Transport::Udp, 9999, 1, false), // same dest again
            flow(13.0, Transport::Udp, 9999, 2, false),
        ];
        let s = extract_features(&flows, host(), Windowing::FIFTEEN_MIN, 1);
        assert_eq!(s.windows[0].get(FeatureKind::DistinctConnections), 2);
    }

    #[test]
    fn dns_over_tcp_counts_as_dns_not_tcp() {
        // The paper's num-DNS-connections feature tracks the service, not
        // the transport; our classifier labels TCP/53 as DNS.
        let flows = vec![flow(10.0, Transport::Tcp, 53, 1, true)];
        let s = extract_features(&flows, host(), Windowing::FIFTEEN_MIN, 1);
        assert_eq!(s.windows[0].get(FeatureKind::DnsConnections), 1);
        assert_eq!(s.windows[0].get(FeatureKind::TcpConnections), 0);
    }
}
