//! A compact TCP connection state machine.
//!
//! Tracks enough of RFC 793 to classify connections the way Bro's connection
//! summaries do: did the initiator send a SYN, was the handshake completed,
//! did the connection close cleanly (FIN exchange) or abort (RST). The
//! tracker is deliberately endpoint-agnostic — it observes a packet stream
//! from the middle (or from a host's own capture) rather than owning a
//! socket.

use crate::tuple::FlowDirection;
use netpkt::TcpFlags;

/// Observable lifecycle states of a tracked TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpConnState {
    /// Nothing but the initial SYN from the initiator.
    SynSent,
    /// SYN and SYN|ACK seen; waiting for the final handshake ACK.
    SynReceived,
    /// Handshake complete; data may flow.
    Established,
    /// One side sent FIN.
    FinWait,
    /// Both sides sent FIN (clean close).
    Closed,
    /// Connection aborted with RST.
    Reset,
    /// Traffic seen without a handshake (capture started mid-connection,
    /// or a scanner's bare data packet).
    Midstream,
}

impl TcpConnState {
    /// True once no further state transitions are possible.
    pub fn is_terminal(self) -> bool {
        matches!(self, TcpConnState::Closed | TcpConnState::Reset)
    }
}

/// Per-connection TCP tracker.
#[derive(Debug, Clone)]
pub struct TcpTracker {
    state: TcpConnState,
    /// SYN (without ACK) seen from the initiator.
    initiator_syn: bool,
    /// SYN|ACK seen from the responder.
    responder_synack: bool,
    fin_from_initiator: bool,
    fin_from_responder: bool,
    /// Count of pure SYN packets from the initiator (retransmissions
    /// included — scan detectors count SYN attempts, not connections).
    syn_count: u32,
}

impl TcpTracker {
    /// Start tracking from the first observed packet of a connection.
    pub fn new(first_flags: TcpFlags, first_dir: FlowDirection) -> Self {
        let mut t = Self {
            state: TcpConnState::Midstream,
            initiator_syn: false,
            responder_synack: false,
            fin_from_initiator: false,
            fin_from_responder: false,
            syn_count: 0,
        };
        t.observe(first_flags, first_dir);
        t
    }

    /// Current connection state.
    pub fn state(&self) -> TcpConnState {
        self.state
    }

    /// True if the initiator's opening SYN was observed.
    pub fn initiator_syn(&self) -> bool {
        self.initiator_syn
    }

    /// Number of pure SYNs observed from the initiator.
    pub fn syn_count(&self) -> u32 {
        self.syn_count
    }

    /// True once the three-way handshake completed.
    pub fn handshake_complete(&self) -> bool {
        matches!(
            self.state,
            TcpConnState::Established | TcpConnState::FinWait | TcpConnState::Closed
        )
    }

    /// Feed one packet's flags and direction through the state machine.
    pub fn observe(&mut self, flags: TcpFlags, dir: FlowDirection) {
        if flags.syn() && !flags.ack() && dir == FlowDirection::FromInitiator {
            self.initiator_syn = true;
            self.syn_count += 1;
        }
        if flags.syn() && flags.ack() && dir == FlowDirection::FromResponder {
            self.responder_synack = true;
        }
        if flags.fin() {
            match dir {
                FlowDirection::FromInitiator => self.fin_from_initiator = true,
                FlowDirection::FromResponder => self.fin_from_responder = true,
            }
        }

        if self.state.is_terminal() {
            return;
        }
        if flags.rst() {
            self.state = TcpConnState::Reset;
            return;
        }

        self.state = match self.state {
            TcpConnState::Midstream if self.initiator_syn && !self.responder_synack => {
                TcpConnState::SynSent
            }
            TcpConnState::SynSent if self.responder_synack => TcpConnState::SynReceived,
            TcpConnState::SynReceived
                if flags.ack() && !flags.syn() && dir == FlowDirection::FromInitiator =>
            {
                TcpConnState::Established
            }
            s @ (TcpConnState::Established | TcpConnState::FinWait) => {
                match (self.fin_from_initiator, self.fin_from_responder) {
                    (true, true) => TcpConnState::Closed,
                    (true, false) | (false, true) => TcpConnState::FinWait,
                    (false, false) => s,
                }
            }
            // A midstream connection that exchanges FINs still closes.
            TcpConnState::Midstream if self.fin_from_initiator && self.fin_from_responder => {
                TcpConnState::Closed
            }
            s => s,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FlowDirection::{FromInitiator as I, FromResponder as R};

    fn flags(bits: u8) -> TcpFlags {
        TcpFlags(bits)
    }

    #[test]
    fn full_lifecycle_clean_close() {
        let mut t = TcpTracker::new(TcpFlags::syn_only(), I);
        assert_eq!(t.state(), TcpConnState::SynSent);
        assert!(t.initiator_syn());
        t.observe(TcpFlags::syn_ack(), R);
        assert_eq!(t.state(), TcpConnState::SynReceived);
        t.observe(flags(TcpFlags::ACK), I);
        assert_eq!(t.state(), TcpConnState::Established);
        assert!(t.handshake_complete());
        t.observe(flags(TcpFlags::ACK | TcpFlags::PSH), I);
        assert_eq!(t.state(), TcpConnState::Established);
        t.observe(flags(TcpFlags::FIN | TcpFlags::ACK), I);
        assert_eq!(t.state(), TcpConnState::FinWait);
        t.observe(flags(TcpFlags::FIN | TcpFlags::ACK), R);
        assert_eq!(t.state(), TcpConnState::Closed);
        assert!(t.state().is_terminal());
    }

    #[test]
    fn rst_aborts_from_any_state() {
        let mut t = TcpTracker::new(TcpFlags::syn_only(), I);
        t.observe(flags(TcpFlags::RST), R);
        assert_eq!(t.state(), TcpConnState::Reset);
        // Terminal: further packets don't resurrect it.
        t.observe(TcpFlags::syn_ack(), R);
        assert_eq!(t.state(), TcpConnState::Reset);
    }

    #[test]
    fn syn_retransmissions_counted() {
        let mut t = TcpTracker::new(TcpFlags::syn_only(), I);
        t.observe(TcpFlags::syn_only(), I);
        t.observe(TcpFlags::syn_only(), I);
        assert_eq!(t.syn_count(), 3);
        assert_eq!(t.state(), TcpConnState::SynSent);
    }

    #[test]
    fn midstream_traffic_recognised() {
        let mut t = TcpTracker::new(flags(TcpFlags::ACK | TcpFlags::PSH), I);
        assert_eq!(t.state(), TcpConnState::Midstream);
        assert!(!t.initiator_syn());
        assert!(!t.handshake_complete());
        // Midstream FIN exchange still closes.
        t.observe(flags(TcpFlags::FIN | TcpFlags::ACK), I);
        t.observe(flags(TcpFlags::FIN | TcpFlags::ACK), R);
        assert_eq!(t.state(), TcpConnState::Closed);
    }

    #[test]
    fn synack_first_is_midstream_not_syn_sent() {
        // Seeing only the responder's SYN|ACK (e.g. asymmetric capture)
        // must not count as an initiator SYN.
        let t = TcpTracker::new(TcpFlags::syn_ack(), R);
        assert!(!t.initiator_syn());
        assert_eq!(t.syn_count(), 0);
    }

    #[test]
    fn handshake_requires_initiator_ack() {
        let mut t = TcpTracker::new(TcpFlags::syn_only(), I);
        t.observe(TcpFlags::syn_ack(), R);
        // An ACK from the *responder* does not complete the handshake.
        t.observe(flags(TcpFlags::ACK), R);
        assert_eq!(t.state(), TcpConnState::SynReceived);
        t.observe(flags(TcpFlags::ACK), I);
        assert_eq!(t.state(), TcpConnState::Established);
    }
}
