//! Flow records — the unit of data exchanged between the capture pipeline,
//! the synthetic generator and the feature extractor.

use crate::conn::TcpConnState;
use crate::tuple::{Endpoint, Transport};

/// Application-protocol label assigned to a flow.
///
/// Classification is by well-known responder port, which matches both the
/// paper's features (HTTP = TCP connections on port 80) and what Bro's
/// default policy scripts did in 2007 for these protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProtocol {
    /// DNS: port 53 over UDP or TCP.
    Dns,
    /// HTTP: TCP port 80 or 8080.
    Http,
    /// HTTPS: TCP port 443 (kept distinct from HTTP; the paper's
    /// `num-HTTP-connections` feature counts port 80 only).
    Https,
    /// SMTP: TCP port 25.
    Smtp,
    /// Anything else.
    Other,
}

impl AppProtocol {
    /// Classify from transport protocol and responder port.
    pub fn classify(transport: Transport, responder_port: u16) -> Self {
        match (transport, responder_port) {
            (Transport::Tcp, 53) | (Transport::Udp, 53) => AppProtocol::Dns,
            (Transport::Tcp, 80) | (Transport::Tcp, 8080) => AppProtocol::Http,
            (Transport::Tcp, 443) => AppProtocol::Https,
            (Transport::Tcp, 25) => AppProtocol::Smtp,
            _ => AppProtocol::Other,
        }
    }
}

/// A completed (or timed-out) flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Endpoint that sent the first observed packet.
    pub initiator: Endpoint,
    /// The other endpoint.
    pub responder: Endpoint,
    /// Transport protocol.
    pub transport: Transport,
    /// Application label (derived from `transport` + responder port).
    pub app: AppProtocol,
    /// Timestamp of the first packet, seconds since trace start/epoch.
    pub first_ts: f64,
    /// Timestamp of the last packet.
    pub last_ts: f64,
    /// Packets sent by the initiator.
    pub packets_fwd: u64,
    /// Packets sent by the responder.
    pub packets_rev: u64,
    /// Payload bytes sent by the initiator.
    pub bytes_fwd: u64,
    /// Payload bytes sent by the responder.
    pub bytes_rev: u64,
    /// True when the initiator's opening SYN was observed (TCP only).
    pub initiator_syn: bool,
    /// Number of pure SYN packets from the initiator (TCP only).
    pub syn_count: u32,
    /// Final TCP state (TCP only; `None` for UDP/ICMP).
    pub tcp_state: Option<TcpConnState>,
}

impl FlowRecord {
    /// Flow duration in seconds.
    pub fn duration(&self) -> f64 {
        (self.last_ts - self.first_ts).max(0.0)
    }

    /// Total packets both directions.
    pub fn total_packets(&self) -> u64 {
        self.packets_fwd + self.packets_rev
    }

    /// Total payload bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_fwd + self.bytes_rev
    }

    /// Convenience constructor for generator-produced flows where only the
    /// fields used by feature extraction matter.
    #[allow(clippy::too_many_arguments)]
    pub fn synthetic(
        initiator: Endpoint,
        responder: Endpoint,
        transport: Transport,
        first_ts: f64,
        duration: f64,
        packets: u64,
        bytes: u64,
        initiator_syn: bool,
    ) -> Self {
        FlowRecord {
            initiator,
            responder,
            transport,
            app: AppProtocol::classify(transport, responder.port),
            first_ts,
            last_ts: first_ts + duration,
            packets_fwd: packets,
            packets_rev: packets / 2,
            bytes_fwd: bytes,
            bytes_rev: bytes / 2,
            initiator_syn,
            syn_count: u32::from(initiator_syn),
            tcp_state: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ep(last: u8, port: u16) -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    #[test]
    fn classification_table() {
        use AppProtocol::*;
        use Transport::*;
        for (t, port, expect) in [
            (Udp, 53, Dns),
            (Tcp, 53, Dns),
            (Tcp, 80, Http),
            (Tcp, 8080, Http),
            (Tcp, 443, Https),
            (Tcp, 25, Smtp),
            (Udp, 80, Other),
            (Tcp, 22, Other),
            (Icmp, 0, Other),
        ] {
            assert_eq!(AppProtocol::classify(t, port), expect, "{t:?}/{port}");
        }
    }

    #[test]
    fn duration_never_negative() {
        let mut r = FlowRecord::synthetic(ep(1, 1000), ep(2, 80), Transport::Tcp, 10.0, 5.0, 4, 100, true);
        assert!((r.duration() - 5.0).abs() < 1e-12);
        r.last_ts = 9.0; // clock skew in a merged capture
        assert_eq!(r.duration(), 0.0);
    }

    #[test]
    fn synthetic_flow_is_classified() {
        let r = FlowRecord::synthetic(ep(1, 5555), ep(2, 53), Transport::Udp, 0.0, 0.05, 2, 80, false);
        assert_eq!(r.app, AppProtocol::Dns);
        assert_eq!(r.total_packets(), 3);
        assert_eq!(r.total_bytes(), 120);
        assert_eq!(r.syn_count, 0);
    }
}
