//! The flow table: groups packets into flows and emits [`FlowRecord`]s.

use std::collections::HashMap;

use crate::conn::TcpTracker;
use crate::record::{AppProtocol, FlowRecord};
use crate::tuple::{FiveTuple, FlowDirection};
use crate::tuple::FlowKey;
use netpkt::TcpFlags;

/// Flow-table tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct FlowTableConfig {
    /// Evict a flow after this many seconds without a packet.
    pub idle_timeout: f64,
    /// Emit a record for (and re-key) a flow after this total lifetime,
    /// so month-long connections still appear in per-window features.
    pub active_timeout: f64,
    /// Hard cap on concurrently tracked flows; when full, the stalest flow
    /// is evicted to make room (mirrors real capture-tool behaviour under
    /// scan floods).
    pub max_flows: usize,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        Self {
            idle_timeout: 60.0,
            active_timeout: 3600.0,
            max_flows: 1 << 20,
        }
    }
}

#[derive(Debug)]
struct FlowEntry {
    record: FlowRecord,
    /// Orientation of the canonical key's `lo` endpoint: true when `lo` is
    /// the initiator.
    lo_is_initiator: bool,
    tcp: Option<TcpTracker>,
}

/// Groups directed packets into bidirectional flows.
///
/// Call [`FlowTable::observe`] per packet (in timestamp order), harvesting
/// any records it returns; call [`FlowTable::drain`] at end of trace.
#[derive(Debug)]
pub struct FlowTable {
    config: FlowTableConfig,
    flows: HashMap<FlowKey, FlowEntry>,
    /// Completed records not yet harvested.
    out: Vec<FlowRecord>,
    last_sweep: f64,
}

impl FlowTable {
    /// Create an empty table.
    pub fn new(config: FlowTableConfig) -> Self {
        Self {
            config,
            flows: HashMap::new(),
            out: Vec::new(),
            last_sweep: 0.0,
        }
    }

    /// Number of currently open flows.
    pub fn open_flows(&self) -> usize {
        self.flows.len()
    }

    /// Observe one packet.
    ///
    /// `payload_len` is the transport payload length; `tcp_flags` is `None`
    /// for non-TCP packets. Timestamps must be non-decreasing; the table
    /// sweeps for idle flows once per second of trace time.
    pub fn observe(
        &mut self,
        ts: f64,
        tuple: FiveTuple,
        payload_len: usize,
        tcp_flags: Option<TcpFlags>,
    ) {
        if ts - self.last_sweep >= 1.0 {
            self.sweep(ts);
            self.last_sweep = ts;
        }

        let (key, dir_vs_canonical) = tuple.canonical();

        // Active-timeout / terminal-state rollover: if the existing entry is
        // finished, flush it and start a new flow for this packet.
        let needs_rollover = self.flows.get(&key).is_some_and(|e| {
            ts - e.record.first_ts > self.config.active_timeout
                || e.tcp.as_ref().is_some_and(|t| t.state().is_terminal())
                    && tcp_flags.is_some_and(|f| f.syn() && !f.ack())
        });
        if needs_rollover {
            if let Some(e) = self.flows.remove(&key) {
                self.out.push(e.record);
            }
        }

        if let Some(entry) = self.flows.get_mut(&key) {
            let dir = if entry.lo_is_initiator {
                dir_vs_canonical
            } else {
                dir_vs_canonical.reverse()
            };
            entry.record.last_ts = ts;
            match dir {
                FlowDirection::FromInitiator => {
                    entry.record.packets_fwd += 1;
                    entry.record.bytes_fwd += payload_len as u64;
                }
                FlowDirection::FromResponder => {
                    entry.record.packets_rev += 1;
                    entry.record.bytes_rev += payload_len as u64;
                }
            }
            if let (Some(tracker), Some(flags)) = (entry.tcp.as_mut(), tcp_flags) {
                tracker.observe(flags, dir);
                entry.record.initiator_syn = tracker.initiator_syn();
                entry.record.syn_count = tracker.syn_count();
                entry.record.tcp_state = Some(tracker.state());
            }
            return;
        }

        if self.flows.len() >= self.config.max_flows {
            self.evict_stalest();
        }

        // First packet defines the initiator.
        let tcp = tcp_flags.map(|f| TcpTracker::new(f, FlowDirection::FromInitiator));
        let record = FlowRecord {
            initiator: tuple.src,
            responder: tuple.dst,
            transport: tuple.transport,
            app: AppProtocol::classify(tuple.transport, tuple.dst.port),
            first_ts: ts,
            last_ts: ts,
            packets_fwd: 1,
            packets_rev: 0,
            bytes_fwd: payload_len as u64,
            bytes_rev: 0,
            initiator_syn: tcp.as_ref().is_some_and(|t| t.initiator_syn()),
            syn_count: tcp.as_ref().map_or(0, |t| t.syn_count()),
            tcp_state: tcp.as_ref().map(|t| t.state()),
        };
        self.flows.insert(
            key,
            FlowEntry {
                record,
                lo_is_initiator: dir_vs_canonical == FlowDirection::FromInitiator,
                tcp,
            },
        );
    }

    /// Harvest records completed so far (closed, reset, idle- or
    /// active-timed-out flows).
    pub fn harvest(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.out)
    }

    /// Flush everything (end of trace) and return all remaining records
    /// plus anything not yet harvested.
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        let mut all = std::mem::take(&mut self.out);
        all.extend(self.flows.drain().map(|(_, e)| e.record));
        all.sort_by(|a, b| a.first_ts.total_cmp(&b.first_ts));
        all
    }

    fn sweep(&mut self, now: f64) {
        let idle = self.config.idle_timeout;
        let mut expired: Vec<FlowKey> = self
            .flows
            .iter()
            .filter(|(_, e)| {
                now - e.record.last_ts > idle
                    || e.tcp.as_ref().is_some_and(|t| t.state().is_terminal())
            })
            .map(|(k, _)| *k)
            .collect();
        // Deterministic output order regardless of hash-map iteration.
        expired.sort_by_key(|k| (k.lo, k.hi));
        for key in expired {
            if let Some(e) = self.flows.remove(&key) {
                self.out.push(e.record);
            }
        }
    }

    fn evict_stalest(&mut self) {
        if let Some(key) = self
            .flows
            .iter()
            .min_by(|a, b| a.1.record.last_ts.total_cmp(&b.1.record.last_ts))
            .map(|(k, _)| *k)
        {
            if let Some(e) = self.flows.remove(&key) {
                self.out.push(e.record);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::TcpConnState;
    use crate::tuple::{Endpoint, Transport};
    use std::net::Ipv4Addr;

    fn ep(last: u8, port: u16) -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    fn tcp_tuple(sport: u16, dport: u16) -> FiveTuple {
        FiveTuple::new(ep(1, sport), ep(2, dport), Transport::Tcp)
    }

    #[test]
    fn bidirectional_packets_merge_into_one_flow() {
        let mut tab = FlowTable::new(FlowTableConfig::default());
        let fwd = tcp_tuple(50000, 80);
        tab.observe(0.0, fwd, 0, Some(TcpFlags::syn_only()));
        tab.observe(0.1, fwd.reversed(), 0, Some(TcpFlags::syn_ack()));
        tab.observe(0.2, fwd, 10, Some(TcpFlags(TcpFlags::ACK)));
        tab.observe(0.3, fwd.reversed(), 300, Some(TcpFlags(TcpFlags::ACK)));
        assert_eq!(tab.open_flows(), 1);
        let recs = tab.drain();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.initiator, ep(1, 50000));
        assert_eq!(r.responder, ep(2, 80));
        assert_eq!(r.packets_fwd, 2);
        assert_eq!(r.packets_rev, 2);
        assert_eq!(r.bytes_fwd, 10);
        assert_eq!(r.bytes_rev, 300);
        assert!(r.initiator_syn);
        assert_eq!(r.app, AppProtocol::Http);
        assert_eq!(r.tcp_state, Some(TcpConnState::Established));
    }

    #[test]
    fn initiator_defined_by_first_packet_even_when_canonically_hi() {
        // Source endpoint sorts *after* destination, so canonical `lo` is
        // the responder; direction bookkeeping must still hold.
        let fwd = FiveTuple::new(ep(9, 60000), ep(1, 80), Transport::Tcp);
        let mut tab = FlowTable::new(FlowTableConfig::default());
        tab.observe(0.0, fwd, 5, Some(TcpFlags::syn_only()));
        tab.observe(0.1, fwd.reversed(), 7, Some(TcpFlags::syn_ack()));
        let recs = tab.drain();
        assert_eq!(recs[0].initiator, ep(9, 60000));
        assert_eq!(recs[0].bytes_fwd, 5);
        assert_eq!(recs[0].bytes_rev, 7);
    }

    #[test]
    fn idle_timeout_splits_flows() {
        let mut tab = FlowTable::new(FlowTableConfig {
            idle_timeout: 10.0,
            ..Default::default()
        });
        let t = FiveTuple::new(ep(1, 5000), ep(2, 9999), Transport::Udp);
        tab.observe(0.0, t, 100, None);
        tab.observe(1.0, t, 100, None);
        // 20 s gap > idle timeout; sweep happens on the next packet.
        tab.observe(21.0, t, 100, None);
        let harvested = tab.harvest();
        assert_eq!(harvested.len(), 1, "first flow evicted as idle");
        assert_eq!(harvested[0].packets_fwd, 2);
        let rest = tab.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].packets_fwd, 1);
    }

    #[test]
    fn terminal_tcp_flow_flushed_on_sweep_and_rekeyed_on_new_syn() {
        let mut tab = FlowTable::new(FlowTableConfig::default());
        let t = tcp_tuple(50001, 80);
        tab.observe(0.0, t, 0, Some(TcpFlags::syn_only()));
        tab.observe(0.1, t, 0, Some(TcpFlags(TcpFlags::RST)));
        // New connection on the same five-tuple (port reuse).
        tab.observe(0.2, t, 0, Some(TcpFlags::syn_only()));
        let recs = tab.drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].tcp_state, Some(TcpConnState::Reset));
        assert_eq!(recs[1].tcp_state, Some(TcpConnState::SynSent));
    }

    #[test]
    fn capacity_evicts_stalest() {
        let mut tab = FlowTable::new(FlowTableConfig {
            max_flows: 2,
            ..Default::default()
        });
        for (i, sport) in [40000u16, 40001, 40002].iter().enumerate() {
            tab.observe(
                i as f64 * 0.1,
                tcp_tuple(*sport, 80),
                0,
                Some(TcpFlags::syn_only()),
            );
        }
        assert_eq!(tab.open_flows(), 2);
        let harvested = tab.harvest();
        assert_eq!(harvested.len(), 1);
        assert_eq!(harvested[0].initiator.port, 40000, "stalest evicted first");
    }

    #[test]
    fn active_timeout_rolls_over_long_flows() {
        let mut tab = FlowTable::new(FlowTableConfig {
            active_timeout: 100.0,
            idle_timeout: 1e9,
            ..Default::default()
        });
        let t = FiveTuple::new(ep(1, 1234), ep(2, 9), Transport::Udp);
        tab.observe(0.0, t, 1, None);
        tab.observe(50.0, t, 1, None);
        tab.observe(151.0, t, 1, None); // > active timeout after first_ts
        let mut all = tab.harvest();
        all.extend(tab.drain());
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn drain_sorted_by_first_ts() {
        let mut tab = FlowTable::new(FlowTableConfig::default());
        for (ts, sport) in [(5.0, 50005u16), (1.0, 50001), (3.0, 50003)] {
            tab.observe(ts, tcp_tuple(sport, 80), 0, Some(TcpFlags::syn_only()));
        }
        let recs = tab.drain();
        let times: Vec<f64> = recs.iter().map(|r| r.first_ts).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }
}
