//! DNS transaction tracking.
//!
//! Matches queries to responses by `(client endpoint, transaction id)`,
//! producing per-transaction records — the Bro-style view used to label
//! DNS behaviour beyond simple connection counts: lookup latency, failure
//! (NXDOMAIN/ServFail) rates, and unanswered-query counts, all of which
//! are botnet C&C tells (Storm-era zombies issued storms of MX lookups
//! with high failure rates).

use std::collections::HashMap;

use netpkt::dns::{DnsHeader, DnsQuestion, DNS_HEADER_LEN};
use netpkt::{DnsRcode, DnsRecordType};

use crate::tuple::Endpoint;

/// One completed (or expired) DNS transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct DnsTransaction {
    /// Client-side endpoint that issued the query.
    pub client: Endpoint,
    /// Transaction id.
    pub txid: u16,
    /// Queried name (first question).
    pub name: String,
    /// Query type.
    pub qtype: DnsRecordType,
    /// Time the query was seen.
    pub query_ts: f64,
    /// Time the response was seen, if any.
    pub response_ts: Option<f64>,
    /// Response code, if a response arrived.
    pub rcode: Option<DnsRcode>,
    /// Answer count from the response header.
    pub answers: u16,
}

impl DnsTransaction {
    /// Lookup latency in seconds, if answered.
    pub fn latency(&self) -> Option<f64> {
        self.response_ts.map(|r| (r - self.query_ts).max(0.0))
    }

    /// True when a response arrived with a non-error code.
    pub fn succeeded(&self) -> bool {
        matches!(self.rcode, Some(DnsRcode::NoError))
    }
}

/// Aggregate statistics over completed transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DnsStats {
    /// Queries observed.
    pub queries: u64,
    /// Responses matched to a query.
    pub answered: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
    /// ServFail responses.
    pub servfail: u64,
    /// Queries that timed out unanswered.
    pub timed_out: u64,
}

impl DnsStats {
    /// Fraction of answered queries that failed (NXDOMAIN or ServFail).
    pub fn failure_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            (self.nxdomain + self.servfail) as f64 / self.answered as f64
        }
    }

    /// Fraction of all queries never answered.
    pub fn loss_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.timed_out as f64 / self.queries as f64
        }
    }
}

/// Stateful query/response matcher.
#[derive(Debug)]
pub struct DnsTracker {
    timeout: f64,
    pending: HashMap<(Endpoint, u16), DnsTransaction>,
    completed: Vec<DnsTransaction>,
    stats: DnsStats,
}

impl DnsTracker {
    /// Create a tracker; queries unanswered after `timeout` seconds are
    /// flushed as timed out.
    pub fn new(timeout: f64) -> Self {
        Self {
            timeout,
            pending: HashMap::new(),
            completed: Vec::new(),
            stats: DnsStats::default(),
        }
    }

    /// Feed the UDP payload of a packet on port 53.
    ///
    /// `client` is the non-53 endpoint of the datagram (the querier);
    /// `from_client` says which direction this message travelled.
    /// Malformed messages are counted as neither query nor response.
    pub fn observe(&mut self, ts: f64, client: Endpoint, from_client: bool, payload: &[u8]) {
        self.expire(ts);
        let Ok(header) = DnsHeader::parse(payload) else {
            return;
        };
        if from_client && !header.is_response {
            let Ok((question, _)) = DnsQuestion::parse(payload, DNS_HEADER_LEN) else {
                return;
            };
            self.stats.queries += 1;
            self.pending.insert(
                (client, header.id),
                DnsTransaction {
                    client,
                    txid: header.id,
                    name: question.name,
                    qtype: question.qtype,
                    query_ts: ts,
                    response_ts: None,
                    rcode: None,
                    answers: 0,
                },
            );
        } else if !from_client && header.is_response {
            if let Some(mut tx) = self.pending.remove(&(client, header.id)) {
                tx.response_ts = Some(ts);
                tx.rcode = Some(header.rcode);
                tx.answers = header.ancount;
                self.stats.answered += 1;
                match header.rcode {
                    DnsRcode::NxDomain => self.stats.nxdomain += 1,
                    DnsRcode::ServFail => self.stats.servfail += 1,
                    _ => {}
                }
                self.completed.push(tx);
            }
        }
    }

    fn expire(&mut self, now: f64) {
        let timeout = self.timeout;
        let expired: Vec<(Endpoint, u16)> = self
            .pending
            .iter()
            .filter(|(_, tx)| now - tx.query_ts > timeout)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            if let Some(tx) = self.pending.remove(&key) {
                self.stats.timed_out += 1;
                self.completed.push(tx);
            }
        }
    }

    /// Statistics so far (timed-out queries only counted after expiry).
    pub fn stats(&self) -> DnsStats {
        self.stats
    }

    /// Finish the trace: expire everything pending and return all
    /// transactions in query order.
    pub fn finish(mut self) -> (Vec<DnsTransaction>, DnsStats) {
        self.expire(f64::INFINITY);
        self.completed
            .sort_by(|a, b| a.query_ts.total_cmp(&b.query_ts));
        (self.completed, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::dns::emit_query;
    use std::net::Ipv4Addr;

    fn client() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 53124)
    }

    fn query_bytes(txid: u16, name: &str) -> Vec<u8> {
        let mut buf = vec![0u8; 512];
        let n = emit_query(&mut buf, txid, name, DnsRecordType::A).unwrap();
        buf.truncate(n);
        buf
    }

    /// Build a response by flipping QR (and setting rcode/ancount) on a
    /// query's bytes.
    fn response_bytes(txid: u16, name: &str, rcode: u8, answers: u16) -> Vec<u8> {
        let mut buf = query_bytes(txid, name);
        buf[2] |= 0x80; // QR = response
        buf[3] = (buf[3] & 0xf0) | (rcode & 0x0f);
        buf[6..8].copy_from_slice(&answers.to_be_bytes());
        buf
    }

    #[test]
    fn query_response_matched_with_latency() {
        let mut t = DnsTracker::new(5.0);
        t.observe(10.0, client(), true, &query_bytes(7, "example.com"));
        t.observe(10.05, client(), false, &response_bytes(7, "example.com", 0, 2));
        let (txs, stats) = t.finish();
        assert_eq!(txs.len(), 1);
        let tx = &txs[0];
        assert_eq!(tx.name, "example.com");
        assert_eq!(tx.answers, 2);
        assert!(tx.succeeded());
        assert!((tx.latency().unwrap() - 0.05).abs() < 1e-9);
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.timed_out, 0);
    }

    #[test]
    fn unanswered_queries_time_out() {
        let mut t = DnsTracker::new(2.0);
        t.observe(0.0, client(), true, &query_bytes(1, "gone.example"));
        // A later, unrelated query triggers the sweep.
        t.observe(10.0, client(), true, &query_bytes(2, "other.example"));
        assert_eq!(t.stats().timed_out, 1);
        let (txs, stats) = t.finish();
        assert_eq!(txs.len(), 2);
        assert_eq!(stats.timed_out, 2);
        assert!((stats.loss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failure_rates_tracked() {
        let mut t = DnsTracker::new(5.0);
        for (txid, rcode) in [(1u16, 0u8), (2, 3), (3, 3), (4, 2)] {
            t.observe(0.1 * f64::from(txid), client(), true, &query_bytes(txid, "mx.example"));
            t.observe(
                0.1 * f64::from(txid) + 0.01,
                client(),
                false,
                &response_bytes(txid, "mx.example", rcode, 0),
            );
        }
        let stats = t.stats();
        assert_eq!(stats.answered, 4);
        assert_eq!(stats.nxdomain, 2);
        assert_eq!(stats.servfail, 1);
        assert!((stats.failure_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mismatched_txid_not_matched() {
        let mut t = DnsTracker::new(5.0);
        t.observe(0.0, client(), true, &query_bytes(1, "a.example"));
        t.observe(0.1, client(), false, &response_bytes(99, "a.example", 0, 1));
        assert_eq!(t.stats().answered, 0);
    }

    #[test]
    fn different_clients_tracked_separately() {
        let other = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 40000);
        let mut t = DnsTracker::new(5.0);
        t.observe(0.0, client(), true, &query_bytes(5, "x.example"));
        t.observe(0.0, other, true, &query_bytes(5, "y.example"));
        t.observe(0.1, client(), false, &response_bytes(5, "x.example", 0, 1));
        let (txs, stats) = t.finish();
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.timed_out, 1);
        let answered: Vec<&DnsTransaction> =
            txs.iter().filter(|x| x.response_ts.is_some()).collect();
        assert_eq!(answered[0].name, "x.example");
    }

    #[test]
    fn garbage_payloads_ignored() {
        let mut t = DnsTracker::new(5.0);
        t.observe(0.0, client(), true, &[0u8; 3]);
        t.observe(0.0, client(), true, &[0xff; 40]);
        assert_eq!(t.stats().queries, 0);
    }
}
