//! Property-based tests of flow reconstruction.

use proptest::prelude::*;

use flowtab::{Endpoint, FiveTuple, FlowTable, FlowTableConfig, Transport};
use netpkt::TcpFlags;
use std::net::Ipv4Addr;

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (
        any::<[u8; 4]>(),
        1024u16..65535,
        any::<[u8; 4]>(),
        1u16..1024,
        prop_oneof![Just(Transport::Tcp), Just(Transport::Udp)],
    )
        .prop_map(|(sip, sport, dip, dport, transport)| {
            FiveTuple::new(
                Endpoint::new(Ipv4Addr::from(sip), sport),
                Endpoint::new(Ipv4Addr::from(dip), dport),
                transport,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonicalisation is direction-independent and involutive.
    #[test]
    fn canonical_key_direction_independent(t in arb_tuple()) {
        let (k1, d1) = t.canonical();
        let (k2, d2) = t.reversed().canonical();
        prop_assert_eq!(k1, k2);
        if t.src != t.dst {
            prop_assert_ne!(d1, d2);
        }
        prop_assert_eq!(t.reversed().reversed(), t);
    }

    /// The flow table conserves packets and bytes: whatever goes in comes
    /// out across the union of all emitted records.
    #[test]
    fn flow_table_conserves_traffic(
        tuples in proptest::collection::vec(arb_tuple(), 1..8),
        events in proptest::collection::vec((any::<proptest::sample::Index>(), 0usize..512, any::<bool>()), 1..200),
    ) {
        let mut table = FlowTable::new(FlowTableConfig::default());
        let mut packets_in = 0u64;
        let mut bytes_in = 0u64;
        for (i, (which, len, reverse)) in events.iter().enumerate() {
            let tuple = tuples[which.index(tuples.len())];
            let tuple = if *reverse { tuple.reversed() } else { tuple };
            let flags = (tuple.transport == Transport::Tcp).then_some(TcpFlags(TcpFlags::ACK));
            table.observe(i as f64 * 0.001, tuple, *len, flags);
            packets_in += 1;
            bytes_in += *len as u64;
        }
        let mut records = table.harvest();
        records.extend(table.drain());
        let packets_out: u64 = records.iter().map(|r| r.total_packets()).sum();
        let bytes_out: u64 = records.iter().map(|r| r.total_bytes()).sum();
        prop_assert_eq!(packets_out, packets_in);
        prop_assert_eq!(bytes_out, bytes_in);
        // And no more flows than distinct canonical keys.
        let mut keys: Vec<_> = tuples.iter().map(|t| t.canonical().0).collect();
        keys.sort_by_key(|k| format!("{k:?}"));
        keys.dedup();
        prop_assert!(records.len() <= keys.len());
    }

    /// Records always have coherent timestamps and the initiator is the
    /// first packet's source.
    #[test]
    fn record_invariants(
        tuple in arb_tuple(),
        lens in proptest::collection::vec(0usize..256, 1..30),
    ) {
        let mut table = FlowTable::new(FlowTableConfig::default());
        for (i, len) in lens.iter().enumerate() {
            let t = if i % 2 == 0 { tuple } else { tuple.reversed() };
            table.observe(i as f64, t, *len, None);
        }
        let records = table.drain();
        prop_assert_eq!(records.len(), 1);
        let r = &records[0];
        prop_assert_eq!(r.initiator, tuple.src);
        prop_assert_eq!(r.responder, tuple.dst);
        prop_assert!(r.last_ts >= r.first_ts);
        prop_assert_eq!(r.packets_fwd, lens.len().div_ceil(2) as u64);
        prop_assert_eq!(r.packets_rev, (lens.len() / 2) as u64);
    }
}
