//! TCP option parsing (the handshake options OS fingerprinting and MSS
//! accounting care about).

use crate::{get_u16, get_u32};

/// A decoded TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// End of option list (0).
    EndOfList,
    /// No-operation padding (1).
    Nop,
    /// Maximum segment size (2).
    Mss(u16),
    /// Window scale shift (3).
    WindowScale(u8),
    /// SACK permitted (4).
    SackPermitted,
    /// Timestamps (8): value, echo reply.
    Timestamps(u32, u32),
    /// Unknown kind with its data length.
    Unknown {
        /// Option kind byte.
        kind: u8,
        /// Data length (excluding kind+len bytes).
        data_len: usize,
    },
}

/// Iterator over the options region of a TCP header (`header[20..data_off]`).
///
/// Malformed regions (bad lengths) end iteration with a final `None`
/// rather than panicking — a capture can contain anything.
#[derive(Debug, Clone)]
pub struct TcpOptionIter<'a> {
    buf: &'a [u8],
    pos: usize,
    done: bool,
}

impl<'a> TcpOptionIter<'a> {
    /// Iterate over an options slice.
    pub fn new(options: &'a [u8]) -> Self {
        Self {
            buf: options,
            pos: 0,
            done: false,
        }
    }
}

impl<'a> Iterator for TcpOptionIter<'a> {
    type Item = TcpOption;

    fn next(&mut self) -> Option<TcpOption> {
        if self.done || self.pos >= self.buf.len() {
            return None;
        }
        let kind = self.buf[self.pos];
        match kind {
            0 => {
                self.done = true;
                Some(TcpOption::EndOfList)
            }
            1 => {
                self.pos += 1;
                Some(TcpOption::Nop)
            }
            _ => {
                if self.pos + 1 >= self.buf.len() {
                    self.done = true;
                    return None;
                }
                let len = usize::from(self.buf[self.pos + 1]);
                if len < 2 || self.pos + len > self.buf.len() {
                    self.done = true;
                    return None;
                }
                let data = &self.buf[self.pos + 2..self.pos + len];
                let opt = match (kind, data.len()) {
                    (2, 2) => TcpOption::Mss(get_u16(data, 0)),
                    (3, 1) => TcpOption::WindowScale(data[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (8, 8) => TcpOption::Timestamps(get_u32(data, 0), get_u32(data, 4)),
                    _ => TcpOption::Unknown {
                        kind,
                        data_len: data.len(),
                    },
                };
                self.pos += len;
                Some(opt)
            }
        }
    }
}

/// Extract the MSS from an options region, if present.
pub fn find_mss(options: &[u8]) -> Option<u16> {
    TcpOptionIter::new(options).find_map(|o| match o {
        TcpOption::Mss(v) => Some(v),
        _ => None,
    })
}

/// Serialise a SYN's classic option set (MSS, SACK-permitted, window
/// scale, padded with NOPs to a 4-byte boundary). Returns bytes written.
pub fn emit_syn_options(buf: &mut [u8], mss: u16, wscale: u8) -> usize {
    let opts = [
        2u8,
        4,
        (mss >> 8) as u8,
        (mss & 0xff) as u8, // MSS
        4,
        2, // SACK permitted
        3,
        3,
        wscale, // window scale
        1,
        1,
        0, // NOP NOP EOL padding to 12 bytes
    ];
    let n = opts.len().min(buf.len());
    buf[..n].copy_from_slice(&opts[..n]);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_syn_options_roundtrip() {
        let mut buf = [0u8; 12];
        let n = emit_syn_options(&mut buf, 1460, 7);
        assert_eq!(n, 12);
        let opts: Vec<TcpOption> = TcpOptionIter::new(&buf).collect();
        assert_eq!(
            opts,
            vec![
                TcpOption::Mss(1460),
                TcpOption::SackPermitted,
                TcpOption::WindowScale(7),
                TcpOption::Nop,
                TcpOption::Nop,
                TcpOption::EndOfList,
            ]
        );
        assert_eq!(find_mss(&buf), Some(1460));
    }

    #[test]
    fn timestamps_parsed() {
        let buf = [8u8, 10, 0, 0, 0, 100, 0, 0, 0, 7];
        let opts: Vec<TcpOption> = TcpOptionIter::new(&buf).collect();
        assert_eq!(opts, vec![TcpOption::Timestamps(100, 7)]);
    }

    #[test]
    fn unknown_kind_skipped_cleanly() {
        let buf = [254u8, 4, 0xAA, 0xBB, 1, 0];
        let opts: Vec<TcpOption> = TcpOptionIter::new(&buf).collect();
        assert_eq!(
            opts,
            vec![
                TcpOption::Unknown {
                    kind: 254,
                    data_len: 2
                },
                TcpOption::Nop,
                TcpOption::EndOfList,
            ]
        );
    }

    #[test]
    fn malformed_lengths_stop_iteration() {
        // Length 0 (invalid) must not loop forever.
        let opts: Vec<TcpOption> = TcpOptionIter::new(&[2u8, 0, 0, 0]).collect();
        assert!(opts.is_empty());
        // Length overrunning the buffer stops too.
        let opts: Vec<TcpOption> = TcpOptionIter::new(&[2u8, 40, 5]).collect();
        assert!(opts.is_empty());
        // Truncated kind+len pair.
        let opts: Vec<TcpOption> = TcpOptionIter::new(&[2u8]).collect();
        assert!(opts.is_empty());
    }

    #[test]
    fn wrong_size_known_option_is_unknown() {
        // MSS with 3 data bytes is not a valid MSS; preserved as Unknown.
        let buf = [2u8, 5, 1, 2, 3];
        let opts: Vec<TcpOption> = TcpOptionIter::new(&buf).collect();
        assert_eq!(
            opts,
            vec![TcpOption::Unknown {
                kind: 2,
                data_len: 3
            }]
        );
        assert_eq!(find_mss(&buf), None);
    }

    #[test]
    fn empty_region() {
        assert!(TcpOptionIter::new(&[]).next().is_none());
        assert_eq!(find_mss(&[]), None);
    }
}
