//! Per-layer decode-error taxonomy.
//!
//! The base [`Error`](crate::Error) says *what* went wrong (truncation, bad
//! length, bad checksum, ...); a [`DecodeError`] additionally says *where*
//! in the stack it happened. The ingest pipeline (`flowtab`) tags every
//! parse failure with its [`Layer`] so loss accounting can distinguish, say,
//! a storm of truncated TCP segments (likely capture truncation) from bad
//! IPv4 checksums (likely bit rot on disk) — the distinction operators need
//! when deciding whether a host's telemetry is trustworthy.

use crate::Error;

/// The protocol layer at which a decode failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// The pcap container (global header or record framing).
    Pcap,
    /// Ethernet II framing.
    Ethernet,
    /// ARP.
    Arp,
    /// IPv4 header.
    Ipv4,
    /// IPv6 header.
    Ipv6,
    /// TCP segment.
    Tcp,
    /// UDP datagram.
    Udp,
    /// ICMPv4 message.
    Icmp,
    /// DNS message.
    Dns,
    /// Syslog (RFC 5424) envelope of a telemetry datagram.
    Syslog,
    /// CEF event carried in a syslog message body.
    Cef,
}

impl Layer {
    /// All layers, in stack order (container first).
    pub const ALL: [Layer; 11] = [
        Layer::Pcap,
        Layer::Ethernet,
        Layer::Arp,
        Layer::Ipv4,
        Layer::Ipv6,
        Layer::Tcp,
        Layer::Udp,
        Layer::Icmp,
        Layer::Dns,
        Layer::Syslog,
        Layer::Cef,
    ];

    /// Dense index (for per-layer counter arrays).
    pub fn index(self) -> usize {
        match self {
            Layer::Pcap => 0,
            Layer::Ethernet => 1,
            Layer::Arp => 2,
            Layer::Ipv4 => 3,
            Layer::Ipv6 => 4,
            Layer::Tcp => 5,
            Layer::Udp => 6,
            Layer::Icmp => 7,
            Layer::Dns => 8,
            Layer::Syslog => 9,
            Layer::Cef => 10,
        }
    }

    /// Short lower-case name (stable; used in reports and CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Pcap => "pcap",
            Layer::Ethernet => "ethernet",
            Layer::Arp => "arp",
            Layer::Ipv4 => "ipv4",
            Layer::Ipv6 => "ipv6",
            Layer::Tcp => "tcp",
            Layer::Udp => "udp",
            Layer::Icmp => "icmp",
            Layer::Dns => "dns",
            Layer::Syslog => "syslog",
            Layer::Cef => "cef",
        }
    }
}

impl core::fmt::Display for Layer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A decode failure tagged with the layer that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Layer at which decoding failed.
    pub layer: Layer,
    /// What went wrong.
    pub kind: Error,
}

impl DecodeError {
    /// Construct from a layer and a base error.
    pub fn new(layer: Layer, kind: Error) -> Self {
        Self { layer, kind }
    }
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.layer, self.kind)
    }
}

impl std::error::Error for DecodeError {}

impl Error {
    /// Tag this error with the layer it occurred at.
    pub fn at(self, layer: Layer) -> DecodeError {
        DecodeError::new(layer, self)
    }
}

/// Extension for `Result<T, Error>`: tag the error side with a layer.
pub trait LayerResultExt<T> {
    /// Map the error into a [`DecodeError`] at `layer`.
    fn at_layer(self, layer: Layer) -> Result<T, DecodeError>;
}

impl<T> LayerResultExt<T> for Result<T, Error> {
    fn at_layer(self, layer: Layer) -> Result<T, DecodeError> {
        self.map_err(|e| e.at(layer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_distinct() {
        let mut seen = [false; 11];
        for l in Layer::ALL {
            assert!(!seen[l.index()], "duplicate index for {l}");
            seen[l.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_includes_layer_and_kind() {
        let e = Error::BadLength.at(Layer::Tcp);
        let text = e.to_string();
        assert!(text.contains("tcp"), "{text}");
        assert!(text.contains("length"), "{text}");
    }

    #[test]
    fn result_ext_tags_errors_only() {
        let ok: Result<u8, Error> = Ok(7);
        assert_eq!(ok.at_layer(Layer::Dns).unwrap(), 7);
        let err: Result<u8, Error> = Err(Error::Unsupported);
        let tagged = err.at_layer(Layer::Ipv6).unwrap_err();
        assert_eq!(tagged.layer, Layer::Ipv6);
        assert_eq!(tagged.kind, Error::Unsupported);
    }
}
