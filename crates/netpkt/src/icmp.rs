//! ICMPv4 echo messages (the subset used for liveness probes in traces).

use crate::checksum::internet_checksum;
use crate::{check_len, get_u16, set_u16, Error, Result};

/// ICMP header length (type, code, checksum, rest-of-header), in bytes.
pub const ICMP_HEADER_LEN: usize = 8;

/// ICMP message types understood by this stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    DestUnreachable,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11).
    TimeExceeded,
    /// Anything else.
    Other(u8),
}

impl From<u8> for IcmpType {
    fn from(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            other => IcmpType::Other(other),
        }
    }
}

impl From<IcmpType> for u8 {
    fn from(t: IcmpType) -> u8 {
        match t {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(v) => v,
        }
    }
}

/// A zero-copy view of an ICMPv4 message.
#[derive(Debug, Clone)]
pub struct IcmpMessage<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpMessage<T> {
    /// Wrap `buffer`, validating minimum length.
    pub fn parse(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), ICMP_HEADER_LEN)?;
        Ok(Self { buffer })
    }

    /// Message type.
    pub fn msg_type(&self) -> IcmpType {
        self.buffer.as_ref()[0].into()
    }

    /// Message code.
    pub fn code(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Echo identifier (meaningful for echo request/reply).
    pub fn identifier(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 4)
    }

    /// Echo sequence number (meaningful for echo request/reply).
    pub fn sequence(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 6)
    }

    /// Payload after the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ICMP_HEADER_LEN..]
    }

    /// Verify the message checksum.
    pub fn verify_checksum(&self) -> bool {
        internet_checksum(self.buffer.as_ref()) == 0
    }
}

/// Build an echo request/reply message into `buf`.
///
/// Returns the number of bytes written (`ICMP_HEADER_LEN + payload.len()`).
pub fn emit_echo(
    buf: &mut [u8],
    msg_type: IcmpType,
    identifier: u16,
    sequence: u16,
    payload: &[u8],
) -> Result<usize> {
    let needed = ICMP_HEADER_LEN + payload.len();
    if buf.len() < needed {
        return Err(Error::Truncated {
            needed,
            got: buf.len(),
        });
    }
    buf[0] = msg_type.into();
    buf[1] = 0;
    set_u16(buf, 2, 0);
    set_u16(buf, 4, identifier);
    set_u16(buf, 6, sequence);
    buf[ICMP_HEADER_LEN..needed].copy_from_slice(payload);
    let ck = internet_checksum(&buf[..needed]);
    set_u16(buf, 2, ck);
    Ok(needed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let mut buf = [0u8; 64];
        let n = emit_echo(&mut buf, IcmpType::EchoRequest, 0x1234, 7, b"ping-payload").unwrap();
        let msg = IcmpMessage::parse(&buf[..n]).unwrap();
        assert_eq!(msg.msg_type(), IcmpType::EchoRequest);
        assert_eq!(msg.code(), 0);
        assert_eq!(msg.identifier(), 0x1234);
        assert_eq!(msg.sequence(), 7);
        assert_eq!(msg.payload(), b"ping-payload");
        assert!(msg.verify_checksum());
    }

    #[test]
    fn corruption_detected() {
        let mut buf = [0u8; 16];
        let n = emit_echo(&mut buf, IcmpType::EchoReply, 1, 1, b"abcd1234").unwrap();
        buf[n - 1] ^= 0x80;
        let msg = IcmpMessage::parse(&buf[..n]).unwrap();
        assert!(!msg.verify_checksum());
    }

    #[test]
    fn type_mapping_roundtrips() {
        for raw in 0u8..=255 {
            assert_eq!(u8::from(IcmpType::from(raw)), raw);
        }
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(IcmpMessage::parse(&[0u8; 7][..]).is_err());
        let mut buf = [0u8; 7];
        assert!(emit_echo(&mut buf, IcmpType::EchoRequest, 0, 0, b"").is_err());
    }
}
