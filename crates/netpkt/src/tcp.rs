//! TCP segment view and builder.

use std::net::Ipv4Addr;

use crate::checksum::pseudo_header_checksum;
use crate::{check_len, get_u16, get_u32, set_u16, set_u32, Error, Result};

/// Minimum TCP header length (no options), in bytes.
pub const TCP_MIN_HEADER_LEN: usize = 20;

/// The TCP flag byte, with typed accessors for the six classic flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: u8 = 0x01;
    /// SYN flag bit.
    pub const SYN: u8 = 0x02;
    /// RST flag bit.
    pub const RST: u8 = 0x04;
    /// PSH flag bit.
    pub const PSH: u8 = 0x08;
    /// ACK flag bit.
    pub const ACK: u8 = 0x10;
    /// URG flag bit.
    pub const URG: u8 = 0x20;

    /// A pure SYN (connection request).
    pub fn syn_only() -> Self {
        TcpFlags(Self::SYN)
    }

    /// SYN+ACK (connection accept).
    pub fn syn_ack() -> Self {
        TcpFlags(Self::SYN | Self::ACK)
    }

    /// True when FIN is set.
    pub fn fin(&self) -> bool {
        self.0 & Self::FIN != 0
    }
    /// True when SYN is set.
    pub fn syn(&self) -> bool {
        self.0 & Self::SYN != 0
    }
    /// True when RST is set.
    pub fn rst(&self) -> bool {
        self.0 & Self::RST != 0
    }
    /// True when PSH is set.
    pub fn psh(&self) -> bool {
        self.0 & Self::PSH != 0
    }
    /// True when ACK is set.
    pub fn ack(&self) -> bool {
        self.0 & Self::ACK != 0
    }
    /// True when URG is set.
    pub fn urg(&self) -> bool {
        self.0 & Self::URG != 0
    }
}

impl core::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut any = false;
        for (bit, name) in [
            (Self::SYN, "SYN"),
            (Self::ACK, "ACK"),
            (Self::FIN, "FIN"),
            (Self::RST, "RST"),
            (Self::PSH, "PSH"),
            (Self::URG, "URG"),
        ] {
            if self.0 & bit != 0 {
                if any {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// A zero-copy view of a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wrap `buffer`, validating the data-offset field.
    pub fn parse(buffer: T) -> Result<Self> {
        let buf = buffer.as_ref();
        check_len(buf, TCP_MIN_HEADER_LEN)?;
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off < TCP_MIN_HEADER_LEN || data_off > buf.len() {
            return Err(Error::BadLength);
        }
        Ok(Self { buffer })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 4)
    }

    /// Acknowledgement number.
    pub fn ack_number(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 8)
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag byte.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[13] & 0x3f)
    }

    /// Advertised receive window.
    pub fn window(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 14)
    }

    /// Checksum field value.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 16)
    }

    /// The segment payload after header and options.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify the transport checksum against the given IPv4 pseudo header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        pseudo_header_checksum(src, dst, 6, self.buffer.as_ref()) == 0
    }
}

/// Plain representation used to emit a TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number (meaningful when ACK is set).
    pub ack: u32,
    /// Flags to set.
    pub flags: TcpFlags,
    /// Advertised window.
    pub window: u16,
    /// Payload length that will follow the header.
    pub payload_len: usize,
}

impl TcpRepr {
    /// Total emitted segment length (header + payload).
    pub fn segment_len(&self) -> usize {
        TCP_MIN_HEADER_LEN + self.payload_len
    }

    /// Emit header into `buf` (first 20 bytes); the payload region must
    /// already contain the payload before calling [`TcpRepr::fill_checksum`].
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        let needed = self.segment_len();
        if buf.len() < needed {
            return Err(Error::Truncated {
                needed,
                got: buf.len(),
            });
        }
        set_u16(buf, 0, self.src_port);
        set_u16(buf, 2, self.dst_port);
        set_u32(buf, 4, self.seq);
        set_u32(buf, 8, self.ack);
        buf[12] = 5 << 4; // data offset = 5 words
        buf[13] = self.flags.0;
        set_u16(buf, 14, self.window);
        set_u16(buf, 16, 0); // checksum
        set_u16(buf, 18, 0); // urgent pointer
        Ok(())
    }

    /// Compute and store the checksum over `segment` (header + payload).
    pub fn fill_checksum(segment: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr) {
        set_u16(segment, 16, 0);
        let ck = pseudo_header_checksum(src, dst, 6, segment);
        set_u16(segment, 16, ck);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn emit_sample(payload: &[u8]) -> Vec<u8> {
        let repr = TcpRepr {
            src_port: 49152,
            dst_port: 80,
            seq: 0x01020304,
            ack: 0x0a0b0c0d,
            flags: TcpFlags(TcpFlags::PSH | TcpFlags::ACK),
            window: 8192,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.segment_len()];
        repr.emit(&mut buf).unwrap();
        buf[TCP_MIN_HEADER_LEN..].copy_from_slice(payload);
        TcpRepr::fill_checksum(&mut buf, SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_with_checksum() {
        let buf = emit_sample(b"GET / HTTP/1.1\r\n");
        let seg = TcpSegment::parse(&buf[..]).unwrap();
        assert_eq!(seg.src_port(), 49152);
        assert_eq!(seg.dst_port(), 80);
        assert_eq!(seg.seq(), 0x01020304);
        assert_eq!(seg.ack_number(), 0x0a0b0c0d);
        assert!(seg.flags().psh() && seg.flags().ack());
        assert!(!seg.flags().syn());
        assert_eq!(seg.window(), 8192);
        assert_eq!(seg.payload(), b"GET / HTTP/1.1\r\n");
        assert!(seg.verify_checksum(SRC, DST));
        assert!(!seg.verify_checksum(Ipv4Addr::new(10, 0, 0, 3), DST));
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = emit_sample(b"");
        buf[12] = 4 << 4; // below minimum
        assert!(matches!(TcpSegment::parse(&buf[..]), Err(Error::BadLength)));
        buf[12] = 15 << 4; // 60-byte header > 20-byte buffer
        assert!(matches!(TcpSegment::parse(&buf[..]), Err(Error::BadLength)));
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::syn_only().to_string(), "SYN");
        assert_eq!(TcpFlags::syn_ack().to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "(none)");
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut buf = emit_sample(b"data!");
        *buf.last_mut().unwrap() ^= 0x01;
        let seg = TcpSegment::parse(&buf[..]).unwrap();
        assert!(!seg.verify_checksum(SRC, DST));
    }
}
