//! DNS message header and question section.
//!
//! The measurement pipeline classifies DNS activity by transport endpoint
//! (UDP/53), but parsing the query name lets examples and tests assert that
//! synthesised traffic is well-formed, and lets the flow layer label DNS
//! transactions by name. Compression pointers are accepted when parsing.

use crate::{check_len, get_u16, set_u16, Error, Result};

/// Fixed DNS header length, in bytes.
pub const DNS_HEADER_LEN: usize = 12;

/// Maximum length of a presentation-format domain name we will produce.
pub const MAX_NAME_LEN: usize = 255;

/// DNS opcode values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsOpcode {
    /// Standard query (0).
    Query,
    /// Inverse query (1), obsolete.
    IQuery,
    /// Server status request (2).
    Status,
    /// Anything else.
    Other(u8),
}

impl From<u8> for DnsOpcode {
    fn from(v: u8) -> Self {
        match v {
            0 => DnsOpcode::Query,
            1 => DnsOpcode::IQuery,
            2 => DnsOpcode::Status,
            other => DnsOpcode::Other(other),
        }
    }
}

/// DNS response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsRcode {
    /// No error (0).
    NoError,
    /// Format error (1).
    FormErr,
    /// Server failure (2).
    ServFail,
    /// Name error / NXDOMAIN (3).
    NxDomain,
    /// Anything else.
    Other(u8),
}

impl From<u8> for DnsRcode {
    fn from(v: u8) -> Self {
        match v {
            0 => DnsRcode::NoError,
            1 => DnsRcode::FormErr,
            2 => DnsRcode::ServFail,
            3 => DnsRcode::NxDomain,
            other => DnsRcode::Other(other),
        }
    }
}

/// DNS record types used by the generator and classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsRecordType {
    /// IPv4 host address (1).
    A,
    /// Name server (2).
    Ns,
    /// Canonical name (5).
    Cname,
    /// Pointer (12).
    Ptr,
    /// Mail exchange (15).
    Mx,
    /// Text (16).
    Txt,
    /// IPv6 host address (28).
    Aaaa,
    /// Anything else.
    Other(u16),
}

impl From<u16> for DnsRecordType {
    fn from(v: u16) -> Self {
        match v {
            1 => DnsRecordType::A,
            2 => DnsRecordType::Ns,
            5 => DnsRecordType::Cname,
            12 => DnsRecordType::Ptr,
            15 => DnsRecordType::Mx,
            16 => DnsRecordType::Txt,
            28 => DnsRecordType::Aaaa,
            other => DnsRecordType::Other(other),
        }
    }
}

impl From<DnsRecordType> for u16 {
    fn from(t: DnsRecordType) -> u16 {
        match t {
            DnsRecordType::A => 1,
            DnsRecordType::Ns => 2,
            DnsRecordType::Cname => 5,
            DnsRecordType::Ptr => 12,
            DnsRecordType::Mx => 15,
            DnsRecordType::Txt => 16,
            DnsRecordType::Aaaa => 28,
            DnsRecordType::Other(v) => v,
        }
    }
}

/// Decoded DNS header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsHeader {
    /// Transaction id.
    pub id: u16,
    /// True for responses, false for queries.
    pub is_response: bool,
    /// Operation code.
    pub opcode: DnsOpcode,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Response code.
    pub rcode: DnsRcode,
    /// Question count.
    pub qdcount: u16,
    /// Answer count.
    pub ancount: u16,
}

impl DnsHeader {
    /// Parse the 12-byte header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        check_len(buf, DNS_HEADER_LEN)?;
        let flags = get_u16(buf, 2);
        Ok(DnsHeader {
            id: get_u16(buf, 0),
            is_response: flags & 0x8000 != 0,
            opcode: (((flags >> 11) & 0x0f) as u8).into(),
            recursion_desired: flags & 0x0100 != 0,
            rcode: ((flags & 0x000f) as u8).into(),
            qdcount: get_u16(buf, 4),
            ancount: get_u16(buf, 6),
        })
    }

    /// Emit a query header for a single question into `buf`.
    pub fn emit_query(buf: &mut [u8], id: u16) -> Result<()> {
        check_len(buf, DNS_HEADER_LEN)?;
        set_u16(buf, 0, id);
        set_u16(buf, 2, 0x0100); // RD set, everything else zero
        set_u16(buf, 4, 1); // one question
        set_u16(buf, 6, 0);
        set_u16(buf, 8, 0);
        set_u16(buf, 10, 0);
        Ok(())
    }
}

/// A decoded question-section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Queried name in presentation format (e.g. `www.example.com`).
    pub name: String,
    /// Query type.
    pub qtype: DnsRecordType,
}

impl DnsQuestion {
    /// Parse the first question starting at `offset` within the full DNS
    /// message `msg`. Returns the question and the offset just past it.
    pub fn parse(msg: &[u8], offset: usize) -> Result<(Self, usize)> {
        let (name, after_name) = parse_name(msg, offset)?;
        check_len(msg, after_name + 4)?;
        let qtype = DnsRecordType::from(get_u16(msg, after_name));
        Ok((DnsQuestion { name, qtype }, after_name + 4))
    }

    /// Encoded length of this question (uncompressed).
    pub fn encoded_len(&self) -> usize {
        encoded_name_len(&self.name) + 4
    }

    /// Emit this question at `offset` in `buf`; returns offset past it.
    pub fn emit(&self, buf: &mut [u8], offset: usize) -> Result<usize> {
        let after_name = emit_name(buf, offset, &self.name)?;
        check_len(buf, after_name + 4)?;
        set_u16(buf, after_name, self.qtype.into());
        set_u16(buf, after_name + 2, 1); // class IN
        Ok(after_name + 4)
    }
}

/// Case-fold a presentation-format domain name for comparison.
///
/// DNS names compare case-insensitively over the ASCII range only
/// (RFC 4343): `FOO.Example` and `foo.example` are the same name, but
/// non-ASCII bytes are left untouched. Distinct-contact accounting must
/// fold through this before counting, or one server queried under two
/// spellings inflates the feature.
///
/// Folds word-at-a-time via [`crate::swar::ascii_lowercase`]; the
/// per-character scalar fold is retained as [`fold_name_oracle`] and the
/// pair is held byte-identical by a differential proptest.
pub fn fold_name(name: &str) -> String {
    crate::swar::ascii_lowercase(name)
}

/// Reference scalar implementation of [`fold_name`], kept as the
/// differential-test oracle for the SWAR fold. Not used on the hot path.
pub fn fold_name_oracle(name: &str) -> String {
    name.chars().map(|c| c.to_ascii_lowercase()).collect()
}

/// Length of `name` when wire-encoded (labels + length bytes + root byte).
pub fn encoded_name_len(name: &str) -> usize {
    if name.is_empty() {
        1
    } else {
        name.len() + 2
    }
}

fn emit_name(buf: &mut [u8], mut offset: usize, name: &str) -> Result<usize> {
    let needed = offset + encoded_name_len(name);
    check_len(buf, needed)?;
    if name.len() > MAX_NAME_LEN {
        return Err(Error::Malformed);
    }
    if !name.is_empty() {
        for label in name.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(Error::Malformed);
            }
            buf[offset] = label.len() as u8;
            offset += 1;
            buf[offset..offset + label.len()].copy_from_slice(label.as_bytes());
            offset += label.len();
        }
    }
    buf[offset] = 0;
    Ok(offset + 1)
}

/// Decode a (possibly compressed) name at `offset`; returns the name and the
/// offset just past its encoding *in the original location*.
fn parse_name(msg: &[u8], start: usize) -> Result<(String, usize)> {
    let mut name = String::new();
    let mut offset = start;
    let mut after: Option<usize> = None;
    let mut hops = 0usize;
    loop {
        check_len(msg, offset + 1)?;
        let len = msg[offset];
        match len {
            0 => {
                let end = after.unwrap_or(offset + 1);
                return Ok((name, end));
            }
            l if l & 0xc0 == 0xc0 => {
                check_len(msg, offset + 2)?;
                let ptr = usize::from(get_u16(msg, offset) & 0x3fff);
                if after.is_none() {
                    after = Some(offset + 2);
                }
                // Guard against pointer loops.
                hops += 1;
                if hops > 32 || ptr >= offset {
                    return Err(Error::Malformed);
                }
                offset = ptr;
            }
            l if l & 0xc0 != 0 => return Err(Error::Malformed),
            l => {
                let l = usize::from(l);
                check_len(msg, offset + 1 + l)?;
                if !name.is_empty() {
                    name.push('.');
                }
                let label = &msg[offset + 1..offset + 1 + l];
                name.push_str(core::str::from_utf8(label).map_err(|_| Error::Malformed)?);
                if name.len() > MAX_NAME_LEN {
                    return Err(Error::Malformed);
                }
                offset += 1 + l;
            }
        }
    }
}

/// Build a complete single-question DNS query message; returns bytes written.
pub fn emit_query(buf: &mut [u8], id: u16, name: &str, qtype: DnsRecordType) -> Result<usize> {
    DnsHeader::emit_query(buf, id)?;
    let q = DnsQuestion {
        name: name.to_string(),
        qtype,
    };
    q.emit(buf, DNS_HEADER_LEN)
}

/// Typed resource-record data (only what the pipeline interprets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// An IPv4 host address.
    A(std::net::Ipv4Addr),
    /// Anything else, raw.
    Other(Vec<u8>),
}

/// A decoded answer-section resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// Owner name.
    pub name: String,
    /// Record type.
    pub rtype: DnsRecordType,
    /// Time-to-live, seconds.
    pub ttl: u32,
    /// Record data.
    pub rdata: RData,
}

impl DnsRecord {
    /// Parse one resource record at `offset`; returns the record and the
    /// offset just past it.
    pub fn parse(msg: &[u8], offset: usize) -> Result<(Self, usize)> {
        let (name, after_name) = parse_name(msg, offset)?;
        check_len(msg, after_name + 10)?;
        let rtype = DnsRecordType::from(get_u16(msg, after_name));
        let ttl = crate::get_u32(msg, after_name + 4);
        let rdlen = usize::from(get_u16(msg, after_name + 8));
        let rdata_start = after_name + 10;
        check_len(msg, rdata_start + rdlen)?;
        let raw = &msg[rdata_start..rdata_start + rdlen];
        let rdata = match (rtype, rdlen) {
            (DnsRecordType::A, 4) => {
                RData::A(std::net::Ipv4Addr::new(raw[0], raw[1], raw[2], raw[3]))
            }
            _ => RData::Other(raw.to_vec()),
        };
        Ok((
            DnsRecord {
                name,
                rtype,
                ttl,
                rdata,
            },
            rdata_start + rdlen,
        ))
    }
}

/// Parse a complete message's question and answer sections.
pub fn parse_answers(msg: &[u8]) -> Result<(DnsHeader, Vec<DnsQuestion>, Vec<DnsRecord>)> {
    let header = DnsHeader::parse(msg)?;
    let mut offset = DNS_HEADER_LEN;
    let mut questions = Vec::with_capacity(usize::from(header.qdcount));
    for _ in 0..header.qdcount {
        let (q, next) = DnsQuestion::parse(msg, offset)?;
        questions.push(q);
        offset = next;
    }
    let mut answers = Vec::with_capacity(usize::from(header.ancount));
    for _ in 0..header.ancount {
        let (r, next) = DnsRecord::parse(msg, offset)?;
        answers.push(r);
        offset = next;
    }
    Ok((header, questions, answers))
}

/// Build a complete response to a single-question query: echoes the
/// question and answers with the given A records (compression pointers
/// back to the question name). Returns bytes written.
pub fn emit_a_response(
    buf: &mut [u8],
    id: u16,
    name: &str,
    addrs: &[std::net::Ipv4Addr],
    ttl: u32,
) -> Result<usize> {
    check_len(buf, DNS_HEADER_LEN)?;
    set_u16(buf, 0, id);
    // QR=1, opcode 0, RD+RA set, rcode NoError (or NXDOMAIN with no answers).
    let rcode: u16 = if addrs.is_empty() { 3 } else { 0 };
    set_u16(buf, 2, 0x8180 | rcode);
    set_u16(buf, 4, 1);
    set_u16(buf, 6, addrs.len() as u16);
    set_u16(buf, 8, 0);
    set_u16(buf, 10, 0);
    let q = DnsQuestion {
        name: name.to_string(),
        qtype: DnsRecordType::A,
    };
    let mut offset = q.emit(buf, DNS_HEADER_LEN)?;
    for addr in addrs {
        check_len(buf, offset + 16)?;
        // Compressed owner name: pointer to the question name at offset 12.
        buf[offset] = 0xc0;
        buf[offset + 1] = DNS_HEADER_LEN as u8;
        set_u16(buf, offset + 2, DnsRecordType::A.into());
        set_u16(buf, offset + 4, 1); // class IN
        crate::set_u32(buf, offset + 6, ttl);
        set_u16(buf, offset + 10, 4);
        buf[offset + 12..offset + 16].copy_from_slice(&addr.octets());
        offset += 16;
    }
    Ok(offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let mut buf = [0u8; 512];
        let n = emit_query(&mut buf, 0xabcd, "mail.example.com", DnsRecordType::A).unwrap();
        let hdr = DnsHeader::parse(&buf[..n]).unwrap();
        assert_eq!(hdr.id, 0xabcd);
        assert!(!hdr.is_response);
        assert_eq!(hdr.opcode, DnsOpcode::Query);
        assert!(hdr.recursion_desired);
        assert_eq!(hdr.qdcount, 1);
        let (q, end) = DnsQuestion::parse(&buf[..n], DNS_HEADER_LEN).unwrap();
        assert_eq!(q.name, "mail.example.com");
        assert_eq!(q.qtype, DnsRecordType::A);
        assert_eq!(end, n);
    }

    #[test]
    fn root_name() {
        let mut buf = [0u8; 32];
        let n = emit_query(&mut buf, 1, "", DnsRecordType::Ns).unwrap();
        let (q, _) = DnsQuestion::parse(&buf[..n], DNS_HEADER_LEN).unwrap();
        assert_eq!(q.name, "");
    }

    #[test]
    fn compression_pointer_followed() {
        // Hand-built message: header, then "www.example.com" at 12, then a
        // second name at some later offset that is just a pointer to 12.
        let mut buf = vec![0u8; 64];
        DnsHeader::emit_query(&mut buf, 9).unwrap();
        let after = emit_name(&mut buf, DNS_HEADER_LEN, "www.example.com").unwrap();
        // pointer at `after`: 0xc0 | high bits, low byte = 12
        buf[after] = 0xc0;
        buf[after + 1] = DNS_HEADER_LEN as u8;
        let (name, end) = parse_name(&buf, after).unwrap();
        assert_eq!(name, "www.example.com");
        assert_eq!(end, after + 2);
    }

    #[test]
    fn pointer_loop_rejected() {
        let mut buf = vec![0u8; 32];
        DnsHeader::emit_query(&mut buf, 9).unwrap();
        // Self-pointing compression pointer.
        buf[12] = 0xc0;
        buf[13] = 12;
        assert!(matches!(parse_name(&buf, 12), Err(Error::Malformed)));
    }

    #[test]
    fn bad_labels_rejected() {
        let mut buf = [0u8; 600];
        let long_label = "a".repeat(64);
        assert!(matches!(
            emit_query(&mut buf, 1, &long_label, DnsRecordType::A),
            Err(Error::Malformed)
        ));
        assert!(matches!(
            emit_query(&mut buf, 1, "bad..name", DnsRecordType::A),
            Err(Error::Malformed)
        ));
    }

    #[test]
    fn reserved_length_bits_rejected() {
        let mut buf = vec![0u8; 32];
        buf[12] = 0x80; // reserved 10xxxxxx prefix
        assert!(matches!(parse_name(&buf, 12), Err(Error::Malformed)));
    }

    #[test]
    fn fold_name_is_ascii_only_and_idempotent() {
        assert_eq!(fold_name("FOO.Example"), "foo.example");
        assert_eq!(fold_name("already.lower"), "already.lower");
        // Non-ASCII bytes pass through untouched (RFC 4343 scope); the
        // ASCII letters around them still fold.
        assert_eq!(fold_name("ÅNGSTRÖM.example"), "ÅngstrÖm.example");
        let once = fold_name("MiXeD.CaSe.Example");
        assert_eq!(fold_name(&once), once);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(512))]

        /// The SWAR fold is byte-identical to the scalar oracle on
        /// arbitrary strings (not just valid names).
        #[test]
        fn fold_name_matches_oracle(s in "\\PC{0,64}") {
            proptest::prop_assert_eq!(fold_name(&s), fold_name_oracle(&s));
        }
    }

    #[test]
    fn record_type_roundtrip() {
        for raw in [1u16, 2, 5, 12, 15, 16, 28, 257] {
            assert_eq!(u16::from(DnsRecordType::from(raw)), raw);
        }
    }

    #[test]
    fn a_response_roundtrip() {
        use std::net::Ipv4Addr;
        let addrs = [Ipv4Addr::new(93, 184, 216, 34), Ipv4Addr::new(93, 184, 216, 35)];
        let mut buf = [0u8; 512];
        let n = emit_a_response(&mut buf, 0x1234, "www.example.com", &addrs, 300).unwrap();
        let (header, questions, answers) = parse_answers(&buf[..n]).unwrap();
        assert!(header.is_response);
        assert_eq!(header.id, 0x1234);
        assert_eq!(header.rcode, DnsRcode::NoError);
        assert_eq!(questions.len(), 1);
        assert_eq!(questions[0].name, "www.example.com");
        assert_eq!(answers.len(), 2);
        for (rec, addr) in answers.iter().zip(&addrs) {
            assert_eq!(rec.name, "www.example.com", "compression pointer resolves");
            assert_eq!(rec.rtype, DnsRecordType::A);
            assert_eq!(rec.ttl, 300);
            assert_eq!(rec.rdata, RData::A(*addr));
        }
    }

    #[test]
    fn empty_answer_is_nxdomain() {
        let mut buf = [0u8; 128];
        let n = emit_a_response(&mut buf, 7, "missing.example", &[], 60).unwrap();
        let (header, _, answers) = parse_answers(&buf[..n]).unwrap();
        assert_eq!(header.rcode, DnsRcode::NxDomain);
        assert!(answers.is_empty());
    }

    #[test]
    fn non_a_rdata_preserved_raw() {
        // Hand-build a TXT record after a query.
        let mut buf = [0u8; 256];
        let n = emit_a_response(&mut buf, 9, "t.example", &[std::net::Ipv4Addr::new(1, 2, 3, 4)], 60).unwrap();
        // Rewrite the answer's type to TXT(16); rdata is now "raw".
        // Answer starts right after the question section.
        let q_end = DNS_HEADER_LEN + encoded_name_len("t.example") + 4;
        set_u16(&mut buf, q_end + 2, 16);
        let (_, _, answers) = parse_answers(&buf[..n]).unwrap();
        assert_eq!(answers[0].rtype, DnsRecordType::Txt);
        assert_eq!(answers[0].rdata, RData::Other(vec![1, 2, 3, 4]));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut buf = [0u8; 128];
        let n = emit_a_response(&mut buf, 9, "x.example", &[std::net::Ipv4Addr::LOCALHOST], 60).unwrap();
        assert!(parse_answers(&buf[..n - 2]).is_err());
    }
}
