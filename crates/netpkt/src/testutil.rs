//! Helpers for building complete, valid frames in tests, doctests and the
//! packet-rendering path of the trace generator.

use std::net::Ipv4Addr;

use crate::dns::{self, DnsRecordType};
use crate::ethernet::{EtherType, EthernetRepr, MacAddr, ETHERNET_HEADER_LEN};
use crate::ipv4::{IpProtocol, Ipv4Repr, IPV4_MIN_HEADER_LEN};
use crate::tcp::{TcpFlags, TcpRepr, TCP_MIN_HEADER_LEN};
use crate::udp::{UdpRepr, UDP_HEADER_LEN};

/// Parameters shared by all frame builders.
#[derive(Debug, Clone, Copy)]
pub struct FrameSpec {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IP.
    pub src_ip: Ipv4Addr,
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP identification (varies per packet to keep frames distinct).
    pub ip_id: u16,
}

impl Default for FrameSpec {
    fn default() -> Self {
        Self {
            src_mac: MacAddr::from_host_id(1),
            dst_mac: MacAddr::from_host_id(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(93, 184, 216, 34),
            src_port: 49152,
            dst_port: 80,
            ip_id: 1,
        }
    }
}

/// Build a full Ethernet/IPv4/TCP frame with the given flags and payload.
pub fn build_tcp_frame(spec: &FrameSpec, flags: TcpFlags, seq: u32, payload: &[u8]) -> Vec<u8> {
    let tcp = TcpRepr {
        src_port: spec.src_port,
        dst_port: spec.dst_port,
        seq,
        ack: 0,
        flags,
        window: 65535,
        payload_len: payload.len(),
    };
    let ip = Ipv4Repr {
        src: spec.src_ip,
        dst: spec.dst_ip,
        protocol: IpProtocol::Tcp,
        payload_len: tcp.segment_len(),
        ttl: 64,
        identification: spec.ip_id,
    };
    let total = ETHERNET_HEADER_LEN + ip.total_len();
    let mut frame = vec![0u8; total];
    EthernetRepr {
        src: spec.src_mac,
        dst: spec.dst_mac,
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut frame)
    .expect("frame sized for ethernet header");
    ip.emit(&mut frame[ETHERNET_HEADER_LEN..])
        .expect("frame sized for ip header");
    let seg_start = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN;
    tcp.emit(&mut frame[seg_start..]).expect("frame sized for tcp");
    frame[seg_start + TCP_MIN_HEADER_LEN..].copy_from_slice(payload);
    TcpRepr::fill_checksum(&mut frame[seg_start..], spec.src_ip, spec.dst_ip);
    frame
}

/// Build a full Ethernet/IPv4/UDP frame with the given payload.
pub fn build_udp_frame(spec: &FrameSpec, payload: &[u8]) -> Vec<u8> {
    let udp = UdpRepr {
        src_port: spec.src_port,
        dst_port: spec.dst_port,
        payload_len: payload.len(),
    };
    let ip = Ipv4Repr {
        src: spec.src_ip,
        dst: spec.dst_ip,
        protocol: IpProtocol::Udp,
        payload_len: udp.datagram_len(),
        ttl: 64,
        identification: spec.ip_id,
    };
    let total = ETHERNET_HEADER_LEN + ip.total_len();
    let mut frame = vec![0u8; total];
    EthernetRepr {
        src: spec.src_mac,
        dst: spec.dst_mac,
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut frame)
    .expect("frame sized for ethernet header");
    ip.emit(&mut frame[ETHERNET_HEADER_LEN..])
        .expect("frame sized for ip header");
    let dg_start = ETHERNET_HEADER_LEN + IPV4_MIN_HEADER_LEN;
    udp.emit(&mut frame[dg_start..]).expect("frame sized for udp");
    frame[dg_start + UDP_HEADER_LEN..].copy_from_slice(payload);
    UdpRepr::fill_checksum(&mut frame[dg_start..], spec.src_ip, spec.dst_ip);
    frame
}

/// Build a DNS A-record query frame to `dst_ip:53`.
pub fn build_dns_query_frame(spec: &FrameSpec, txid: u16, name: &str) -> Vec<u8> {
    let mut msg = vec![0u8; dns::DNS_HEADER_LEN + dns::encoded_name_len(name) + 4];
    let n = dns::emit_query(&mut msg, txid, name, DnsRecordType::A).expect("valid query name");
    msg.truncate(n);
    let mut spec = *spec;
    spec.dst_port = 53;
    build_udp_frame(&spec, &msg)
}

/// A canned TCP SYN frame (used in crate-level doctests).
pub fn sample_tcp_syn() -> Vec<u8> {
    build_tcp_frame(&FrameSpec::default(), TcpFlags::syn_only(), 1000, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EthernetFrame, Ipv4Packet, TcpSegment, UdpDatagram};

    #[test]
    fn tcp_frame_is_fully_valid() {
        let spec = FrameSpec::default();
        let frame = build_tcp_frame(&spec, TcpFlags::syn_ack(), 42, b"hi");
        let eth = EthernetFrame::parse(&frame[..]).unwrap();
        let ip = Ipv4Packet::parse(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::parse(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(ip.src(), ip.dst()));
        assert_eq!(tcp.payload(), b"hi");
        assert!(tcp.flags().syn() && tcp.flags().ack());
        assert_eq!(tcp.seq(), 42);
    }

    #[test]
    fn udp_frame_is_fully_valid() {
        let spec = FrameSpec {
            dst_port: 5353,
            ..FrameSpec::default()
        };
        let frame = build_udp_frame(&spec, b"payload");
        let eth = EthernetFrame::parse(&frame[..]).unwrap();
        let ip = Ipv4Packet::parse(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::parse(ip.payload()).unwrap();
        assert!(udp.verify_checksum(ip.src(), ip.dst()));
        assert_eq!(udp.dst_port(), 5353);
        assert_eq!(udp.payload(), b"payload");
    }

    #[test]
    fn dns_query_frame_parses_back() {
        let frame = build_dns_query_frame(&FrameSpec::default(), 77, "intranet.corp.example");
        let eth = EthernetFrame::parse(&frame[..]).unwrap();
        let ip = Ipv4Packet::parse(eth.payload()).unwrap();
        let udp = UdpDatagram::parse(ip.payload()).unwrap();
        assert_eq!(udp.dst_port(), 53);
        let hdr = crate::dns::DnsHeader::parse(udp.payload()).unwrap();
        assert_eq!(hdr.id, 77);
        let (q, _) = crate::dns::DnsQuestion::parse(udp.payload(), 12).unwrap();
        assert_eq!(q.name, "intranet.corp.example");
    }
}
