//! SWAR (SIMD-within-a-register) byte scanning primitives.
//!
//! The ingest hot loops — telemetry sanitization, the CEF `key=value`
//! scan, the syslog field splitter, DNS name folding — spend their time
//! asking simple per-byte questions: *where is the next byte below
//! 0x20?*, *where is the next `\` or `|`?*, *is this byte an uppercase
//! ASCII letter?*. Asking one byte at a time costs a branch per byte;
//! these helpers ask one machine word at a time on stable Rust — no
//! `std::simd`, no `unsafe` — using portable bit tricks in the
//! Hacker's-Delight tradition.
//!
//! Correctness note: the classic `hasless`/`haszero` formulas let
//! subtraction borrows leak across byte lanes, which is fine for "does
//! any byte match" but wrong for per-lane masks that get negated or
//! combined. Every classifier here is written in the borrow-free form
//! (set the high bit of each lane before subtracting, so no lane can
//! underflow), making each lane's verdict exact. The unit tests below
//! and the differential proptest suites in consuming crates hold every
//! scanner byte-identical to its one-line scalar equivalent on
//! arbitrary input.
//!
//! All scanners operate on *bytes* and report *byte* indices. They are
//! deliberately UTF-8-oblivious; callers that need character semantics
//! build them from byte classes that are exact on UTF-8 by construction
//! (e.g. [`count_utf8_chars`] counts non-continuation bytes).

/// Bytes per scanning word.
pub const WORD: usize = core::mem::size_of::<usize>();

/// `0x0101…01` — one in every byte lane.
const LO: usize = usize::MAX / 0xff;
/// `0x8080…80` — the high bit of every byte lane.
const HI: usize = LO * 0x80;

/// The low seven bits of every lane (high bits cleared).
#[inline(always)]
fn low7(w: usize) -> usize {
    w & !HI
}

/// Marker word: `0x80` in every lane whose byte is `< n`.
///
/// Exact per lane for `n <= 0x80`. Borrow-free: each lane computes
/// `0x80 + (b & 0x7f) - n`, which cannot underflow, so no borrow ever
/// crosses a lane boundary.
#[inline(always)]
fn lt_lanes(w: usize, n: u8) -> usize {
    debug_assert!(n <= 0x80);
    // (b & 0x7f) >= n, decided in the high bit of each lane.
    let ge = ((low7(w) | HI) - LO * n as usize) & HI;
    // byte < n  ⇔  high bit clear and low seven bits < n.
    !ge & !w & HI
}

/// Marker word: `0x80` in every lane whose byte equals `b`. Exact.
#[inline(always)]
fn eq_lanes(w: usize, b: u8) -> usize {
    let z = w ^ (LO * b as usize);
    // low7(z) != 0, decided borrow-free in the high bit of each lane.
    let nonzero_low7 = ((low7(z) | HI) - LO) & HI;
    !nonzero_low7 & !z & HI
}

/// Marker word: `0x80` in every lane whose byte is in `lo..=hi`.
///
/// Exact per lane for `lo <= hi <= 0x7f` (ASCII ranges only).
#[inline(always)]
fn range_lanes(w: usize, lo: u8, hi: u8) -> usize {
    debug_assert!(lo <= hi && hi <= 0x7f);
    let l = low7(w) | HI;
    let ge_lo = (l - LO * lo as usize) & HI;
    let ge_past_hi = (l - LO * (hi as usize + 1)) & HI;
    ge_lo & !ge_past_hi & !w & HI
}

/// Lowest marked lane index of a marker word, if any.
#[inline(always)]
fn first_lane(m: usize) -> Option<usize> {
    if m == 0 {
        None
    } else {
        // Marker words are loaded little-endian, so lane order is byte
        // order and the lowest set high bit names the first match.
        Some(m.trailing_zeros() as usize >> 3)
    }
}

/// Word-at-a-time scan driver: `classify` marks lanes in a loaded word,
/// `pred` is the byte-wise equivalent used when the slice is shorter
/// than one word.
///
/// The tail is handled with the classic memchr trick: one final word
/// loaded at `len - WORD` (overlapping bytes already scanned), with the
/// re-scanned lanes masked off. Lane classifiers are exact per lane, so
/// overlap cannot change any verdict. Only sub-word slices fall back to
/// the byte loop.
#[inline(always)]
fn find_match(
    haystack: &[u8],
    classify: impl Fn(usize) -> usize,
    pred: impl Fn(u8) -> bool,
) -> Option<usize> {
    let n = haystack.len();
    if n < WORD {
        return haystack.iter().position(|&b| pred(b));
    }
    let mut i = 0usize;
    while i + WORD <= n {
        match <[u8; WORD]>::try_from(&haystack[i..i + WORD]) {
            Ok(arr) => {
                if let Some(lane) = first_lane(classify(usize::from_le_bytes(arr))) {
                    return Some(i + lane);
                }
            }
            // The slice is exactly WORD long; the scalar fallback keeps
            // the scan total without unwrap.
            Err(_) => {
                if let Some(off) = haystack[i..i + WORD].iter().position(|&b| pred(b)) {
                    return Some(i + off);
                }
            }
        }
        i += WORD;
    }
    if i < n {
        let start = n - WORD;
        match <[u8; WORD]>::try_from(&haystack[start..]) {
            Ok(arr) => {
                // Mask off the lanes already covered by the loop above.
                let m = classify(usize::from_le_bytes(arr)) & (usize::MAX << ((i - start) * 8));
                if let Some(lane) = first_lane(m) {
                    return Some(start + lane);
                }
            }
            Err(_) => {
                if let Some(off) = haystack[i..].iter().position(|&b| pred(b)) {
                    return Some(i + off);
                }
            }
        }
    }
    None
}

/// Index of the first occurrence of `b`, or `None`.
///
/// Scalar equivalent: `haystack.iter().position(|&x| x == b)`.
#[inline]
pub fn find_byte(haystack: &[u8], b: u8) -> Option<usize> {
    find_match(haystack, |w| eq_lanes(w, b), |x| x == b)
}

/// Index of the first occurrence of `a` *or* `b`, or `None`.
///
/// Scalar equivalent: `haystack.iter().position(|&x| x == a || x == b)`.
#[inline]
pub fn find_byte2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    find_match(
        haystack,
        |w| eq_lanes(w, a) | eq_lanes(w, b),
        |x| x == a || x == b,
    )
}

/// Index of the first byte in `lo..=hi` (ASCII range: `lo <= hi <= 0x7f`).
///
/// Scalar equivalent: `haystack.iter().position(|&x| (lo..=hi).contains(&x))`.
#[inline]
pub fn find_ascii_range(haystack: &[u8], lo: u8, hi: u8) -> Option<usize> {
    debug_assert!(lo <= hi && hi <= 0x7f);
    find_match(
        haystack,
        |w| range_lanes(w, lo, hi),
        |x| (lo..=hi).contains(&x),
    )
}

/// Index of the first byte outside printable ASCII `0x20..=0x7e` — the
/// first C0 control, DEL, or non-ASCII byte.
///
/// Scalar equivalent: `haystack.iter().position(|&x| !(0x20..0x7f).contains(&x))`.
#[inline]
pub fn find_non_printable(haystack: &[u8]) -> Option<usize> {
    find_match(
        haystack,
        |w| lt_lanes(w, 0x20) | eq_lanes(w, 0x7f) | (w & HI),
        |x| !(0x20..0x7f).contains(&x),
    )
}

/// Index of the first byte that is a C0 control (`< 0x20`), DEL
/// (`0x7f`), or `0xc2` — the only UTF-8 lead byte that can open a C1
/// control (`U+0080..=U+009F` encodes as `C2 80..C2 9F`). In valid
/// UTF-8, text with no such byte contains no Unicode `Cc` character.
///
/// Scalar equivalent:
/// `haystack.iter().position(|&x| x < 0x20 || x == 0x7f || x == 0xc2)`.
#[inline]
pub fn find_c0_del_or_c1_lead(haystack: &[u8]) -> Option<usize> {
    find_match(
        haystack,
        |w| lt_lanes(w, 0x20) | eq_lanes(w, 0x7f) | eq_lanes(w, 0xc2),
        |x| x < 0x20 || x == 0x7f || x == 0xc2,
    )
}

/// Number of UTF-8 scalar values in `haystack`, counted as the number
/// of non-continuation bytes (exact when the bytes are valid UTF-8).
///
/// Scalar equivalent: `haystack.iter().filter(|&&b| (b & 0xc0) != 0x80).count()`.
#[inline]
pub fn count_utf8_chars(haystack: &[u8]) -> usize {
    let mut chunks = haystack.chunks_exact(WORD);
    let mut continuations = 0u32;
    for chunk in chunks.by_ref() {
        match <[u8; WORD]>::try_from(chunk) {
            Ok(arr) => {
                let w = usize::from_le_bytes(arr);
                // Continuation byte ⇔ bit7 = 1 and bit6 = 0. `w << 1`
                // lifts bit6 into bit7 of the same lane; the cross-lane
                // spill into bit0 is masked off by HI.
                continuations += (w & !(w << 1) & HI).count_ones();
            }
            Err(_) => {
                continuations += chunk.iter().filter(|&&b| (b & 0xc0) == 0x80).count() as u32;
            }
        }
    }
    let tail = chunks
        .remainder()
        .iter()
        .filter(|&&b| (b & 0xc0) == 0x80)
        .count();
    haystack.len() - continuations as usize - tail
}

/// ASCII-lowercase `s` word-at-a-time: bytes `A..=Z` get bit 5 set,
/// every other byte — including multi-byte UTF-8 — passes through
/// untouched (RFC 4343 folding semantics).
///
/// Scalar equivalent: `s.chars().map(|c| c.to_ascii_lowercase()).collect()`.
#[inline]
pub fn ascii_lowercase(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut chunks = bytes.chunks_exact(WORD);
    for chunk in chunks.by_ref() {
        match <[u8; WORD]>::try_from(chunk) {
            Ok(arr) => {
                let w = usize::from_le_bytes(arr);
                let upper = range_lanes(w, b'A', b'Z');
                out.extend_from_slice(&(w | (upper >> 2)).to_le_bytes());
            }
            Err(_) => out.extend(chunk.iter().map(|b| b.to_ascii_lowercase())),
        }
    }
    out.extend(chunks.remainder().iter().map(|b| b.to_ascii_lowercase()));
    // Only bit 5 of ASCII letters was touched, so the bytes are still
    // valid UTF-8; the lossy fallback keeps the function total without
    // unwrap.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exhaustive per-byte check of every lane classifier, in every lane
    /// position, against its scalar predicate.
    #[test]
    fn lane_classifiers_exact_for_all_bytes_and_positions() {
        for b in 0u16..=0xff {
            let b = b as u8;
            for lane in 0..WORD {
                // Surround the probe byte with values chosen to provoke
                // cross-lane borrows in the naive formulas.
                for &fill in &[0x00u8, 0x1f, 0x20, 0x3f, 0x40, 0x7e, 0x7f, 0x80, 0xc2, 0xff] {
                    let mut arr = [fill; WORD];
                    arr[lane] = b;
                    let w = usize::from_le_bytes(arr);
                    let check = |m: usize, expect: bool, what: &str| {
                        let got = m & (0x80usize << (lane * 8)) != 0;
                        assert_eq!(got, expect, "{what} byte={b:#04x} lane={lane} fill={fill:#04x}");
                    };
                    check(lt_lanes(w, 0x20), b < 0x20, "lt 0x20");
                    check(lt_lanes(w, 0x80), b < 0x80, "lt 0x80");
                    check(eq_lanes(w, 0x7f), b == 0x7f, "eq 0x7f");
                    check(eq_lanes(w, fill), b == fill, "eq fill");
                    check(range_lanes(w, 0x40, 0x7e), (0x40..=0x7e).contains(&b), "range 40-7e");
                    check(range_lanes(w, b'A', b'Z'), b.is_ascii_uppercase(), "range A-Z");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn find_byte_matches_scalar(
            h in proptest::collection::vec(any::<u8>(), 0..80),
            b in any::<u8>(),
        ) {
            prop_assert_eq!(find_byte(&h, b), h.iter().position(|&x| x == b));
        }

        #[test]
        fn find_byte2_matches_scalar(
            h in proptest::collection::vec(any::<u8>(), 0..80),
            a in any::<u8>(),
            b in any::<u8>(),
        ) {
            prop_assert_eq!(find_byte2(&h, a, b), h.iter().position(|&x| x == a || x == b));
        }

        #[test]
        fn find_ascii_range_matches_scalar(
            h in proptest::collection::vec(any::<u8>(), 0..80),
            lo in 0u8..0x80,
            span in 0u8..0x80,
        ) {
            let hi = lo.saturating_add(span).min(0x7f);
            prop_assert_eq!(
                find_ascii_range(&h, lo, hi),
                h.iter().position(|&x| (lo..=hi).contains(&x))
            );
        }

        #[test]
        fn find_non_printable_matches_scalar(h in proptest::collection::vec(any::<u8>(), 0..80)) {
            prop_assert_eq!(
                find_non_printable(&h),
                h.iter().position(|&x| !(0x20..0x7f).contains(&x))
            );
        }

        #[test]
        fn find_c0_del_or_c1_lead_matches_scalar(
            h in proptest::collection::vec(any::<u8>(), 0..80),
        ) {
            prop_assert_eq!(
                find_c0_del_or_c1_lead(&h),
                h.iter().position(|&x| x < 0x20 || x == 0x7f || x == 0xc2)
            );
        }

        #[test]
        fn count_utf8_chars_matches_scalar(h in proptest::collection::vec(any::<u8>(), 0..80)) {
            prop_assert_eq!(
                count_utf8_chars(&h),
                h.iter().filter(|&&b| (b & 0xc0) != 0x80).count()
            );
        }

        #[test]
        fn count_utf8_chars_matches_chars_count(s in "\\PC{0,40}") {
            prop_assert_eq!(count_utf8_chars(s.as_bytes()), s.chars().count());
        }

        #[test]
        fn ascii_lowercase_matches_scalar(s in "\\PC{0,40}") {
            let oracle: String = s.chars().map(|c| c.to_ascii_lowercase()).collect();
            prop_assert_eq!(ascii_lowercase(&s), oracle);
        }
    }
}
