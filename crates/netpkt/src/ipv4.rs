//! IPv4 packet view and builder.

use std::net::Ipv4Addr;

use crate::checksum::{internet_checksum, Checksum};
use crate::{check_len, get_u16, set_u16, Error, Result};

/// Minimum IPv4 header length (no options), in bytes.
pub const IPV4_MIN_HEADER_LEN: usize = 20;

/// IP protocol numbers understood by the measurement pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol, raw value preserved.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

/// A zero-copy view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap `buffer`, validating version, header length and total length.
    pub fn parse(buffer: T) -> Result<Self> {
        let buf = buffer.as_ref();
        check_len(buf, IPV4_MIN_HEADER_LEN)?;
        if buf[0] >> 4 != 4 {
            return Err(Error::Unsupported);
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < IPV4_MIN_HEADER_LEN || buf.len() < ihl {
            return Err(Error::BadLength);
        }
        let total = usize::from(get_u16(buf, 2));
        if total < ihl || total > buf.len() {
            return Err(Error::BadLength);
        }
        Ok(Self { buffer })
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0f) * 4
    }

    /// Total packet length from the header's total-length field.
    pub fn total_len(&self) -> usize {
        usize::from(get_u16(self.buffer.as_ref(), 2))
    }

    /// Differentiated-services / TOS byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// IP identification field.
    pub fn identification(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 4)
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Encapsulated protocol.
    pub fn protocol(&self) -> IpProtocol {
        self.buffer.as_ref()[9].into()
    }

    /// Header checksum field value.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 10)
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// True when the header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len();
        internet_checksum(&self.buffer.as_ref()[..hl]) == 0
    }

    /// The transport payload, bounded by the total-length field.
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let total = self.total_len();
        &self.buffer.as_ref()[hl..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Wrap a writable buffer for emission; no field validation.
    pub fn new_unchecked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), IPV4_MIN_HEADER_LEN)?;
        Ok(Self { buffer })
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        set_u16(self.buffer.as_mut(), 10, 0);
        let hl = usize::from(self.buffer.as_ref()[0] & 0x0f) * 4;
        let ck = internet_checksum(&self.buffer.as_ref()[..hl]);
        set_u16(self.buffer.as_mut(), 10, ck);
    }

    /// Mutable view of the payload region.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = usize::from(self.buffer.as_ref()[0] & 0x0f) * 4;
        let total = usize::from(get_u16(self.buffer.as_ref(), 2));
        &mut self.buffer.as_mut()[hl..total]
    }
}

/// Plain-old-data representation used to emit an IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Encapsulated protocol.
    pub protocol: IpProtocol,
    /// Transport payload length in bytes.
    pub payload_len: usize,
    /// Time-to-live (64 is a sensible default).
    pub ttl: u8,
    /// IP identification field.
    pub identification: u16,
}

impl Ipv4Repr {
    /// Total emitted packet length.
    pub fn total_len(&self) -> usize {
        IPV4_MIN_HEADER_LEN + self.payload_len
    }

    /// Emit the header into `buf` and fill the checksum. `buf` must be at
    /// least [`Ipv4Repr::total_len`] bytes (payload is written by the caller
    /// afterwards via [`Ipv4Packet::payload_mut`]).
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        let total = self.total_len();
        if buf.len() < total {
            return Err(Error::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        if total > usize::from(u16::MAX) {
            return Err(Error::BadLength);
        }
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0;
        set_u16(buf, 2, total as u16);
        set_u16(buf, 4, self.identification);
        set_u16(buf, 6, 0x4000); // don't fragment
        buf[8] = self.ttl;
        buf[9] = self.protocol.into();
        set_u16(buf, 10, 0);
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let mut c = Checksum::new();
        c.push(&buf[..IPV4_MIN_HEADER_LEN]);
        set_u16(buf, 10, c.finish());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 1, 2, 3),
            dst: Ipv4Addr::new(192, 168, 0, 1),
            protocol: IpProtocol::Udp,
            payload_len: 8,
            ttl: 64,
            identification: 0xbeef,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        let pkt = Ipv4Packet::parse(&buf[..]).unwrap();
        assert_eq!(pkt.src(), repr.src);
        assert_eq!(pkt.dst(), repr.dst);
        assert_eq!(pkt.protocol(), IpProtocol::Udp);
        assert_eq!(pkt.ttl(), 64);
        assert_eq!(pkt.identification(), 0xbeef);
        assert_eq!(pkt.total_len(), 28);
        assert_eq!(pkt.payload().len(), 8);
        assert!(pkt.verify_checksum());
    }

    #[test]
    fn corrupted_checksum_detected() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut buf).unwrap();
        buf[8] = 63; // mutate TTL without updating checksum
        let pkt = Ipv4Packet::parse(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = [0u8; 20];
        buf[0] = 0x65; // version 6
        assert!(matches!(Ipv4Packet::parse(&buf[..]), Err(Error::Unsupported)));
    }

    #[test]
    fn rejects_bad_lengths() {
        // total length larger than buffer
        let mut buf = [0u8; 20];
        buf[0] = 0x45;
        set_u16(&mut buf, 2, 40);
        assert!(matches!(Ipv4Packet::parse(&buf[..]), Err(Error::BadLength)));
        // IHL smaller than minimum
        let mut buf2 = [0u8; 20];
        buf2[0] = 0x44;
        set_u16(&mut buf2, 2, 20);
        assert!(matches!(Ipv4Packet::parse(&buf2[..]), Err(Error::BadLength)));
    }

    #[test]
    fn payload_bounded_by_total_len() {
        let repr = Ipv4Repr {
            payload_len: 4,
            ..sample_repr()
        };
        // Oversized buffer: payload must not include trailing slack.
        let mut buf = vec![0u8; repr.total_len() + 16];
        repr.emit(&mut buf).unwrap();
        let pkt = Ipv4Packet::parse(&buf[..]).unwrap();
        assert_eq!(pkt.payload().len(), 4);
    }
}
