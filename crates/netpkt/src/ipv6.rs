//! Minimal IPv6 support: enough to recognise, classify and skip v6
//! traffic in a capture (the 2007-era enterprise traces are IPv4, but a
//! robust pipeline must not choke on stray v6 frames).

use std::net::Ipv6Addr;

use crate::ipv4::IpProtocol;
use crate::{check_len, get_u16, Error, Result};

/// Fixed IPv6 header length, in bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// A zero-copy view of an IPv6 packet (fixed header only; extension
/// headers are left in the payload).
#[derive(Debug, Clone)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wrap `buffer`, validating version and payload length.
    pub fn parse(buffer: T) -> Result<Self> {
        let buf = buffer.as_ref();
        check_len(buf, IPV6_HEADER_LEN)?;
        if buf[0] >> 4 != 6 {
            return Err(Error::Unsupported);
        }
        let payload_len = usize::from(get_u16(buf, 4));
        if IPV6_HEADER_LEN + payload_len > buf.len() {
            return Err(Error::BadLength);
        }
        Ok(Self { buffer })
    }

    /// Payload length from the header field.
    pub fn payload_len(&self) -> usize {
        usize::from(get_u16(self.buffer.as_ref(), 4))
    }

    /// Next-header (transport protocol or extension header) value, mapped
    /// onto the shared [`IpProtocol`] space.
    pub fn next_header(&self) -> IpProtocol {
        self.buffer.as_ref()[6].into()
    }

    /// Hop limit (TTL analogue).
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Source address.
    pub fn src(&self) -> Ipv6Addr {
        addr_at(self.buffer.as_ref(), 8)
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv6Addr {
        addr_at(self.buffer.as_ref(), 24)
    }

    /// Payload bytes, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[IPV6_HEADER_LEN..IPV6_HEADER_LEN + self.payload_len()]
    }
}

fn addr_at(buf: &[u8], offset: usize) -> Ipv6Addr {
    let mut o = [0u8; 16];
    o.copy_from_slice(&buf[offset..offset + 16]);
    Ipv6Addr::from(o)
}

/// Emit a minimal IPv6 header (no extension headers); the payload region
/// is written by the caller afterwards.
pub fn emit_header(
    buf: &mut [u8],
    src: Ipv6Addr,
    dst: Ipv6Addr,
    next_header: IpProtocol,
    payload_len: usize,
) -> Result<()> {
    let needed = IPV6_HEADER_LEN + payload_len;
    if buf.len() < needed {
        return Err(Error::Truncated {
            needed,
            got: buf.len(),
        });
    }
    if payload_len > usize::from(u16::MAX) {
        return Err(Error::BadLength);
    }
    buf[0] = 0x60;
    buf[1] = 0;
    buf[2] = 0;
    buf[3] = 0;
    crate::set_u16(buf, 4, payload_len as u16);
    buf[6] = next_header.into();
    buf[7] = 64;
    buf[8..24].copy_from_slice(&src.octets());
    buf[24..40].copy_from_slice(&dst.octets());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv6Addr, Ipv6Addr) {
        (
            "fd00::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        )
    }

    #[test]
    fn roundtrip() {
        let (src, dst) = addrs();
        let mut buf = vec![0u8; IPV6_HEADER_LEN + 8];
        emit_header(&mut buf, src, dst, IpProtocol::Udp, 8).unwrap();
        buf[IPV6_HEADER_LEN..].copy_from_slice(b"payload!");
        let pkt = Ipv6Packet::parse(&buf[..]).unwrap();
        assert_eq!(pkt.src(), src);
        assert_eq!(pkt.dst(), dst);
        assert_eq!(pkt.next_header(), IpProtocol::Udp);
        assert_eq!(pkt.hop_limit(), 64);
        assert_eq!(pkt.payload(), b"payload!");
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = [0u8; IPV6_HEADER_LEN];
        buf[0] = 0x45;
        assert!(matches!(Ipv6Packet::parse(&buf[..]), Err(Error::Unsupported)));
    }

    #[test]
    fn bad_length_rejected() {
        let (src, dst) = addrs();
        let mut buf = vec![0u8; IPV6_HEADER_LEN + 4];
        emit_header(&mut buf, src, dst, IpProtocol::Tcp, 4).unwrap();
        crate::set_u16(&mut buf, 4, 100); // claims more than the buffer
        assert!(matches!(Ipv6Packet::parse(&buf[..]), Err(Error::BadLength)));
    }

    #[test]
    fn payload_bounded_by_field() {
        let (src, dst) = addrs();
        let mut buf = vec![0u8; IPV6_HEADER_LEN + 20];
        emit_header(&mut buf, src, dst, IpProtocol::Tcp, 4).unwrap();
        let pkt = Ipv6Packet::parse(&buf[..]).unwrap();
        assert_eq!(pkt.payload().len(), 4);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Ipv6Packet::parse(&[0x60; 39][..]).is_err());
    }
}
