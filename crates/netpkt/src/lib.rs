//! # netpkt — packet wire formats and capture I/O
//!
//! Zero-copy views and builders for the protocol headers needed by the
//! measurement pipeline of the monoculture-HIDS reproduction: Ethernet II,
//! IPv4, TCP, UDP, ICMPv4 and (a useful subset of) DNS, plus a classic
//! libpcap file reader/writer.
//!
//! The design follows the smoltcp idiom: a *view* type wraps any
//! `AsRef<[u8]>` buffer and exposes typed accessors; when the buffer is also
//! `AsMut<[u8]>` the same type exposes setters. Construction of new packets
//! goes through `emit`-style builders that write into caller-provided
//! buffers, so the hot path never allocates.
//!
//! ```
//! use netpkt::{EthernetFrame, EtherType, Ipv4Packet, IpProtocol, TcpSegment};
//!
//! // Parse a captured frame down to the TCP layer.
//! let frame_bytes = netpkt::testutil::sample_tcp_syn();
//! let eth = EthernetFrame::parse(&frame_bytes[..]).unwrap();
//! assert_eq!(eth.ethertype(), EtherType::Ipv4);
//! let ip = Ipv4Packet::parse(eth.payload()).unwrap();
//! assert_eq!(ip.protocol(), IpProtocol::Tcp);
//! let tcp = TcpSegment::parse(ip.payload()).unwrap();
//! assert!(tcp.flags().syn());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod checksum;
pub mod dns;
pub mod error;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod pcap;
pub mod swar;
pub mod tcp;
pub mod tcpopt;
pub mod testutil;
pub mod udp;

pub use arp::{ArpOp, ArpPacket, ARP_LEN};
pub use dns::{
    fold_name, fold_name_oracle, DnsHeader, DnsOpcode, DnsQuestion, DnsRcode, DnsRecord,
    DnsRecordType, RData,
};
pub use error::{DecodeError, Layer, LayerResultExt};
pub use ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
pub use icmp::{IcmpMessage, IcmpType, ICMP_HEADER_LEN};
pub use ipv4::{IpProtocol, Ipv4Packet, IPV4_MIN_HEADER_LEN};
pub use ipv6::{Ipv6Packet, IPV6_HEADER_LEN};
pub use pcap::{
    LinkType, LossStats, LossyPcapReader, PcapError, PcapPacket, PcapReader, PcapWriter,
};
pub use tcp::{TcpFlags, TcpSegment, TCP_MIN_HEADER_LEN};
pub use tcpopt::{find_mss, TcpOption, TcpOptionIter};
pub use udp::{UdpDatagram, UDP_HEADER_LEN};

/// Errors produced when parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short to contain the fixed-size header.
    Truncated {
        /// Bytes required for the header in question.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A length field points past the end of the buffer.
    BadLength,
    /// A version/type field holds a value this stack does not speak.
    Unsupported,
    /// A checksum failed verification.
    BadChecksum,
    /// A DNS name was malformed (bad label length, loop, or overrun).
    Malformed,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated { needed, got } => {
                write!(f, "buffer truncated: need {needed} bytes, got {got}")
            }
            Error::BadLength => write!(f, "length field inconsistent with buffer"),
            Error::Unsupported => write!(f, "unsupported protocol version or type"),
            Error::BadChecksum => write!(f, "checksum verification failed"),
            Error::Malformed => write!(f, "malformed field"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for wire-format operations.
pub type Result<T> = core::result::Result<T, Error>;

pub(crate) fn check_len(buf: &[u8], needed: usize) -> Result<()> {
    if buf.len() < needed {
        Err(Error::Truncated {
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}

/// Read a big-endian `u16` at `offset`; caller guarantees bounds.
#[inline]
pub(crate) fn get_u16(buf: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([buf[offset], buf[offset + 1]])
}

/// Read a big-endian `u32` at `offset`; caller guarantees bounds.
#[inline]
pub(crate) fn get_u32(buf: &[u8], offset: usize) -> u32 {
    u32::from_be_bytes([buf[offset], buf[offset + 1], buf[offset + 2], buf[offset + 3]])
}

#[inline]
pub(crate) fn set_u16(buf: &mut [u8], offset: usize, value: u16) {
    buf[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
}

#[inline]
pub(crate) fn set_u32(buf: &mut [u8], offset: usize, value: u32) {
    buf[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}
