//! Classic libpcap capture-file reader and writer.
//!
//! Implements the original `.pcap` format (magic `0xa1b2c3d4`, microsecond
//! timestamps), the format produced by the `windump` wrapper used for the
//! paper's data collection. Both byte orders are accepted when reading;
//! files are written little-endian.

use std::io::{self, Read, Write};

/// Data-link types we emit/accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// Ethernet (DLT 1).
    Ethernet,
    /// Raw IP (DLT 101).
    RawIp,
    /// Anything else, value preserved.
    Other(u32),
}

impl From<u32> for LinkType {
    fn from(v: u32) -> Self {
        match v {
            1 => LinkType::Ethernet,
            101 => LinkType::RawIp,
            other => LinkType::Other(other),
        }
    }
}

impl From<LinkType> for u32 {
    fn from(l: LinkType) -> u32 {
        match l {
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
            LinkType::Other(v) => v,
        }
    }
}

const MAGIC_LE: u32 = 0xa1b2c3d4;
const SNAPLEN_DEFAULT: u32 = 65535;

/// One captured packet: timestamp plus frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Seconds since the Unix epoch.
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// Captured frame bytes (we always capture whole frames).
    pub data: Vec<u8>,
}

impl PcapPacket {
    /// Timestamp as fractional seconds.
    pub fn timestamp(&self) -> f64 {
        f64::from(self.ts_sec) + f64::from(self.ts_usec) / 1e6
    }
}

/// Streaming pcap writer over any [`Write`].
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    sink: W,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut sink: W, link_type: LinkType) -> io::Result<Self> {
        sink.write_all(&MAGIC_LE.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // version major
        sink.write_all(&4u16.to_le_bytes())?; // version minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&SNAPLEN_DEFAULT.to_le_bytes())?;
        sink.write_all(&u32::from(link_type).to_le_bytes())?;
        Ok(Self {
            sink,
            packets_written: 0,
        })
    }

    /// Append one packet record.
    pub fn write_packet(&mut self, pkt: &PcapPacket) -> io::Result<()> {
        let len = u32::try_from(pkt.data.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "packet too large"))?;
        self.sink.write_all(&pkt.ts_sec.to_le_bytes())?;
        self.sink.write_all(&pkt.ts_usec.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?; // incl_len
        self.sink.write_all(&len.to_le_bytes())?; // orig_len
        self.sink.write_all(&pkt.data)?;
        self.packets_written += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming pcap reader over any [`Read`].
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    source: R,
    swapped: bool,
    link_type: LinkType,
    snaplen: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a capture, parsing and validating the global header.
    pub fn new(mut source: R) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        source.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_LE => false,
            m if m == MAGIC_LE.swap_bytes() => true,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a pcap file (bad magic)",
                ))
            }
        };
        let u32_at = |b: &[u8], o: usize| {
            let raw = [b[o], b[o + 1], b[o + 2], b[o + 3]];
            if swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let snaplen = u32_at(&hdr, 16);
        let link_type = LinkType::from(u32_at(&hdr, 20));
        Ok(Self {
            source,
            swapped,
            link_type,
            snaplen,
        })
    }

    /// The capture's data-link type.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The capture's snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Read the next packet; `Ok(None)` at clean end-of-file.
    pub fn next_packet(&mut self) -> io::Result<Option<PcapPacket>> {
        let mut rec = [0u8; 16];
        match self.source.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let u32_at = |b: &[u8], o: usize| {
            let raw = [b[o], b[o + 1], b[o + 2], b[o + 3]];
            if self.swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let ts_sec = u32_at(&rec, 0);
        let ts_usec = u32_at(&rec, 4);
        let incl_len = u32_at(&rec, 8) as usize;
        if incl_len > 0x0400_0000 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "pcap record length implausibly large",
            ));
        }
        let mut data = vec![0u8; incl_len];
        self.source.read_exact(&mut data)?;
        Ok(Some(PcapPacket {
            ts_sec,
            ts_usec,
            data,
        }))
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = io::Result<PcapPacket>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<PcapPacket> {
        (0u32..5)
            .map(|i| PcapPacket {
                ts_sec: 1_170_000_000 + i,
                ts_usec: i * 1000,
                data: vec![i as u8; 14 + i as usize],
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let packets = sample_packets();
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        assert_eq!(w.packets_written(), 5);
        let bytes = w.finish().unwrap();

        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::Ethernet);
        assert_eq!(r.snaplen(), 65535);
        let read: Vec<PcapPacket> = (&mut r).map(|p| p.unwrap()).collect();
        assert_eq!(read, packets);
    }

    #[test]
    fn big_endian_capture_accepted() {
        // Hand-build a big-endian header + one record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&1500u32.to_be_bytes());
        bytes.extend_from_slice(&101u32.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&8u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&3u32.to_be_bytes()); // incl_len
        bytes.extend_from_slice(&3u32.to_be_bytes()); // orig_len
        bytes.extend_from_slice(&[0xaa, 0xbb, 0xcc]);

        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::RawIp);
        assert_eq!(r.snaplen(), 1500);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.ts_sec, 7);
        assert_eq!(p.ts_usec, 8);
        assert_eq!(p.data, vec![0xaa, 0xbb, 0xcc]);
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0u8; 24];
        assert!(PcapReader::new(&bytes[..]).is_err());
    }

    #[test]
    fn truncated_record_errors() {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        w.write_packet(&PcapPacket {
            ts_sec: 0,
            ts_usec: 0,
            data: vec![1, 2, 3, 4],
        })
        .unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 2); // cut the packet body short
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        let mut bytes = w.finish().unwrap();
        // Record header claiming a 1 GiB packet.
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0x4000_0000u32.to_le_bytes());
        bytes.extend_from_slice(&0x4000_0000u32.to_le_bytes());
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn timestamp_fractional() {
        let p = PcapPacket {
            ts_sec: 10,
            ts_usec: 500_000,
            data: vec![],
        };
        assert!((p.timestamp() - 10.5).abs() < 1e-9);
    }
}
