//! Classic libpcap capture-file reader and writer.
//!
//! Implements the original `.pcap` format (magic `0xa1b2c3d4`, microsecond
//! timestamps), the format produced by the `windump` wrapper used for the
//! paper's data collection. Both byte orders are accepted when reading;
//! files are written little-endian.
//!
//! Two readers are provided. [`PcapReader`] is strict: the first malformed
//! record aborts the stream, which is right for data you produced yourself.
//! [`LossyPcapReader`] is the ingest-path reader: real end-host captures are
//! messy (hosts power off mid-record, disks flip bits, laptops disconnect),
//! so it skips unparseable regions, resynchronises on the next plausible
//! record header, and accounts every lost byte in [`LossStats`] instead of
//! failing the host's whole week.

use std::io::{self, Read, Write};

/// Data-link types we emit/accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// Ethernet (DLT 1).
    Ethernet,
    /// Raw IP (DLT 101).
    RawIp,
    /// Anything else, value preserved.
    Other(u32),
}

impl From<u32> for LinkType {
    fn from(v: u32) -> Self {
        match v {
            1 => LinkType::Ethernet,
            101 => LinkType::RawIp,
            other => LinkType::Other(other),
        }
    }
}

impl From<LinkType> for u32 {
    fn from(l: LinkType) -> u32 {
        match l {
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
            LinkType::Other(v) => v,
        }
    }
}

const MAGIC_LE: u32 = 0xa1b2c3d4;
const SNAPLEN_DEFAULT: u32 = 65535;

/// One captured packet: timestamp plus frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Seconds since the Unix epoch.
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// Captured frame bytes (we always capture whole frames).
    pub data: Vec<u8>,
}

impl PcapPacket {
    /// Timestamp as fractional seconds.
    pub fn timestamp(&self) -> f64 {
        f64::from(self.ts_sec) + f64::from(self.ts_usec) / 1e6
    }
}

/// Streaming pcap writer over any [`Write`].
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    sink: W,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut sink: W, link_type: LinkType) -> io::Result<Self> {
        sink.write_all(&MAGIC_LE.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // version major
        sink.write_all(&4u16.to_le_bytes())?; // version minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&SNAPLEN_DEFAULT.to_le_bytes())?;
        sink.write_all(&u32::from(link_type).to_le_bytes())?;
        Ok(Self {
            sink,
            packets_written: 0,
        })
    }

    /// Append one packet record.
    pub fn write_packet(&mut self, pkt: &PcapPacket) -> io::Result<()> {
        let len = u32::try_from(pkt.data.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "packet too large"))?;
        self.sink.write_all(&pkt.ts_sec.to_le_bytes())?;
        self.sink.write_all(&pkt.ts_usec.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?; // incl_len
        self.sink.write_all(&len.to_le_bytes())?; // orig_len
        self.sink.write_all(&pkt.data)?;
        self.packets_written += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming pcap reader over any [`Read`].
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    source: R,
    swapped: bool,
    link_type: LinkType,
    snaplen: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a capture, parsing and validating the global header.
    pub fn new(mut source: R) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        source.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_LE => false,
            m if m == MAGIC_LE.swap_bytes() => true,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a pcap file (bad magic)",
                ))
            }
        };
        let u32_at = |b: &[u8], o: usize| {
            let raw = [b[o], b[o + 1], b[o + 2], b[o + 3]];
            if swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let snaplen = u32_at(&hdr, 16);
        let link_type = LinkType::from(u32_at(&hdr, 20));
        Ok(Self {
            source,
            swapped,
            link_type,
            snaplen,
        })
    }

    /// The capture's data-link type.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The capture's snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Read the next packet; `Ok(None)` at clean end-of-file.
    pub fn next_packet(&mut self) -> io::Result<Option<PcapPacket>> {
        let mut rec = [0u8; 16];
        match self.source.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let u32_at = |b: &[u8], o: usize| {
            let raw = [b[o], b[o + 1], b[o + 2], b[o + 3]];
            if self.swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let ts_sec = u32_at(&rec, 0);
        let ts_usec = u32_at(&rec, 4);
        let incl_len = u32_at(&rec, 8) as usize;
        if incl_len > 0x0400_0000 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "pcap record length implausibly large",
            ));
        }
        let mut data = vec![0u8; incl_len];
        self.source.read_exact(&mut data)?;
        Ok(Some(PcapPacket {
            ts_sec,
            ts_usec,
            data,
        }))
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = io::Result<PcapPacket>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet().transpose()
    }
}

/// Why a region of a capture could not be decoded (the pcap-layer fault
/// taxonomy; see also [`crate::DecodeError`] for packet layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcapError {
    /// No pcap magic found (neither byte order), even after scanning.
    BadMagic,
    /// The 24-byte global header is incomplete.
    TruncatedHeader {
        /// Bytes actually present.
        got: usize,
    },
    /// A record header's `incl_len` is implausibly large.
    ImplausibleLength {
        /// The claimed record length.
        claimed: u32,
    },
    /// A record body extends past the end of the capture.
    TruncatedRecord {
        /// Bytes the record claimed.
        needed: usize,
        /// Bytes remaining in the capture.
        got: usize,
    },
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::BadMagic => write!(f, "not a pcap capture (no magic found)"),
            PcapError::TruncatedHeader { got } => {
                write!(f, "pcap global header truncated: 24 bytes needed, {got} present")
            }
            PcapError::ImplausibleLength { claimed } => {
                write!(f, "pcap record length implausible: {claimed} bytes claimed")
            }
            PcapError::TruncatedRecord { needed, got } => {
                write!(f, "pcap record truncated: {needed} bytes claimed, {got} remain")
            }
        }
    }
}

impl std::error::Error for PcapError {}

/// Loss accounting for a lossy read of one capture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossStats {
    /// Records decoded successfully.
    pub records_ok: u64,
    /// Bad records skipped (counted once per resynchronisation).
    pub records_skipped: u64,
    /// Bytes discarded while scanning for the next plausible record.
    pub bytes_skipped: u64,
    /// Bytes discarded before the global header was located.
    pub preamble_skipped: u64,
    /// The capture ended mid-record (host powered off / disconnected).
    pub truncated_tail: bool,
}

impl LossStats {
    /// True when the capture decoded without any loss.
    pub fn is_clean(&self) -> bool {
        self.records_skipped == 0
            && self.bytes_skipped == 0
            && self.preamble_skipped == 0
            && !self.truncated_tail
    }
}

/// How far the lossy reader scans for the global-header magic before giving
/// up on the capture entirely.
const MAGIC_SCAN_LIMIT: usize = 4096;

/// Hard upper bound on a record's `incl_len` (64 MiB, same as the strict
/// reader): anything larger is a corrupted length field, not a packet.
const MAX_RECORD_LEN: u32 = 0x0400_0000;

/// Loss-tolerant pcap reader over an in-memory capture.
///
/// Operates on a byte slice (end-host captures are post-processed whole, as
/// in the paper's windump → Bro pipeline) so resynchronisation can look
/// ahead without consuming input. On a malformed record it scans forward
/// one byte at a time for the next *plausible* record header — sane length,
/// sub-second microseconds field, body that fits the remaining capture —
/// and resumes there, accumulating [`LossStats`].
///
/// Determinism: the output (records + stats) is a pure function of the
/// input bytes, which the fault-injection harness relies on.
#[derive(Debug)]
pub struct LossyPcapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    swapped: bool,
    link_type: LinkType,
    snaplen: u32,
    stats: LossStats,
    /// Timestamp of the last good record: anchors the plausibility check so
    /// resynchronisation cannot lock onto garbage that merely looks framed.
    last_ts: Option<u32>,
}

/// Resync candidates must sit within this many seconds of the last good
/// record's timestamp (captures span weeks; corrupted fields are uniform
/// over the full u32 range, so a ±1-year window rejects almost all fakes).
const RESYNC_TS_SLACK: i64 = 31_536_000;

impl<'a> LossyPcapReader<'a> {
    /// Open a capture, scanning past any corrupted preamble for the magic.
    ///
    /// Fails only when no pcap magic (either byte order) exists in the
    /// first [`MAGIC_SCAN_LIMIT`] bytes — with no header there is no byte
    /// order or link type, so nothing can be salvaged.
    pub fn new(buf: &'a [u8]) -> Result<Self, PcapError> {
        let scan_end = buf.len().min(MAGIC_SCAN_LIMIT);
        let mut start = None;
        for off in 0..scan_end {
            if buf.len() - off < 4 {
                break;
            }
            let magic = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
            if magic == MAGIC_LE || magic == MAGIC_LE.swap_bytes() {
                start = Some((off, magic != MAGIC_LE));
                break;
            }
        }
        let Some((off, swapped)) = start else {
            return Err(PcapError::BadMagic);
        };
        if buf.len() - off < 24 {
            return Err(PcapError::TruncatedHeader {
                got: buf.len() - off,
            });
        }
        let hdr = &buf[off..off + 24];
        let u32_at = |b: &[u8], o: usize| {
            let raw = [b[o], b[o + 1], b[o + 2], b[o + 3]];
            if swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        Ok(Self {
            buf,
            pos: off + 24,
            swapped,
            link_type: LinkType::from(u32_at(hdr, 20)),
            snaplen: u32_at(hdr, 16),
            stats: LossStats {
                preamble_skipped: off as u64,
                ..LossStats::default()
            },
            last_ts: None,
        })
    }

    /// The capture's data-link type.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The capture's snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Loss counters accumulated so far.
    pub fn stats(&self) -> LossStats {
        self.stats
    }

    fn u32_at(&self, o: usize) -> u32 {
        let raw = [self.buf[o], self.buf[o + 1], self.buf[o + 2], self.buf[o + 3]];
        if self.swapped {
            u32::from_be_bytes(raw)
        } else {
            u32::from_le_bytes(raw)
        }
    }

    /// Is there a plausible record header at `o`? Used both for normal
    /// reads and to validate resynchronisation candidates: sane length,
    /// sub-second microseconds, body inside the capture, nonzero payload
    /// (zero-length "records" are how corrupted zero-fill masquerades as
    /// framing), and — once anchored — a timestamp near the last good one.
    fn plausible_at(&self, o: usize) -> bool {
        if self.buf.len() - o < 16 {
            return false;
        }
        let ts_sec = self.u32_at(o);
        let ts_usec = self.u32_at(o + 4);
        let incl_len = self.u32_at(o + 8);
        let ts_ok = match self.last_ts {
            Some(anchor) => (i64::from(ts_sec) - i64::from(anchor)).abs() <= RESYNC_TS_SLACK,
            None => true,
        };
        ts_ok
            && ts_usec < 1_000_000
            && incl_len > 0
            && incl_len <= MAX_RECORD_LEN
            && (incl_len as usize) <= self.buf.len() - o - 16
    }

    /// Scan forward from `from` for the next plausible record header.
    fn resync(&mut self, from: usize) -> Option<usize> {
        let mut o = from;
        while self.buf.len() - o >= 16 {
            if self.plausible_at(o) {
                return Some(o);
            }
            o += 1;
        }
        None
    }

    /// Next decodable packet; `None` at end of capture (clean or not —
    /// check [`LossyPcapReader::stats`] afterwards).
    pub fn next_packet(&mut self) -> Option<PcapPacket> {
        loop {
            let remaining = self.buf.len() - self.pos;
            if remaining == 0 {
                return None;
            }
            if remaining < 16 {
                // Partial record header at EOF: the capture was cut short.
                self.stats.truncated_tail = true;
                self.stats.bytes_skipped += remaining as u64;
                self.pos = self.buf.len();
                return None;
            }
            if self.plausible_at(self.pos) {
                let ts_sec = self.u32_at(self.pos);
                let ts_usec = self.u32_at(self.pos + 4);
                let incl_len = self.u32_at(self.pos + 8) as usize;
                let body = self.pos + 16;
                let data = self.buf[body..body + incl_len].to_vec();
                self.pos = body + incl_len;
                self.stats.records_ok += 1;
                self.last_ts = Some(ts_sec);
                return Some(PcapPacket {
                    ts_sec,
                    ts_usec,
                    data,
                });
            }
            // Bad record header: skip it and hunt for the next plausible
            // one. Everything between counts as lost bytes.
            self.stats.records_skipped += 1;
            match self.resync(self.pos + 1) {
                Some(next) => {
                    self.stats.bytes_skipped += (next - self.pos) as u64;
                    self.pos = next;
                }
                None => {
                    // Nothing decodable remains; the claimed record ran off
                    // the end of the capture (or pure garbage follows).
                    self.stats.truncated_tail = true;
                    self.stats.bytes_skipped += remaining as u64;
                    self.pos = self.buf.len();
                    return None;
                }
            }
        }
    }

    /// Drain the capture, returning every decodable packet plus the final
    /// loss accounting.
    pub fn read_all(mut self) -> (Vec<PcapPacket>, LossStats) {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet() {
            out.push(p);
        }
        (out, self.stats)
    }
}

impl Iterator for LossyPcapReader<'_> {
    type Item = PcapPacket;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<PcapPacket> {
        (0u32..5)
            .map(|i| PcapPacket {
                ts_sec: 1_170_000_000 + i,
                ts_usec: i * 1000,
                data: vec![i as u8; 14 + i as usize],
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let packets = sample_packets();
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        assert_eq!(w.packets_written(), 5);
        let bytes = w.finish().unwrap();

        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::Ethernet);
        assert_eq!(r.snaplen(), 65535);
        let read: Vec<PcapPacket> = (&mut r).map(|p| p.unwrap()).collect();
        assert_eq!(read, packets);
    }

    #[test]
    fn big_endian_capture_accepted() {
        // Hand-build a big-endian header + one record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&1500u32.to_be_bytes());
        bytes.extend_from_slice(&101u32.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&8u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&3u32.to_be_bytes()); // incl_len
        bytes.extend_from_slice(&3u32.to_be_bytes()); // orig_len
        bytes.extend_from_slice(&[0xaa, 0xbb, 0xcc]);

        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::RawIp);
        assert_eq!(r.snaplen(), 1500);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.ts_sec, 7);
        assert_eq!(p.ts_usec, 8);
        assert_eq!(p.data, vec![0xaa, 0xbb, 0xcc]);
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0u8; 24];
        assert!(PcapReader::new(&bytes[..]).is_err());
    }

    #[test]
    fn truncated_record_errors() {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        w.write_packet(&PcapPacket {
            ts_sec: 0,
            ts_usec: 0,
            data: vec![1, 2, 3, 4],
        })
        .unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 2); // cut the packet body short
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        let mut bytes = w.finish().unwrap();
        // Record header claiming a 1 GiB packet.
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0x4000_0000u32.to_le_bytes());
        bytes.extend_from_slice(&0x4000_0000u32.to_le_bytes());
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(r.next_packet().is_err());
    }

    fn sample_capture() -> (Vec<PcapPacket>, Vec<u8>) {
        let packets = sample_packets();
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        (packets, w.finish().unwrap())
    }

    #[test]
    fn lossy_reader_matches_strict_on_clean_capture() {
        let (packets, bytes) = sample_capture();
        let r = LossyPcapReader::new(&bytes[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::Ethernet);
        assert_eq!(r.snaplen(), 65535);
        let (read, stats) = r.read_all();
        assert_eq!(read, packets);
        assert!(stats.is_clean(), "{stats:?}");
        assert_eq!(stats.records_ok, 5);
    }

    #[test]
    fn lossy_reader_skips_corrupt_length_and_resyncs() {
        let (packets, mut bytes) = sample_capture();
        // Corrupt the first record's incl_len field (offset 24 + 8).
        bytes[32..36].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        let (read, stats) = LossyPcapReader::new(&bytes[..]).unwrap().read_all();
        // The first record is lost; the rest are recovered.
        assert_eq!(read, packets[1..].to_vec());
        assert_eq!(stats.records_ok, 4);
        assert!(stats.records_skipped >= 1);
        assert!(stats.bytes_skipped > 0);
    }

    #[test]
    fn lossy_reader_counts_truncated_tail() {
        let (packets, mut bytes) = sample_capture();
        bytes.truncate(bytes.len() - 3); // cut the last body short
        let (read, stats) = LossyPcapReader::new(&bytes[..]).unwrap().read_all();
        assert_eq!(read, packets[..4].to_vec());
        assert!(stats.truncated_tail);
        assert_eq!(stats.records_ok, 4);
    }

    #[test]
    fn lossy_reader_scans_past_corrupt_preamble() {
        let (packets, bytes) = sample_capture();
        let mut noisy = vec![0x5a; 7];
        noisy.extend_from_slice(&bytes);
        let (read, stats) = LossyPcapReader::new(&noisy[..]).unwrap().read_all();
        assert_eq!(read, packets);
        assert_eq!(stats.preamble_skipped, 7);
    }

    #[test]
    fn lossy_reader_rejects_pure_garbage() {
        let garbage = vec![0x11u8; 256];
        assert_eq!(
            LossyPcapReader::new(&garbage[..]).unwrap_err(),
            PcapError::BadMagic
        );
        assert!(matches!(
            LossyPcapReader::new(&MAGIC_LE.to_le_bytes()[..]).unwrap_err(),
            PcapError::TruncatedHeader { got: 4 }
        ));
    }

    #[test]
    fn lossy_reader_big_endian() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&1500u32.to_be_bytes());
        bytes.extend_from_slice(&101u32.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes());
        bytes.extend_from_slice(&8u32.to_be_bytes());
        bytes.extend_from_slice(&3u32.to_be_bytes());
        bytes.extend_from_slice(&3u32.to_be_bytes());
        bytes.extend_from_slice(&[0xaa, 0xbb, 0xcc]);
        let (read, stats) = LossyPcapReader::new(&bytes[..]).unwrap().read_all();
        assert_eq!(read.len(), 1);
        assert_eq!(read[0].data, vec![0xaa, 0xbb, 0xcc]);
        assert!(stats.is_clean());
    }

    #[test]
    fn timestamp_fractional() {
        let p = PcapPacket {
            ts_sec: 10,
            ts_usec: 500_000,
            data: vec![],
        };
        assert!((p.timestamp() - 10.5).abs() < 1e-9);
    }
}
