//! ARP (IPv4-over-Ethernet) packets.
//!
//! The paper's collection tool "watched for changes in IP address,
//! interfaces and location" — on a real LAN that watching sees ARP:
//! gratuitous announcements on address changes, probes on DHCP. The
//! renderer can emit them and the extractor recognises (and skips) them.

use std::net::Ipv4Addr;

use crate::ethernet::MacAddr;
use crate::{check_len, get_u16, set_u16, Error, Result};

/// Length of an IPv4-over-Ethernet ARP packet body.
pub const ARP_LEN: usize = 28;

/// ARP operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has (1).
    Request,
    /// Is-at (2).
    Reply,
    /// Anything else.
    Other(u16),
}

impl From<u16> for ArpOp {
    fn from(v: u16) -> Self {
        match v {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => ArpOp::Other(other),
        }
    }
}

impl From<ArpOp> for u16 {
    fn from(op: ArpOp) -> u16 {
        match op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
            ArpOp::Other(v) => v,
        }
    }
}

/// A decoded ARP packet (IPv4 over Ethernet only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address.
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Parse an ARP body (the Ethernet payload).
    pub fn parse(buf: &[u8]) -> Result<Self> {
        check_len(buf, ARP_LEN)?;
        // htype=1 (Ethernet), ptype=0x0800 (IPv4), hlen=6, plen=4.
        if get_u16(buf, 0) != 1 || get_u16(buf, 2) != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(Error::Unsupported);
        }
        let mac = |o: usize| MacAddr([buf[o], buf[o + 1], buf[o + 2], buf[o + 3], buf[o + 4], buf[o + 5]]);
        let ip = |o: usize| Ipv4Addr::new(buf[o], buf[o + 1], buf[o + 2], buf[o + 3]);
        Ok(ArpPacket {
            op: get_u16(buf, 6).into(),
            sender_mac: mac(8),
            sender_ip: ip(14),
            target_mac: mac(18),
            target_ip: ip(24),
        })
    }

    /// Emit into `buf` (first [`ARP_LEN`] bytes).
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < ARP_LEN {
            return Err(Error::Truncated {
                needed: ARP_LEN,
                got: buf.len(),
            });
        }
        set_u16(buf, 0, 1);
        set_u16(buf, 2, 0x0800);
        buf[4] = 6;
        buf[5] = 4;
        set_u16(buf, 6, self.op.into());
        buf[8..14].copy_from_slice(&self.sender_mac.0);
        buf[14..18].copy_from_slice(&self.sender_ip.octets());
        buf[18..24].copy_from_slice(&self.target_mac.0);
        buf[24..28].copy_from_slice(&self.target_ip.octets());
        Ok(())
    }

    /// A gratuitous announcement (sender == target), what hosts broadcast
    /// after an address change.
    pub fn gratuitous(mac: MacAddr, ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac: mac,
            sender_ip: ip,
            target_mac: MacAddr([0; 6]),
            target_ip: ip,
        }
    }

    /// True for a gratuitous announcement.
    pub fn is_gratuitous(&self) -> bool {
        self.sender_ip == self.target_ip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::from_host_id(1),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::from_host_id(2),
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; ARP_LEN];
        sample().emit(&mut buf).unwrap();
        assert_eq!(ArpPacket::parse(&buf).unwrap(), sample());
    }

    #[test]
    fn gratuitous_detected() {
        let g = ArpPacket::gratuitous(MacAddr::from_host_id(9), Ipv4Addr::new(192, 168, 1, 5));
        assert!(g.is_gratuitous());
        assert!(!sample().is_gratuitous());
        let mut buf = [0u8; ARP_LEN];
        g.emit(&mut buf).unwrap();
        assert!(ArpPacket::parse(&buf).unwrap().is_gratuitous());
    }

    #[test]
    fn non_ethernet_ipv4_rejected() {
        let mut buf = [0u8; ARP_LEN];
        sample().emit(&mut buf).unwrap();
        buf[1] = 6; // htype = Token Ring-ish
        assert!(matches!(ArpPacket::parse(&buf), Err(Error::Unsupported)));
        sample().emit(&mut buf).unwrap();
        buf[5] = 16; // plen wrong
        assert!(matches!(ArpPacket::parse(&buf), Err(Error::Unsupported)));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(ArpPacket::parse(&[0u8; 27]).is_err());
        let mut short = [0u8; 20];
        assert!(sample().emit(&mut short).is_err());
    }

    #[test]
    fn op_roundtrip() {
        for raw in [1u16, 2, 3, 9] {
            assert_eq!(u16::from(ArpOp::from(raw)), raw);
        }
    }
}
