//! Ethernet II framing.

use crate::{check_len, get_u16, set_u16, Error, Result};

/// Length of an Ethernet II header (dst + src + ethertype), in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Construct a locally-administered unicast address from a 32-bit id.
    ///
    /// Useful for synthesising distinct, valid host addresses in tests and
    /// trace generation (`02:00:` prefix marks locally administered).
    pub fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// Well-known EtherType values (only those this stack understands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`) — recognised but not decoded further.
    Arp,
    /// IPv6 (`0x86dd`) — recognised but not decoded further.
    Ipv6,
    /// Anything else, with the raw value preserved.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }
}

/// A zero-copy view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap `buffer`, validating that it holds at least a full header.
    pub fn parse(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), ETHERNET_HEADER_LEN)?;
        Ok(Self { buffer })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType of the encapsulated payload.
    pub fn ethertype(&self) -> EtherType {
        get_u16(self.buffer.as_ref(), 12).into()
    }

    /// The frame payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ETHERNET_HEADER_LEN..]
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Wrap a writable buffer without validating contents (for emission).
    pub fn new_unchecked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), ETHERNET_HEADER_LEN)?;
        Ok(Self { buffer })
    }

    /// Set the destination address.
    pub fn set_dst(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Set the source address.
    pub fn set_src(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, t: EtherType) {
        set_u16(self.buffer.as_mut(), 12, t.into());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[ETHERNET_HEADER_LEN..]
    }
}

/// Fields needed to emit an Ethernet header.
#[derive(Debug, Clone, Copy)]
pub struct EthernetRepr {
    /// Source address.
    pub src: MacAddr,
    /// Destination address.
    pub dst: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Emit the header into the first [`ETHERNET_HEADER_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(Error::Truncated {
                needed: ETHERNET_HEADER_LEN,
                got: buf.len(),
            });
        }
        let mut frame = EthernetFrame::new_unchecked(buf)?;
        frame.set_dst(self.dst);
        frame.set_src(self.src);
        frame.set_ethertype(self.ethertype);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; 20];
        let repr = EthernetRepr {
            src: MacAddr::from_host_id(7),
            dst: MacAddr::BROADCAST,
            ethertype: EtherType::Ipv4,
        };
        repr.emit(&mut buf).unwrap();
        let frame = EthernetFrame::parse(&buf[..]).unwrap();
        assert_eq!(frame.src(), MacAddr::from_host_id(7));
        assert_eq!(frame.dst(), MacAddr::BROADCAST);
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload().len(), 6);
    }

    #[test]
    fn too_short_rejected() {
        assert!(matches!(
            EthernetFrame::parse(&[0u8; 13][..]),
            Err(Error::Truncated { needed: 14, got: 13 })
        ));
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let m = MacAddr::from_host_id(0xdeadbeef);
        assert!(!m.is_multicast());
        assert_eq!(m.to_string(), "02:00:de:ad:be:ef");
    }

    #[test]
    fn ethertype_mapping() {
        for (raw, ty) in [
            (0x0800u16, EtherType::Ipv4),
            (0x0806, EtherType::Arp),
            (0x86dd, EtherType::Ipv6),
            (0x1234, EtherType::Other(0x1234)),
        ] {
            assert_eq!(EtherType::from(raw), ty);
            assert_eq!(u16::from(ty), raw);
        }
    }
}
