//! UDP datagram view and builder.

use std::net::Ipv4Addr;

use crate::checksum::pseudo_header_checksum;
use crate::{check_len, get_u16, set_u16, Error, Result};

/// UDP header length, in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A zero-copy view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap `buffer`, validating the length field.
    pub fn parse(buffer: T) -> Result<Self> {
        let buf = buffer.as_ref();
        check_len(buf, UDP_HEADER_LEN)?;
        let len = usize::from(get_u16(buf, 4));
        if len < UDP_HEADER_LEN || len > buf.len() {
            return Err(Error::BadLength);
        }
        Ok(Self { buffer })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// Datagram length (header + payload) from the length field.
    pub fn len(&self) -> usize {
        usize::from(get_u16(self.buffer.as_ref(), 4))
    }

    /// True when the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() == UDP_HEADER_LEN
    }

    /// Checksum field value (zero means "not computed" in UDP/IPv4).
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 6)
    }

    /// Payload bytes, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[UDP_HEADER_LEN..self.len()]
    }

    /// Verify the checksum (treats an all-zero checksum field as valid, per
    /// RFC 768 which makes the UDP checksum optional over IPv4).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        pseudo_header_checksum(src, dst, 17, &self.buffer.as_ref()[..self.len()]) == 0
    }
}

/// Plain representation used to emit a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length that will follow the header.
    pub payload_len: usize,
}

impl UdpRepr {
    /// Total emitted datagram length.
    pub fn datagram_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload_len
    }

    /// Emit the header; the caller writes the payload then calls
    /// [`UdpRepr::fill_checksum`].
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        let needed = self.datagram_len();
        if buf.len() < needed {
            return Err(Error::Truncated {
                needed,
                got: buf.len(),
            });
        }
        if needed > usize::from(u16::MAX) {
            return Err(Error::BadLength);
        }
        set_u16(buf, 0, self.src_port);
        set_u16(buf, 2, self.dst_port);
        set_u16(buf, 4, needed as u16);
        set_u16(buf, 6, 0);
        Ok(())
    }

    /// Compute and store the checksum over `datagram` (header + payload).
    /// A computed checksum of zero is transmitted as `0xffff` per RFC 768.
    pub fn fill_checksum(datagram: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr) {
        set_u16(datagram, 6, 0);
        let ck = pseudo_header_checksum(src, dst, 17, datagram);
        set_u16(datagram, 6, if ck == 0 { 0xffff } else { ck });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 10);
    const DST: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    fn emit_sample(payload: &[u8]) -> Vec<u8> {
        let repr = UdpRepr {
            src_port: 53124,
            dst_port: 53,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.datagram_len()];
        repr.emit(&mut buf).unwrap();
        buf[UDP_HEADER_LEN..].copy_from_slice(payload);
        UdpRepr::fill_checksum(&mut buf, SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_with_checksum() {
        let buf = emit_sample(b"query");
        let dg = UdpDatagram::parse(&buf[..]).unwrap();
        assert_eq!(dg.src_port(), 53124);
        assert_eq!(dg.dst_port(), 53);
        assert_eq!(dg.len(), 13);
        assert!(!dg.is_empty());
        assert_eq!(dg.payload(), b"query");
        assert!(dg.verify_checksum(SRC, DST));
        assert!(!dg.verify_checksum(SRC, Ipv4Addr::new(8, 8, 4, 4)));
    }

    #[test]
    fn zero_checksum_treated_as_valid() {
        let mut buf = emit_sample(b"x");
        set_u16(&mut buf, 6, 0);
        let dg = UdpDatagram::parse(&buf[..]).unwrap();
        assert!(dg.verify_checksum(SRC, DST));
    }

    #[test]
    fn length_field_validated() {
        let mut buf = emit_sample(b"abc");
        set_u16(&mut buf, 4, 4); // below header size
        assert!(matches!(UdpDatagram::parse(&buf[..]), Err(Error::BadLength)));
        set_u16(&mut buf, 4, 200); // beyond buffer
        assert!(matches!(UdpDatagram::parse(&buf[..]), Err(Error::BadLength)));
    }

    #[test]
    fn payload_bounded_by_length_field() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 2,
        };
        let mut buf = vec![0u8; repr.datagram_len() + 10]; // slack after datagram
        repr.emit(&mut buf).unwrap();
        let dg = UdpDatagram::parse(&buf[..]).unwrap();
        assert_eq!(dg.payload().len(), 2);
    }

    #[test]
    fn empty_payload() {
        let buf = emit_sample(b"");
        let dg = UdpDatagram::parse(&buf[..]).unwrap();
        assert!(dg.is_empty());
        assert_eq!(dg.payload(), b"");
    }
}
