//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variant.

use std::net::Ipv4Addr;

/// Incremental ones-complement sum accumulator.
///
/// Feed it byte slices (odd-length slices are handled by padding the final
/// byte, matching the behaviour of summing the datagram as a sequence of
/// 16-bit big-endian words) and call [`Checksum::finish`] to obtain the
/// folded, complemented checksum field value.
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
    /// A trailing odd byte from the previous `push`, if any.
    pending: Option<u8>,
}

impl Checksum {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `data` to the running sum.
    pub fn push(&mut self, data: &[u8]) {
        let mut data = data;
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = data.split_first() {
                self.sum += u32::from(u16::from_be_bytes([hi, lo]));
                data = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    /// Add a single big-endian 16-bit word.
    pub fn push_u16(&mut self, word: u16) {
        self.push(&word.to_be_bytes());
    }

    /// Fold carries and return the complemented checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.sum += u32::from(u16::from_be_bytes([hi, 0]));
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Compute the Internet checksum of a complete buffer.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.push(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already populated.
///
/// A correct buffer sums (including its checksum field) to `0xffff` before
/// complementing, i.e. [`internet_checksum`] over it returns zero.
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

/// Compute the TCP/UDP checksum over the IPv4 pseudo-header plus payload.
///
/// `segment` must contain the transport header and payload with its checksum
/// field zeroed (when computing) or populated (when verifying — in which case
/// a result of zero indicates validity).
pub fn pseudo_header_checksum(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let mut c = Checksum::new();
    c.push(&src.octets());
    c.push(&dst.octets());
    c.push_u16(u16::from(protocol));
    c.push_u16(segment.len() as u16);
    c.push(segment);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x00 01 + 0xf2 03 + 0xf4 f5 + 0xf6 f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u16..301).map(|x| (x % 251) as u8).collect();
        let oneshot = internet_checksum(&data);
        for split in [0usize, 1, 2, 3, 150, 299, 300, 301] {
            let mut c = Checksum::new();
            c.push(&data[..split]);
            c.push(&data[split..]);
            assert_eq!(c.finish(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn odd_odd_chaining() {
        // Two odd-length pushes must combine into whole words across the seam.
        let data = [0x12u8, 0x34, 0x56, 0x78, 0x9a];
        let mut c = Checksum::new();
        c.push(&data[..1]);
        c.push(&data[1..4]);
        c.push(&data[4..]);
        assert_eq!(c.finish(), internet_checksum(&data));
    }

    #[test]
    fn verify_roundtrip() {
        let mut data = vec![0u8; 20];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        // Zero a "checksum field" at offset 10, then fill it in.
        data[10] = 0;
        data[11] = 0;
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0xff;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_known_vector() {
        // Hand-checked UDP checksum: src 10.0.0.1 dst 10.0.0.2, proto 17,
        // segment = UDP header (ports 53->1024, len 9, ck 0) + payload "A".
        let seg = [0x00u8, 0x35, 0x04, 0x00, 0x00, 0x09, 0x00, 0x00, 0x41];
        let ck = pseudo_header_checksum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            &seg,
        );
        // Verify by re-summing with the checksum included: must be valid.
        let mut filled = seg;
        filled[6..8].copy_from_slice(&ck.to_be_bytes());
        let residual = pseudo_header_checksum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            &filled,
        );
        assert_eq!(residual, 0);
    }
}
