//! Property-based tests of the wire-format layer.

use proptest::prelude::*;

use netpkt::checksum::{internet_checksum, Checksum};
use netpkt::dns::{emit_query, parse_answers, DnsHeader, DnsQuestion, DnsRecordType, DNS_HEADER_LEN};
use netpkt::{
    ArpOp, ArpPacket, EthernetFrame, IcmpMessage, Ipv4Packet, Ipv6Packet, LinkType,
    LossyPcapReader, MacAddr, PcapPacket, PcapReader, PcapWriter, TcpFlags, TcpSegment,
    UdpDatagram,
};
use std::net::Ipv4Addr;

/// Valid DNS labels: 1..=20 lowercase alphanumerics.
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,20}", 1..5).prop_map(|labels| labels.join("."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Splitting the data at any point never changes the checksum.
    #[test]
    fn checksum_split_invariant(data in proptest::collection::vec(any::<u8>(), 0..400), split in any::<proptest::sample::Index>()) {
        let oneshot = internet_checksum(&data);
        let at = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut c = Checksum::new();
        c.push(&data[..at]);
        c.push(&data[at..]);
        prop_assert_eq!(c.finish(), oneshot);
    }

    /// Filling a checksum field always verifies; flipping any bit after
    /// filling always fails verification.
    #[test]
    fn checksum_fill_verify(mut data in proptest::collection::vec(any::<u8>(), 4..200), flip_at in any::<proptest::sample::Index>(), bit in 0u8..8) {
        let len = data.len();
        data[0] = 0;
        data[1] = 0;
        let ck = internet_checksum(&data);
        data[0..2].copy_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(internet_checksum(&data), 0);
        let i = flip_at.index(len);
        data[i] ^= 1 << bit;
        prop_assert_ne!(internet_checksum(&data), 0, "flip at {} bit {}", i, bit);
    }

    /// Any valid name round-trips through DNS query encode/parse.
    #[test]
    fn dns_name_roundtrip(name in arb_name(), id in any::<u16>()) {
        let mut buf = vec![0u8; 512];
        let n = emit_query(&mut buf, id, &name, DnsRecordType::A).unwrap();
        let header = DnsHeader::parse(&buf[..n]).unwrap();
        prop_assert_eq!(header.id, id);
        let (q, end) = DnsQuestion::parse(&buf[..n], DNS_HEADER_LEN).unwrap();
        prop_assert_eq!(q.name, name);
        prop_assert_eq!(end, n);
    }

    /// ARP packets round-trip for arbitrary addresses and operations.
    #[test]
    fn arp_roundtrip(smac in any::<[u8; 6]>(), tmac in any::<[u8; 6]>(), sip in any::<[u8; 4]>(), tip in any::<[u8; 4]>(), op in any::<u16>()) {
        let pkt = ArpPacket {
            op: ArpOp::from(op),
            sender_mac: MacAddr(smac),
            sender_ip: Ipv4Addr::from(sip),
            target_mac: MacAddr(tmac),
            target_ip: Ipv4Addr::from(tip),
        };
        let mut buf = [0u8; netpkt::ARP_LEN];
        pkt.emit(&mut buf).unwrap();
        prop_assert_eq!(ArpPacket::parse(&buf).unwrap(), pkt);
    }

    /// Every layer decoder is total on arbitrary bytes: returns Ok or Err,
    /// never panics, never reads out of bounds.
    #[test]
    fn layer_decoders_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..700)) {
        let _ = EthernetFrame::parse(&bytes[..]);
        let _ = Ipv4Packet::parse(&bytes[..]);
        let _ = Ipv6Packet::parse(&bytes[..]);
        let _ = TcpSegment::parse(&bytes[..]);
        let _ = UdpDatagram::parse(&bytes[..]);
        let _ = IcmpMessage::parse(&bytes[..]);
        let _ = ArpPacket::parse(&bytes[..]);
        let _ = DnsHeader::parse(&bytes[..]);
        let _ = parse_answers(&bytes[..]);
    }

    /// Both pcap readers are total on arbitrary bytes; the lossy reader's
    /// accounting never loses track of input bytes.
    #[test]
    fn pcap_readers_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(mut strict) = PcapReader::new(&bytes[..]) {
            for _ in 0..200 {
                match strict.next_packet() {
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => break,
                }
            }
        }
        if let Ok(reader) = LossyPcapReader::new(&bytes[..]) {
            let (packets, stats) = reader.read_all();
            prop_assert_eq!(packets.len() as u64, stats.records_ok);
            // Accounted bytes never exceed the capture.
            let payload: u64 = packets.iter().map(|p| p.data.len() as u64 + 16).sum();
            let accounted = payload + stats.bytes_skipped + stats.preamble_skipped + 24;
            prop_assert!(accounted <= bytes.len() as u64 + 24);
        }
    }

    /// Flipping bits anywhere in a valid capture never panics either
    /// reader, and the lossy reader still recovers only real records.
    #[test]
    fn pcap_bitflips_never_panic(
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), 0u8..8), 0..12)
    ) {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        for i in 0u32..8 {
            w.write_packet(&PcapPacket {
                ts_sec: 1_200_000_000 + i,
                ts_usec: i * 10,
                data: vec![i as u8; 20 + (i as usize % 7)],
            }).unwrap();
        }
        let mut bytes = w.finish().unwrap();
        let n = bytes.len();
        for (idx, bit) in &flips {
            bytes[idx.index(n)] ^= 1 << bit;
        }
        if let Ok(mut strict) = PcapReader::new(&bytes[..]) {
            while let Ok(Some(_)) = strict.next_packet() {}
        }
        if let Ok(reader) = LossyPcapReader::new(&bytes[..]) {
            let (packets, stats) = reader.read_all();
            prop_assert!(stats.records_ok <= 8 + stats.records_skipped);
            prop_assert_eq!(packets.len() as u64, stats.records_ok);
        }
    }

    /// The lossy reader recovers every remaining record after a forged
    /// length field, regardless of which record is hit.
    #[test]
    fn lossy_reader_resyncs_after_forged_length(victim in 0usize..6, forged in 0x0500_0000u32..0xffff_0000u32) {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        for i in 0u32..6 {
            w.write_packet(&PcapPacket {
                ts_sec: 1_200_000_000 + i,
                ts_usec: 0,
                data: vec![0xab; 30],
            }).unwrap();
        }
        let mut bytes = w.finish().unwrap();
        // Record i starts at 24 + i * (16 + 30); incl_len at +8.
        let off = 24 + victim * 46 + 8;
        bytes[off..off + 4].copy_from_slice(&forged.to_le_bytes());
        let (packets, stats) = LossyPcapReader::new(&bytes[..]).unwrap().read_all();
        prop_assert_eq!(stats.records_ok, 5, "{:?}", stats);
        prop_assert_eq!(packets.len(), 5);
        prop_assert!(stats.records_skipped >= 1);
    }

    /// TCP flag bits survive the flag-byte mask independently.
    #[test]
    fn tcp_flags_bits(bits in 0u8..64) {
        let f = TcpFlags(bits);
        prop_assert_eq!(f.syn(), bits & 0x02 != 0);
        prop_assert_eq!(f.ack(), bits & 0x10 != 0);
        prop_assert_eq!(f.fin(), bits & 0x01 != 0);
        prop_assert_eq!(f.rst(), bits & 0x04 != 0);
        // Display never panics and mentions SYN iff set.
        let s = f.to_string();
        prop_assert_eq!(s.contains("SYN"), f.syn());
    }
}
