//! Property-based tests of the wire-format layer.

use proptest::prelude::*;

use netpkt::checksum::{internet_checksum, Checksum};
use netpkt::dns::{emit_query, DnsHeader, DnsQuestion, DnsRecordType, DNS_HEADER_LEN};
use netpkt::{ArpOp, ArpPacket, MacAddr, TcpFlags};
use std::net::Ipv4Addr;

/// Valid DNS labels: 1..=20 lowercase alphanumerics.
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,20}", 1..5).prop_map(|labels| labels.join("."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Splitting the data at any point never changes the checksum.
    #[test]
    fn checksum_split_invariant(data in proptest::collection::vec(any::<u8>(), 0..400), split in any::<proptest::sample::Index>()) {
        let oneshot = internet_checksum(&data);
        let at = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut c = Checksum::new();
        c.push(&data[..at]);
        c.push(&data[at..]);
        prop_assert_eq!(c.finish(), oneshot);
    }

    /// Filling a checksum field always verifies; flipping any bit after
    /// filling always fails verification.
    #[test]
    fn checksum_fill_verify(mut data in proptest::collection::vec(any::<u8>(), 4..200), flip_at in any::<proptest::sample::Index>(), bit in 0u8..8) {
        let len = data.len();
        data[0] = 0;
        data[1] = 0;
        let ck = internet_checksum(&data);
        data[0..2].copy_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(internet_checksum(&data), 0);
        let i = flip_at.index(len);
        data[i] ^= 1 << bit;
        prop_assert_ne!(internet_checksum(&data), 0, "flip at {} bit {}", i, bit);
    }

    /// Any valid name round-trips through DNS query encode/parse.
    #[test]
    fn dns_name_roundtrip(name in arb_name(), id in any::<u16>()) {
        let mut buf = vec![0u8; 512];
        let n = emit_query(&mut buf, id, &name, DnsRecordType::A).unwrap();
        let header = DnsHeader::parse(&buf[..n]).unwrap();
        prop_assert_eq!(header.id, id);
        let (q, end) = DnsQuestion::parse(&buf[..n], DNS_HEADER_LEN).unwrap();
        prop_assert_eq!(q.name, name);
        prop_assert_eq!(end, n);
    }

    /// ARP packets round-trip for arbitrary addresses and operations.
    #[test]
    fn arp_roundtrip(smac in any::<[u8; 6]>(), tmac in any::<[u8; 6]>(), sip in any::<[u8; 4]>(), tip in any::<[u8; 4]>(), op in any::<u16>()) {
        let pkt = ArpPacket {
            op: ArpOp::from(op),
            sender_mac: MacAddr(smac),
            sender_ip: Ipv4Addr::from(sip),
            target_mac: MacAddr(tmac),
            target_ip: Ipv4Addr::from(tip),
        };
        let mut buf = [0u8; netpkt::ARP_LEN];
        pkt.emit(&mut buf).unwrap();
        prop_assert_eq!(ArpPacket::parse(&buf).unwrap(), pkt);
    }

    /// TCP flag bits survive the flag-byte mask independently.
    #[test]
    fn tcp_flags_bits(bits in 0u8..64) {
        let f = TcpFlags(bits);
        prop_assert_eq!(f.syn(), bits & 0x02 != 0);
        prop_assert_eq!(f.ack(), bits & 0x10 != 0);
        prop_assert_eq!(f.fin(), bits & 0x01 != 0);
        prop_assert_eq!(f.rst(), bits & 0x04 != 0);
        // Display never panics and mentions SYN iff set.
        let s = f.to_string();
        prop_assert_eq!(s.contains("SYN"), f.syn());
    }
}
