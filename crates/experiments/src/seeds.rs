//! Extension: seed sensitivity — are the headline conclusions artifacts
//! of one synthetic population?
//!
//! Regenerates the corpus under several master seeds and re-measures the
//! three headline effects (utility gap, stealth-detection gap, mimicry
//! reduction). The conclusions should hold for *every* seed; the table
//! reports the spread.

use flowtab::FeatureKind;
use hids_core::{eval::evaluate_policy, EvalConfig, Grouping, Policy, ThresholdHeuristic};
use tailstats::Moments;

use crate::data::{Corpus, CorpusConfig};
use crate::report::{fnum, Table};
use crate::{fig4, tab2};

/// One seed's headline measurements.
#[derive(Debug, Clone, Copy)]
pub struct SeedOutcome {
    /// Master seed used.
    pub seed: u64,
    /// Mean-utility gap (full diversity − homogeneous) at w = 0.5, p99.
    pub utility_gap: f64,
    /// Stealth-detection gap (mean alarm fraction over the smallest decade
    /// of attack sizes, full − homog).
    pub stealth_gap: f64,
    /// Mimicry median hidden-traffic ratio (homog / full).
    pub mimicry_ratio: f64,
    /// Table-2 overlap of best TCP/UDP users under full diversity.
    pub tab2_overlap: usize,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct SeedsResult {
    /// Per-seed outcomes.
    pub outcomes: Vec<SeedOutcome>,
}

impl SeedsResult {
    /// True when the qualitative conclusions hold for every seed.
    pub fn all_conclusions_hold(&self) -> bool {
        self.outcomes.iter().all(|o| {
            o.utility_gap > 0.0 && o.stealth_gap > 0.0 && o.mimicry_ratio > 1.0 && o.tab2_overlap <= 6
        })
    }
}

/// Measure one seed.
fn measure(seed: u64, n_users: usize) -> SeedOutcome {
    let corpus = Corpus::generate(CorpusConfig {
        n_users,
        n_weeks: 2,
        seed,
        ..Default::default()
    });
    let feature = FeatureKind::TcpConnections;
    let ds = corpus.dataset(feature, 0);
    let config = EvalConfig {
        w: 0.5,
        sweep: ds.default_sweep(),
    };
    let eval_of = |grouping| {
        evaluate_policy(
            &ds,
            &Policy {
                grouping,
                heuristic: ThresholdHeuristic::P99,
            },
            &config,
        )
        .mean_utility()
    };
    let utility_gap = eval_of(Grouping::FullDiversity) - eval_of(Grouping::Homogeneous);

    let a = fig4::run_a(&corpus, feature, 0, 40);
    let stealth = (a.sizes.len() / 10).max(1);
    let mean = |c: &[f64]| c[..stealth].iter().sum::<f64>() / stealth as f64;
    let stealth_gap = mean(&a.curves[1]) - mean(&a.curves[0]);

    let b = fig4::run_b(&corpus, feature, 0, 0.9);
    let mimicry_ratio = b.summaries[0].median / b.summaries[1].median.max(1.0);

    let overlap = tab2::run(&corpus, 0, 10).full.common();

    SeedOutcome {
        seed,
        utility_gap,
        stealth_gap,
        mimicry_ratio,
        tab2_overlap: overlap,
    }
}

/// Run the sweep over `seeds` with `n_users` each.
pub fn run(seeds: &[u64], n_users: usize) -> SeedsResult {
    SeedsResult {
        outcomes: seeds.iter().map(|&s| measure(s, n_users)).collect(),
    }
}

/// Render per-seed rows plus a mean ± sd summary.
pub fn table(r: &SeedsResult) -> Table {
    let mut t = Table::new(
        "Extension — seed sensitivity of the headline conclusions",
        &[
            "seed",
            "utility gap (full−homog)",
            "stealth detection gap",
            "mimicry ratio (homog/full)",
            "tab2 overlap",
        ],
    );
    let mut gap = Moments::new();
    let mut stealth = Moments::new();
    let mut ratio = Moments::new();
    for o in &r.outcomes {
        gap.observe(o.utility_gap);
        stealth.observe(o.stealth_gap);
        ratio.observe(o.mimicry_ratio);
        t.row(vec![
            format!("{:#x}", o.seed),
            fnum(o.utility_gap),
            fnum(o.stealth_gap),
            fnum(o.mimicry_ratio),
            o.tab2_overlap.to_string(),
        ]);
    }
    t.row(vec![
        "mean ± sd".into(),
        format!("{} ± {}", fnum(gap.mean()), fnum(gap.stddev())),
        format!("{} ± {}", fnum(stealth.mean()), fnum(stealth.stddev())),
        format!("{} ± {}", fnum(ratio.mean()), fnum(ratio.stddev())),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_hold_across_seeds() {
        let r = run(&[1, 0xBEEF, 0xC0FFEE], 60);
        assert_eq!(r.outcomes.len(), 3);
        assert!(
            r.all_conclusions_hold(),
            "every seed must reproduce the headline effects: {:?}",
            r.outcomes
        );
        // And the populations genuinely differ.
        let gaps: Vec<f64> = r.outcomes.iter().map(|o| o.utility_gap).collect();
        assert!(gaps.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }

    #[test]
    fn table_has_summary_row() {
        let r = run(&[7, 8], 40);
        let t = table(&r);
        assert_eq!(t.len(), 3);
        assert!(t.to_csv().contains("mean"));
    }
}
