//! Corpus: the generated population traces every experiment consumes.

use flowtab::{FeatureKind, FeatureSeries, Windowing};
use hids_core::FeatureDataset;
use serde::{Deserialize, Serialize};
use synthgen::{user_week_series_trended, Population, PopulationConfig, UserProfile};

/// Configuration of a reproduction run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of users (paper: 350).
    pub n_users: usize,
    /// Number of weeks (paper: 5, of which weeks 1→2 and 3→4 are used).
    pub n_weeks: usize,
    /// Master seed.
    pub seed: u64,
    /// Window width in seconds (paper default: 900).
    pub window_secs: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            n_users: 350,
            n_weeks: 5,
            seed: 0xC0FFEE,
            window_secs: 900.0,
        }
    }
}

impl CorpusConfig {
    /// A small corpus for unit tests and doc examples.
    pub fn small() -> Self {
        Self {
            n_users: 40,
            n_weeks: 2,
            ..Default::default()
        }
    }

    /// The windowing implied by `window_secs`.
    pub fn windowing(&self) -> Windowing {
        Windowing {
            width_secs: self.window_secs,
        }
    }
}

/// The generated corpus: profiles plus per-user, per-week feature series.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Run configuration.
    pub config: CorpusConfig,
    /// Sampled population.
    pub population: Population,
    /// `weeks[u][w]` is user `u`'s series for week `w`.
    pub weeks: Vec<Vec<FeatureSeries>>,
}

impl Corpus {
    /// Generate a corpus, parallelising across users via
    /// [`hids_core::par_map`] (each user's weekly series derive from their
    /// own seeded stream, so output is identical at any thread count).
    pub fn generate(config: CorpusConfig) -> Self {
        let population = Population::sample(PopulationConfig {
            n_users: config.n_users,
            seed: config.seed,
            ..Default::default()
        });
        let windowing = config.windowing();
        let n_weeks = config.n_weeks;
        let seed = population.config.seed;
        let trend = population.config.weekly_trend;

        let weeks = hids_core::par_map(&population.users, |_, u: &UserProfile| {
            (0..n_weeks)
                .map(|w| user_week_series_trended(u, seed, w, windowing, trend))
                .collect::<Vec<_>>()
        });

        Self {
            config,
            population,
            weeks,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.weeks.len()
    }

    /// One user's series for one week.
    pub fn series(&self, user: usize, week: usize) -> &FeatureSeries {
        &self.weeks[user][week]
    }

    /// Train-on-week / test-on-next dataset for one feature.
    ///
    /// The paper trains on week 1 and tests on week 2, then trains on week
    /// 3 and tests on week 4 (`train_week` ∈ {0, 2} in 0-based indexing).
    pub fn dataset(&self, feature: FeatureKind, train_week: usize) -> FeatureDataset {
        assert!(
            train_week + 1 < self.config.n_weeks,
            "need a following test week"
        );
        let train: Vec<FeatureSeries> = self
            .weeks
            .iter()
            .map(|w| w[train_week].clone())
            .collect();
        let test: Vec<FeatureSeries> = self
            .weeks
            .iter()
            .map(|w| w[train_week + 1].clone())
            .collect();
        FeatureDataset::from_series(&train, &test, feature)
    }

    /// The train→test splits the paper evaluates (weeks 1→2 and 3→4 when
    /// five weeks exist; fewer with a smaller corpus).
    pub fn splits(&self) -> Vec<usize> {
        if self.config.n_weeks >= 4 {
            vec![0, 2]
        } else if self.config.n_weeks >= 2 {
            vec![0]
        } else {
            vec![]
        }
    }

    /// Per-user training 99th percentile for a feature (the summary the
    /// grouping policies and Figures 1–2 are built from).
    pub fn q99(&self, feature: FeatureKind, week: usize) -> Vec<f64> {
        hids_core::par_map(&self.weeks, |_, w| {
            tailstats::EmpiricalDist::from_counts(&w[week].feature(feature)).quantile(0.99)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_generates() {
        let c = Corpus::generate(CorpusConfig::small());
        assert_eq!(c.n_users(), 40);
        assert_eq!(c.weeks[0].len(), 2);
        assert_eq!(c.series(0, 0).len(), 672);
        assert_eq!(c.splits(), vec![0]);
    }

    #[test]
    fn corpus_matches_sequential_generation() {
        let c = Corpus::generate(CorpusConfig {
            n_users: 6,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        // Parallel generation must equal the sequential per-user streams.
        let u = &c.population.users[3];
        let expect = user_week_series_trended(
            u,
            c.population.config.seed,
            1,
            c.config.windowing(),
            c.population.config.weekly_trend,
        );
        assert_eq!(*c.series(3, 1), expect);
    }

    #[test]
    fn dataset_pairs_consecutive_weeks() {
        let c = Corpus::generate(CorpusConfig::small());
        let ds = c.dataset(FeatureKind::TcpConnections, 0);
        assert_eq!(ds.n_users(), 40);
        assert!(ds.max_observed() >= 1.0);
    }

    #[test]
    fn five_week_corpus_has_two_splits() {
        let c = Corpus::generate(CorpusConfig {
            n_users: 3,
            n_weeks: 5,
            ..CorpusConfig::small()
        });
        assert_eq!(c.splits(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "following test week")]
    fn dataset_needs_test_week() {
        let c = Corpus::generate(CorpusConfig {
            n_users: 2,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        let _ = c.dataset(FeatureKind::TcpConnections, 1);
    }
}
