//! megafleet — million-host streaming evaluation on bounded per-host
//! memory.
//!
//! The paper's population is 350 hosts because that is what fit in a
//! packet trace. This experiment asks what the same per-host methodology
//! costs at enterprise-fleet scale: every host is generated *streamed*
//! ([`synthgen::sample_user`] + [`synthgen::user_week_series`], one host
//! in memory at a time), its train/test weeks are folded into
//! [`tailstats::KllSketch`]es instead of exact sample vectors, and the
//! threshold fit + FP/FN/utility scoring run entirely against the
//! sketches through [`hids_core::ThresholdHeuristic::threshold_source`]
//! and [`hids_core::score_source`]. Per-host state is therefore
//! `O(log(n)/eps)` integers rather than `O(windows)` — the figure
//! [`MegafleetResult::peak_host_state_bytes`] reports.
//!
//! Determinism: hosts are split into [`MegafleetConfig::n_shards`]
//! *fixed contiguous id ranges* (never thread-count dependent), shards
//! run under [`hids_core::par_map_range`] (order-preserving), and
//! population-level tail statistics come from
//! [`tailstats::KllSketch::pool`], whose output is invariant to merge
//! order. The hosts CSV and the pooled sketch image are byte-identical
//! at any `--threads` setting; [`MegafleetResult::check`] verifies the
//! merge-order half of that claim internally by re-pooling the shard
//! sketches in reversed order.

use std::sync::atomic::{AtomicU64, Ordering};

use flowtab::FeatureKind;
use hids_core::{par_map_range, score_source, AttackSweep, ThresholdHeuristic};
use synthgen::{sample_user, user_week_series, PopulationConfig};
use tailstats::{KllSketch, QuantileSource};

use crate::report::{fnum, Table};

/// Scale and accuracy knobs for a megafleet run.
#[derive(Debug, Clone)]
pub struct MegafleetConfig {
    /// Fleet size (hosts). Host ids are `0..n_users`.
    pub n_users: u64,
    /// Master seed (same meaning as the corpus seed).
    pub seed: u64,
    /// Rank-error budget for every per-host sketch, in `(0, 1)`.
    pub sketch_eps: f64,
    /// Quantile for the per-host threshold fit (paper default 0.99).
    pub threshold_q: f64,
    /// FN weight of the utility `U = 1 − [w·FN + (1−w)·FP]`.
    pub w: f64,
    /// Feature under monitoring.
    pub feature: FeatureKind,
    /// Fixed shard count; hosts map to shards by contiguous id range, so
    /// the decomposition never depends on the worker-thread count.
    pub n_shards: usize,
    /// Log a progress line roughly every this many hosts (0 = silent).
    pub progress_every: u64,
    /// Keep every [`HostRow`] in memory (fine at smoke scale; at a
    /// million hosts the per-shard CSV text is kept instead).
    pub collect_rows: bool,
}

impl Default for MegafleetConfig {
    fn default() -> Self {
        Self {
            n_users: 1_000_000,
            seed: 0xC0FFEE,
            sketch_eps: 0.01,
            threshold_q: 0.99,
            w: 0.4,
            feature: FeatureKind::TcpConnections,
            n_shards: 256,
            progress_every: 100_000,
            collect_rows: false,
        }
    }
}

/// One host's fitted threshold and sketch-scored performance.
#[derive(Debug, Clone, Copy)]
pub struct HostRow {
    /// Host id.
    pub id: u32,
    /// Fitted threshold (q-th discrete percentile of the train sketch).
    pub threshold: f64,
    /// Training-week tail quantiles read off the sketch.
    pub q90: f64,
    /// 95th percentile.
    pub q95: f64,
    /// 99th percentile.
    pub q99: f64,
    /// Test-week false-positive rate.
    pub fp: f64,
    /// Mean FN rate over the attack sweep.
    pub fn_rate: f64,
    /// Utility at [`MegafleetConfig::w`].
    pub utility: f64,
    /// Benign test windows above the threshold.
    pub false_alarms: u64,
    /// Bytes of sketch state this host needed (train + test).
    pub state_bytes: u64,
}

/// What one shard hands back to the aggregator.
struct ShardOut {
    csv: String,
    rows: Vec<HostRow>,
    n_hosts: u64,
    peak_host_bytes: u64,
    total_bytes: u64,
    total_compactions: u64,
    max_err_ppm: u64,
    utility_sum: f64,
    fp_sum: f64,
    alarms: u64,
    pooled: Option<KllSketch>,
}

/// Aggregated outcome of a megafleet run.
#[derive(Debug)]
pub struct MegafleetResult {
    /// The configuration that produced this result.
    pub cfg: MegafleetConfig,
    /// Per-shard CSV text (concatenating in shard order yields the
    /// global hosts CSV in host-id order).
    pub shard_csvs: Vec<String>,
    /// Per-host rows when [`MegafleetConfig::collect_rows`] was set.
    pub rows: Vec<HostRow>,
    /// Hosts evaluated.
    pub n_hosts: u64,
    /// Largest train+test sketch footprint any single host reached.
    pub peak_host_state_bytes: u64,
    /// Sum of all per-host sketch footprints.
    pub total_sketch_bytes: u64,
    /// Compactions across every per-host sketch.
    pub total_compactions: u64,
    /// Worst per-host rank-error ledger, as parts-per-million of that
    /// host's stream weight (always ≤ `sketch_eps · 1e6` by
    /// construction).
    pub max_rank_error_ppm: u64,
    /// Fleet mean utility.
    pub mean_utility: f64,
    /// Fleet mean false-positive rate.
    pub mean_fp: f64,
    /// Total benign alarms the fleet would deliver to the console.
    pub total_false_alarms: u64,
    /// Pooled training sketch over the whole fleet (population tail).
    pub global: Option<KllSketch>,
    /// Whether re-pooling the shard sketches in reversed order produced
    /// a byte-identical image.
    pub merge_order_ok: bool,
}

/// Worst-case rank-error ledger of one sketch in ppm of its weight.
fn err_ppm(s: &KllSketch) -> u64 {
    if s.len() == 0 {
        0
    } else {
        (u128::from(s.rank_error_bound()) * 1_000_000 / u128::from(s.len())) as u64
    }
}

fn process_shard(
    cfg: &MegafleetConfig,
    lo: u64,
    hi: u64,
    done: &AtomicU64,
) -> ShardOut {
    let pcfg = PopulationConfig {
        n_users: cfg.n_users as usize,
        seed: cfg.seed,
        ..Default::default()
    };
    let windowing = flowtab::Windowing::FIFTEEN_MIN;
    let heuristic = ThresholdHeuristic::Percentile(cfg.threshold_q);
    let mut out = ShardOut {
        csv: String::new(),
        rows: Vec::new(),
        n_hosts: 0,
        peak_host_bytes: 0,
        total_bytes: 0,
        total_compactions: 0,
        max_err_ppm: 0,
        utility_sum: 0.0,
        fp_sum: 0.0,
        alarms: 0,
        pooled: None,
    };
    let mut shard_sketches: Vec<KllSketch> = Vec::new();
    for id in lo..hi {
        let profile = sample_user(&pcfg, id as u32);
        let mut train = KllSketch::new(cfg.sketch_eps);
        for c in user_week_series(&profile, cfg.seed, 0, windowing).feature(cfg.feature) {
            train.insert(c);
        }
        let mut test = KllSketch::new(cfg.sketch_eps);
        for c in user_week_series(&profile, cfg.seed, 1, windowing).feature(cfg.feature) {
            test.insert(c);
        }

        let state_bytes = train.state_bytes() + test.state_bytes();
        out.peak_host_bytes = out.peak_host_bytes.max(state_bytes);
        out.total_bytes += state_bytes;
        out.total_compactions += train.compactions() + test.compactions();
        out.max_err_ppm = out.max_err_ppm.max(err_ppm(&train)).max(err_ppm(&test));

        // A short, per-host attack sweep keeps scoring O(1) per host
        // while exercising the full sketch-backed FN path.
        let sweep = AttackSweep::new(train.max().max(1.0), 64);
        let train_src = QuantileSource::Sketch(train);
        let threshold = heuristic.threshold_source(&train_src);
        let (q90, q95, q99) = (
            train_src.quantile(0.90),
            train_src.quantile(0.95),
            train_src.quantile(0.99),
        );
        let test_src = QuantileSource::Sketch(test);
        let perf = score_source(&test_src, threshold, &sweep, cfg.w);

        let row = HostRow {
            id: id as u32,
            threshold,
            q90,
            q95,
            q99,
            fp: perf.fp,
            fn_rate: perf.fn_rate,
            utility: perf.utility,
            false_alarms: perf.false_alarms,
            state_bytes,
        };
        out.csv.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{}\n",
            row.id,
            row.threshold,
            row.q90,
            row.q95,
            row.q99,
            row.fp,
            row.fn_rate,
            row.utility,
            row.false_alarms,
            row.state_bytes,
        ));
        if cfg.collect_rows {
            out.rows.push(row);
        }
        out.utility_sum += perf.utility;
        out.fp_sum += perf.fp;
        out.alarms += perf.false_alarms;
        out.n_hosts += 1;
        if let QuantileSource::Sketch(s) = train_src {
            shard_sketches.push(s);
        }

        let total = done.fetch_add(1, Ordering::Relaxed) + 1;
        if cfg.progress_every > 0 && total % cfg.progress_every == 0 {
            eprintln!("megafleet: {total}/{} hosts evaluated", cfg.n_users);
        }
    }
    if !shard_sketches.is_empty() {
        let refs: Vec<&KllSketch> = shard_sketches.iter().collect();
        out.pooled = Some(KllSketch::pool(&refs));
    }
    out
}

/// Run the fleet. Deterministic in `(cfg)`: the hosts CSV, every
/// aggregate, and the pooled sketch image are byte-identical at any
/// worker-thread count.
pub fn run(cfg: &MegafleetConfig) -> MegafleetResult {
    let n_shards = cfg.n_shards.max(1);
    let chunk = cfg.n_users.div_ceil(n_shards as u64).max(1);
    let done = AtomicU64::new(0);
    let shards = par_map_range(n_shards, |s| {
        let lo = (s as u64 * chunk).min(cfg.n_users);
        let hi = ((s as u64 + 1) * chunk).min(cfg.n_users);
        process_shard(cfg, lo, hi, &done)
    });

    let mut result = MegafleetResult {
        cfg: cfg.clone(),
        shard_csvs: Vec::with_capacity(shards.len()),
        rows: Vec::new(),
        n_hosts: 0,
        peak_host_state_bytes: 0,
        total_sketch_bytes: 0,
        total_compactions: 0,
        max_rank_error_ppm: 0,
        mean_utility: 0.0,
        mean_fp: 0.0,
        total_false_alarms: 0,
        global: None,
        merge_order_ok: true,
    };
    let mut utility_sum = 0.0;
    let mut fp_sum = 0.0;
    let mut shard_sketches: Vec<KllSketch> = Vec::new();
    for shard in shards {
        result.n_hosts += shard.n_hosts;
        result.peak_host_state_bytes = result.peak_host_state_bytes.max(shard.peak_host_bytes);
        result.total_sketch_bytes += shard.total_bytes;
        result.total_compactions += shard.total_compactions;
        result.max_rank_error_ppm = result.max_rank_error_ppm.max(shard.max_err_ppm);
        result.total_false_alarms += shard.alarms;
        utility_sum += shard.utility_sum;
        fp_sum += shard.fp_sum;
        result.shard_csvs.push(shard.csv);
        result.rows.extend(shard.rows);
        if let Some(s) = shard.pooled {
            shard_sketches.push(s);
        }
    }
    if result.n_hosts > 0 {
        result.mean_utility = utility_sum / result.n_hosts as f64;
        result.mean_fp = fp_sum / result.n_hosts as f64;
    }
    if !shard_sketches.is_empty() {
        let forward: Vec<&KllSketch> = shard_sketches.iter().collect();
        let global = KllSketch::pool(&forward);
        // Merge-order invariance, verified on the real data: pooling the
        // shard sketches in the opposite order must give the same bytes.
        let reversed: Vec<&KllSketch> = shard_sketches.iter().rev().collect();
        result.merge_order_ok = KllSketch::pool(&reversed).to_bytes() == global.to_bytes();
        result.global = Some(global);
    }
    result
}

/// CSV header matching [`MegafleetResult::shard_csvs`] rows.
pub const HOSTS_CSV_HEADER: &str =
    "host,threshold,q90,q95,q99,fp,fn_rate,utility,false_alarms,state_bytes";

impl MegafleetResult {
    /// The full hosts CSV (header + every shard, host-id order).
    pub fn hosts_csv(&self) -> String {
        let mut s = String::from(HOSTS_CSV_HEADER);
        s.push('\n');
        for shard in &self.shard_csvs {
            s.push_str(shard);
        }
        s
    }

    /// FNV-1a hash of [`MegafleetResult::hosts_csv`] without
    /// materialising the concatenation — the determinism fingerprint the
    /// CI check compares across `--threads` settings.
    pub fn hosts_csv_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(HOSTS_CSV_HEADER.as_bytes());
        eat(b"\n");
        for shard in &self.shard_csvs {
            eat(shard.as_bytes());
        }
        h
    }

    /// Fleet-level summary table.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            "megafleet — sketch-backed fleet evaluation",
            &["metric", "value"],
        );
        t.row(vec!["hosts".into(), self.n_hosts.to_string()]);
        t.row(vec![
            "sketch eps".into(),
            format!("{:.4}", self.cfg.sketch_eps),
        ]);
        t.row(vec![
            "peak host state bytes".into(),
            self.peak_host_state_bytes.to_string(),
        ]);
        t.row(vec![
            "total sketch bytes".into(),
            self.total_sketch_bytes.to_string(),
        ]);
        t.row(vec![
            "total compactions".into(),
            self.total_compactions.to_string(),
        ]);
        t.row(vec![
            "max rank error (ppm)".into(),
            self.max_rank_error_ppm.to_string(),
        ]);
        t.row(vec!["mean utility".into(), fnum(self.mean_utility)]);
        t.row(vec!["mean fp".into(), fnum(self.mean_fp)]);
        t.row(vec![
            "total false alarms".into(),
            self.total_false_alarms.to_string(),
        ]);
        if let Some(g) = &self.global {
            t.row(vec!["fleet q50".into(), fnum(g.quantile(0.50))]);
            t.row(vec!["fleet q99".into(), fnum(g.quantile(0.99))]);
            t.row(vec![
                "fleet sketch bytes".into(),
                g.state_bytes().to_string(),
            ]);
        }
        t.row(vec![
            "merge-order check".into(),
            if self.merge_order_ok { "ok" } else { "FAILED" }.into(),
        ]);
        t.row(vec![
            "hosts csv fnv64".into(),
            format!("{:016x}", self.hosts_csv_hash()),
        ]);
        t
    }

    /// Export the sketch health gauges into a metrics registry.
    pub fn export_metrics(&self, reg: &mut hids_metrics::Registry) {
        reg.register_gauge(
            "tailstats_sketch_bytes_total",
            "total bytes of per-host sketch state across the fleet",
        );
        reg.register_gauge(
            "tailstats_sketch_peak_host_bytes",
            "largest train+test sketch footprint of any single host",
        );
        reg.register_gauge(
            "tailstats_sketch_compactions_total",
            "compactions performed across every per-host sketch",
        );
        reg.register_gauge(
            "tailstats_sketch_rank_error_ppm_max",
            "worst per-host rank-error ledger in ppm of stream weight",
        );
        reg.gauge_set(
            "tailstats_sketch_bytes_total",
            &[],
            self.total_sketch_bytes as i64,
        );
        reg.gauge_set(
            "tailstats_sketch_peak_host_bytes",
            &[],
            self.peak_host_state_bytes as i64,
        );
        reg.gauge_set(
            "tailstats_sketch_compactions_total",
            &[],
            self.total_compactions as i64,
        );
        reg.gauge_set(
            "tailstats_sketch_rank_error_ppm_max",
            &[],
            self.max_rank_error_ppm as i64,
        );
    }

    /// Internal invariants: every host evaluated, the rank-error ledger
    /// within the configured budget, pooling order-invariant.
    pub fn check(&self) -> Result<(), String> {
        if self.n_hosts != self.cfg.n_users {
            return Err(format!(
                "evaluated {} of {} hosts",
                self.n_hosts, self.cfg.n_users
            ));
        }
        let budget_ppm = (self.cfg.sketch_eps * 1e6) as u64;
        if self.max_rank_error_ppm > budget_ppm {
            return Err(format!(
                "rank error {} ppm exceeds budget {} ppm",
                self.max_rank_error_ppm, budget_ppm
            ));
        }
        if !self.merge_order_ok {
            return Err("pooled sketch is merge-order dependent".into());
        }
        if self.n_hosts > 0 && self.peak_host_state_bytes == 0 {
            return Err("no sketch state accounted".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(n: u64) -> MegafleetConfig {
        MegafleetConfig {
            n_users: n,
            progress_every: 0,
            collect_rows: true,
            ..Default::default()
        }
    }

    #[test]
    fn small_fleet_runs_and_passes_self_check() {
        let r = run(&small(40));
        r.check().expect("invariants");
        assert_eq!(r.rows.len(), 40);
        assert!(r.rows.iter().all(|h| h.threshold.is_finite()));
        assert!(r.rows.iter().all(|h| (0.0..=1.0).contains(&h.utility)));
        assert!(r.global.is_some());
        let csv = r.hosts_csv();
        assert_eq!(csv.lines().count(), 41, "header + one row per host");
        assert!(csv.starts_with(HOSTS_CSV_HEADER));
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let prev = hids_core::current_threads();
        hids_core::set_threads(1);
        let a = run(&small(60));
        hids_core::set_threads(7);
        let b = run(&small(60));
        hids_core::set_threads(prev);
        assert_eq!(a.hosts_csv(), b.hosts_csv());
        assert_eq!(a.hosts_csv_hash(), b.hosts_csv_hash());
        assert_eq!(
            a.global.unwrap().to_bytes(),
            b.global.unwrap().to_bytes(),
            "pooled fleet sketch must not depend on thread count"
        );
        assert_eq!(a.peak_host_state_bytes, b.peak_host_state_bytes);
    }

    #[test]
    fn shard_count_does_not_change_the_rows() {
        let a = run(&small(50));
        let b = run(&MegafleetConfig {
            n_shards: 7,
            ..small(50)
        });
        assert_eq!(a.hosts_csv(), b.hosts_csv());
    }

    #[test]
    fn metrics_gauges_are_exported() {
        let r = run(&small(10));
        let mut reg = hids_metrics::Registry::new();
        r.export_metrics(&mut reg);
        assert_eq!(
            reg.gauge_value("tailstats_sketch_bytes_total", &[]),
            r.total_sketch_bytes as i64
        );
        assert!(reg.gauge_value("tailstats_sketch_peak_host_bytes", &[]) > 0);
    }
}
