//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--users N] [--weeks N] [--seed S] [--threads N] [--out DIR]
//!       [--fault-seed S] [--fault-rate R] [--metrics-out PATH]
//!       [--delivery-attempts N] [--delivery-backoff T] [EXPERIMENT...]
//!
//! EXPERIMENT ∈ { fig1 fig2 tab2 fig3a fig3b tab3 fig4a fig4b fig5a fig5b
//!                drift ablation chaos daemon rollout all }   (default: all)
//! ```
//!
//! Prints each artifact as an aligned table and, when `--out` is given,
//! writes the underlying data as CSV for external plotting plus a
//! `BENCH_repro.json` with per-experiment wall-clock timings.
//!
//! `--threads N` (or the `REPRO_THREADS` env var) pins the worker-thread
//! count of the parallel evaluation engine; output is identical at any
//! setting.
//!
//! `--metrics-out PATH` writes the merged metrics registry (counters,
//! gauges, histograms and the structured event log from every experiment
//! that ran) as Prometheus exposition text. The snapshot is rendered
//! deterministically — wall-clock timings are quarantined to a volatile
//! section that is excluded — so the file is byte-identical at any
//! `--threads` setting.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use experiments::plot::{render as plot, ChartSpec, Series};
use experiments::{
    ablation, chaos, cluster, collab, controlplane, daemon, data::CorpusConfig, drift, fig1, fig2,
    fig3, fig4, fig5, megafleet, multifeat, ops, report, rollout, seeds, sketchablate, tab2, tab3,
    Corpus, Table,
};
use flowtab::FeatureKind;
use synthgen::StormConfig;

#[derive(Debug)]
struct Args {
    users: usize,
    weeks: usize,
    seed: u64,
    threads: Option<usize>,
    out: Option<PathBuf>,
    fault_seed: u64,
    fault_rate: f64,
    delivery_attempts: Option<u32>,
    delivery_backoff: Option<u64>,
    metrics_out: Option<PathBuf>,
    ingest_rate: u64,
    ingest_burst: u64,
    fault_severity: f64,
    sketch_eps: f64,
    nodes: u32,
    kill_seed: u64,
    heartbeat_interval: u64,
    heartbeat_timeout: u64,
    admin_port: Option<u16>,
    experiments: Vec<String>,
}

fn usage() -> String {
    "usage: repro [--users N] [--weeks N] [--seed S] [--threads N] [--out DIR] [--fault-seed S] [--fault-rate R] [--metrics-out PATH] [--delivery-attempts N] [--delivery-backoff T] [--ingest-rate N] [--ingest-burst N] [--fault-severity S] [--sketch-eps E] [--nodes N] [--kill-seed S] [--heartbeat-interval T] [--heartbeat-timeout T] [--admin-port P] [EXPERIMENT...]\n\
     experiments: validate fig1 fig2 tab2 fig3a fig3b tab3 fig4a fig4b fig5a fig5b multi collab seeds ops drift ablation chaos daemon ingest rollout controlplane all\n\
     controlplane replays a scripted operator timeline (drain/pin/undrain, canary rollout +\n\
     force-rollback, valid + rejected hot reload) through the crash-injection harness and demands\n\
     a byte-identical hosts CSV; with --admin-port P it also binds the admin endpoint on\n\
     127.0.0.1:P and drives reload/command/metrics requests over raw TCP;\n\
     ingest re-encodes the daemon stream as syslog/CEF + DNS datagrams through the hardened wire\n\
     front-end: severity 0 must reproduce the synthetic hosts CSV byte-for-byte, then a\n\
     --fault-severity sweep plus a seeded flood exercise shedding and degraded accounting\n\
     (--ingest-rate/--ingest-burst tune the per-source token bucket);\n\
     pipeline (run only when named; not part of `all`) renders synthetic weeks to real pcap and\n\
     drives them end to end — pcap → lossy decode → sanitize → features → threshold sweep — with\n\
     per-stage timings and identity checks, recording BENCH_pipeline.json under --out;\n\
     scale experiments (run only when named; not part of `all`): megafleet sketchablate cluster\n\
     megafleet streams --users hosts through bounded-memory rank sketches (--sketch-eps, default 0.01);\n\
     sketchablate quantifies sketch-vs-exact error on the corpus;\n\
     cluster shards fleetd across --nodes worker nodes (default 2) over a lossy wire, then\n\
     replays the run under a --kill-seed schedule of node and process kills and demands a\n\
     byte-identical merged hosts CSV (--heartbeat-interval/--heartbeat-timeout tune detection)"
        .to_string()
}

fn parse_args<I>(argv: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = Args {
        users: 350,
        weeks: 5,
        seed: 0xC0FFEE,
        threads: None,
        out: None,
        fault_seed: 0xFA17,
        fault_rate: 0.2,
        delivery_attempts: None,
        delivery_backoff: None,
        metrics_out: None,
        ingest_rate: 16,
        ingest_burst: 64,
        fault_severity: 0.2,
        sketch_eps: 0.01,
        nodes: 2,
        kill_seed: 0xC1A5,
        heartbeat_interval: 4,
        heartbeat_timeout: 16,
        admin_port: None,
        experiments: Vec::new(),
    };
    let mut admin_port_raw: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--users" => args.users = value("--users")?.parse().map_err(|e| format!("{e}"))?,
            "--weeks" => args.weeks = value("--weeks")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                args.threads = Some(value("--threads")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(value("--metrics-out")?))
            }
            "--fault-seed" => {
                args.fault_seed = value("--fault-seed")?.parse().map_err(|e| format!("{e}"))?
            }
            "--fault-rate" => {
                args.fault_rate = value("--fault-rate")?.parse().map_err(|e| format!("{e}"))?
            }
            "--delivery-attempts" => {
                args.delivery_attempts = Some(
                    value("--delivery-attempts")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--delivery-backoff" => {
                args.delivery_backoff = Some(
                    value("--delivery-backoff")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--ingest-rate" => {
                args.ingest_rate = value("--ingest-rate")?.parse().map_err(|e| format!("{e}"))?
            }
            "--ingest-burst" => {
                args.ingest_burst = value("--ingest-burst")?.parse().map_err(|e| format!("{e}"))?
            }
            "--fault-severity" => {
                args.fault_severity = value("--fault-severity")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--sketch-eps" => {
                args.sketch_eps = value("--sketch-eps")?.parse().map_err(|e| format!("{e}"))?
            }
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--kill-seed" => {
                args.kill_seed = value("--kill-seed")?.parse().map_err(|e| format!("{e}"))?
            }
            "--heartbeat-interval" => {
                args.heartbeat_interval = value("--heartbeat-interval")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--heartbeat-timeout" => {
                args.heartbeat_timeout = value("--heartbeat-timeout")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--admin-port" => admin_port_raw = Some(value("--admin-port")?),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            exp => args.experiments.push(exp.to_string()),
        }
    }
    if args.experiments.is_empty() {
        args.experiments.push("all".to_string());
    }
    if args.users == 0 {
        return Err("--users must be at least 1".into());
    }
    if args.users > u32::MAX as usize {
        return Err("--users overflows the 32-bit host id space".into());
    }
    if !(args.sketch_eps > 0.0 && args.sketch_eps < 1.0) {
        return Err("--sketch-eps must be in the open interval (0, 1)".into());
    }
    if args.weeks < 2 {
        return Err("--weeks must be at least 2 (train + test)".into());
    }
    if args.threads == Some(0) {
        return Err("--threads must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&args.fault_rate) {
        return Err("--fault-rate must be in [0, 1]".into());
    }
    if !(0.0..=1.0).contains(&args.fault_severity) {
        return Err("--fault-severity must be in [0, 1]".into());
    }
    if args.ingest_rate == 0 {
        return Err("--ingest-rate must be at least 1 datagram/tick".into());
    }
    if args.ingest_burst < args.ingest_rate {
        return Err("--ingest-burst must be at least --ingest-rate".into());
    }
    if args.delivery_attempts == Some(0) {
        return Err("--delivery-attempts must be at least 1".into());
    }
    if args.delivery_backoff == Some(0) {
        return Err("--delivery-backoff must be at least 1 tick".into());
    }
    if args.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    if args.nodes > 4096 {
        return Err("--nodes must be at most 4096".into());
    }
    if args.heartbeat_interval == 0 {
        return Err("--heartbeat-interval must be at least 1 tick".into());
    }
    if args.heartbeat_timeout <= args.heartbeat_interval {
        return Err("--heartbeat-timeout must exceed --heartbeat-interval".into());
    }
    // The control-plane knobs route through the daemon's own FleetConfig
    // machinery, so repro accepts exactly the values a live reload would.
    let mut fc = fleetd::FleetConfig::default();
    let routed: [(&str, &str, Option<String>); 5] = [
        (
            "--delivery-attempts",
            "delivery_attempts",
            args.delivery_attempts.map(|v| v.to_string()),
        ),
        (
            "--delivery-backoff",
            "delivery_backoff",
            args.delivery_backoff.map(|v| v.to_string()),
        ),
        ("--ingest-rate", "ingest_rate", Some(args.ingest_rate.to_string())),
        ("--ingest-burst", "ingest_burst", Some(args.ingest_burst.to_string())),
        ("--admin-port", "admin_port", admin_port_raw),
    ];
    for (flag, key, val) in routed {
        if let Some(v) = val {
            fc.set(key, &v).map_err(|e| format!("{flag}: {e}"))?;
        }
    }
    fc.validate()
        .map_err(|e| format!("--{}", e.replacen('_', "-", 1)))?;
    args.admin_port = fc.admin_port;
    Ok(args)
}

fn emit(table: &Table, out: &Option<PathBuf>, name: &str) {
    println!("{}", table.render());
    if let Some(dir) = out {
        if let Err(e) = report::write_csv(table, dir, name) {
            eprintln!("warning: failed to write {name}.csv: {e}");
        }
    }
}

/// Flush the merged metrics registry as deterministic Prometheus text.
fn write_metrics(path: &PathBuf, metrics: &mut hids_metrics::Registry) {
    // Harvest the sweep kernel's process-wide work counters last so the
    // snapshot covers every experiment that ran.
    hids_core::sweep::export_metrics(metrics);
    let text = metrics.render(hids_metrics::RenderOptions::deterministic());
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &text)
    };
    match write() {
        Ok(()) => eprintln!("metrics snapshot written to {}", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
}

/// `BENCH_megafleet.json`: wall time plus the bounded-memory evidence.
fn megafleet_json(args: &Args, r: &megafleet::MegafleetResult, secs: f64) -> String {
    format!(
        "{{\n  \"users\": {},\n  \"sketch_eps\": {},\n  \"threads\": {},\n  \"wall_secs\": {:.3},\n  \
         \"peak_host_state_bytes\": {},\n  \"total_sketch_bytes\": {},\n  \"total_compactions\": {},\n  \
         \"max_rank_error_ppm\": {},\n  \"mean_utility\": {:.6},\n  \"hosts_csv_fnv64\": \"{:016x}\"\n}}\n",
        args.users,
        args.sketch_eps,
        hids_core::current_threads(),
        secs,
        r.peak_host_state_bytes,
        r.total_sketch_bytes,
        r.total_compactions,
        r.max_rank_error_ppm,
        r.mean_utility,
        r.hosts_csv_hash(),
    )
}

/// `BENCH_ingest.json`: decode throughput plus the conservation evidence.
fn ingest_json(
    args: &Args,
    clean: &experiments::ingest::IngestRun,
    faulted: &experiments::ingest::IngestRun,
    events_per_sec: f64,
    sanitize_dirty_bytes_per_sec: f64,
    sanitize_dirty_ns_per_line: f64,
) -> String {
    format!(
        "{{\n  \"users\": {},\n  \"ingest_rate\": {},\n  \"ingest_burst\": {},\n  \
         \"fault_severity\": {},\n  \"threads\": {},\n  \"decode_events_per_sec_core\": {:.0},\n  \
         \"sanitize_dirty_bytes_per_sec_core\": {:.0},\n  \
         \"sanitize_dirty_ns_per_line\": {:.0},\n  \
         \"clean\": {{ \"received\": {}, \"accepted\": {}, \"shed\": {}, \"malformed\": {} }},\n  \
         \"faulted\": {{ \"received\": {}, \"accepted\": {}, \"shed\": {}, \"malformed\": {}, \
         \"flood_latched\": {} }}\n}}\n",
        args.users,
        args.ingest_rate,
        args.ingest_burst,
        args.fault_severity,
        hids_core::current_threads(),
        events_per_sec,
        sanitize_dirty_bytes_per_sec,
        sanitize_dirty_ns_per_line,
        clean.stats.received,
        clean.stats.accepted,
        clean.stats.shed,
        clean.stats.malformed,
        faulted.stats.received,
        faulted.stats.accepted,
        faulted.stats.shed,
        faulted.stats.malformed,
        faulted.stats.flood_latched,
    )
}

/// `BENCH_pipeline.json`: the first end-to-end pcap→decode→sanitize→
/// features→sweep figure, with per-stage wall-clock.
fn pipeline_json(args: &Args, r: &experiments::pipeline::PipelineReport) -> String {
    format!(
        "{{\n  \"seed\": {},\n  \"users\": {},\n  \"windows_per_week\": {},\n  \
         \"threads\": {},\n  \"frames\": {},\n  \"flows\": {},\n  \"pcap_bytes\": {},\n  \
         \"wire_datagrams\": {},\n  \"wire_bytes\": {},\n  \
         \"stage_secs\": {{ \"render\": {:.6}, \"capture\": {:.6}, \"features\": {:.6}, \
         \"wire\": {:.6}, \"sweep\": {:.6} }},\n  \"total_secs\": {:.6},\n  \
         \"end_to_end_events_per_sec\": {:.0}\n}}\n",
        args.seed,
        r.users,
        r.span,
        hids_core::current_threads(),
        r.frames_written,
        r.flows_rendered,
        r.bytes_written,
        r.wire_datagrams,
        r.wire_bytes,
        r.secs.render,
        r.secs.capture,
        r.secs.features,
        r.secs.wire,
        r.secs.sweep,
        r.secs.total(),
        r.events_per_sec,
    )
}

/// Drive the live admin endpoint over real TCP: bind on `port`, serve
/// from this thread while a client thread issues one request per probe,
/// and return the `(label, raw response)` pairs.
fn admin_probe(
    port: u16,
    daemon_cfg: fleetd::DaemonConfig,
) -> Result<Vec<(String, String)>, String> {
    use std::io::{Read as _, Write as _};
    let dir = daemon::unique_run_dir("ctrl-admin");
    let (mut d, _) = fleetd::Daemon::open(&dir, daemon_cfg).map_err(|e| e.to_string())?;
    let mut kill = fleetd::KillSwitch::none();
    let server = fleetd::AdminServer::bind(port, fleetd::AdminConfig::default())
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let actual = server.port();
    let post = |path: &str, body: &str| {
        format!(
            "POST {path} HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    let requests: Vec<(String, String)> = vec![
        (
            "reload-valid".into(),
            post("/reload", "snapshot_every = 257\n"),
        ),
        ("reload-invalid".into(), post("/reload", "n_shards = 8\n")),
        (
            "pin-threshold".into(),
            post("/command", "pin-threshold 0 42"),
        ),
        ("state".into(), "GET /state HTTP/1.0\r\n\r\n".into()),
        ("metrics".into(), "GET /metrics HTTP/1.0\r\n\r\n".into()),
    ];
    let n = requests.len();
    let client = std::thread::spawn(move || -> Result<Vec<(String, String)>, String> {
        let mut out = Vec::new();
        for (label, raw) in requests {
            let mut s = std::net::TcpStream::connect(("127.0.0.1", actual))
                .map_err(|e| format!("{label}: connect: {e}"))?;
            s.write_all(raw.as_bytes())
                .map_err(|e| format!("{label}: write: {e}"))?;
            let mut resp = String::new();
            s.read_to_string(&mut resp)
                .map_err(|e| format!("{label}: read: {e}"))?;
            out.push((label, resp));
        }
        Ok(out)
    });
    let mut ctl = fleetd::DaemonControl {
        daemon: &mut d,
        kill: &mut kill,
    };
    let mut serve_err = None;
    for _ in 0..n {
        if let Err(e) = server.serve_one(&mut ctl) {
            serve_err = Some(e.to_string());
            break;
        }
    }
    let out = client
        .join()
        .map_err(|_| "admin client thread panicked".to_string())?;
    let _ = std::fs::remove_dir_all(&dir);
    match serve_err {
        Some(e) => Err(format!("serve: {e}")),
        None => out,
    }
}

/// Serialise the timing ledger as JSON by hand (no serializer dependency).
fn timings_json(args: &Args, timings: &[(String, f64)], total_secs: f64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"users\": {},\n  \"weeks\": {},\n  \"seed\": {},\n  \"threads\": {},\n",
        args.users,
        args.weeks,
        args.seed,
        hids_core::current_threads()
    ));
    s.push_str("  \"timings_secs\": {\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        s.push_str(&format!("    \"{name}\": {secs:.3}{comma}\n"));
    }
    s.push_str("  },\n");
    s.push_str(&format!("  \"total_secs\": {total_secs:.3}\n}}\n"));
    s
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if let Some(n) = args.threads {
        hids_core::set_threads(n);
    }

    let wants = |name: &str| {
        args.experiments
            .iter()
            .any(|e| e == name || e == "all")
    };
    // Scale experiments run only when named explicitly — `all` at a
    // million hosts would be a footgun.
    let named = |name: &str| args.experiments.iter().any(|e| e == name);

    // Merged observability snapshot across every experiment that runs.
    // Each contributor is deterministic (integer-only accumulation,
    // stable key order), so the rendered text is a pure function of the
    // work performed — byte-identical at any --threads setting.
    let mut metrics = hids_metrics::Registry::new();
    let mut pre_timings: Vec<(String, f64)> = Vec::new();

    if named("megafleet") {
        // Streams every host (no corpus materialisation), so it runs
        // before — and can entirely replace — corpus generation.
        let mcfg = megafleet::MegafleetConfig {
            n_users: args.users as u64,
            seed: args.seed,
            sketch_eps: args.sketch_eps,
            ..Default::default()
        };
        eprintln!(
            "megafleet: streaming {} hosts at eps {} ({} threads)...",
            mcfg.n_users,
            mcfg.sketch_eps,
            hids_core::current_threads()
        );
        let t = Instant::now();
        let r = megafleet::run(&mcfg);
        let secs = t.elapsed().as_secs_f64();
        eprintln!("[timing] megafleet: {secs:.2}s");
        println!("{}", r.summary_table().render());
        if let Err(e) = r.check() {
            eprintln!("warning: megafleet invariant violated: {e}");
        }
        r.export_metrics(&mut metrics);
        pre_timings.push(("megafleet".to_string(), secs));
        if let Some(dir) = &args.out {
            let write = || -> std::io::Result<()> {
                use std::io::Write as _;
                std::fs::create_dir_all(dir)?;
                std::fs::write(
                    dir.join("BENCH_megafleet.json"),
                    megafleet_json(&args, &r, secs),
                )?;
                let mut f = std::io::BufWriter::new(std::fs::File::create(
                    dir.join("megafleet_hosts.csv"),
                )?);
                writeln!(f, "{}", megafleet::HOSTS_CSV_HEADER)?;
                for shard in &r.shard_csvs {
                    f.write_all(shard.as_bytes())?;
                }
                Ok(())
            };
            if let Err(e) = write() {
                eprintln!("warning: failed to write megafleet outputs: {e}");
            }
        }
        if args.experiments.iter().all(|e| e == "megafleet") {
            // Sole experiment: skip corpus generation entirely.
            if let Some(path) = &args.metrics_out {
                write_metrics(path, &mut metrics);
            }
            eprintln!("done in {secs:.1}s");
            return ExitCode::SUCCESS;
        }
    }

    if named("pipeline") {
        // Builds its own small population (independent of --users), so it
        // runs before — and can entirely replace — corpus generation.
        let scenario = experiments::pipeline::PipelineScenario {
            seed: args.seed,
            ..experiments::pipeline::PipelineScenario::default()
        };
        eprintln!(
            "pipeline: {} users x {} windows x 2 weeks through pcap→decode→sanitize→features→sweep...",
            scenario.n_users, scenario.n_windows
        );
        let t = Instant::now();
        match experiments::pipeline::run(&scenario) {
            Err(e) => {
                eprintln!("pipeline experiment failed: {e}");
                return ExitCode::FAILURE;
            }
            Ok(r) => {
                let secs = t.elapsed().as_secs_f64();
                eprintln!("[timing] pipeline: {secs:.2}s");
                println!("{}", experiments::pipeline::table(&r).render());
                match r.check() {
                    Ok(()) => {
                        eprintln!(
                            "pipeline capture check: clean pcap loss-free ({} records)",
                            r.records_ok
                        );
                        eprintln!(
                            "pipeline feature check: packet-path features identical to generated series ({} windows)",
                            r.feature_windows
                        );
                        eprintln!(
                            "pipeline wire check: {} hostile envelopes sanitized, decoded batches identical",
                            r.wire_datagrams
                        );
                        eprintln!(
                            "pipeline throughput: {:.0} window-events/sec end-to-end",
                            r.events_per_sec
                        );
                    }
                    Err(e) => eprintln!("warning: pipeline invariant FAILED: {e}"),
                }
                pre_timings.push(("pipeline".to_string(), secs));
                if let Some(dir) = &args.out {
                    let json = pipeline_json(&args, &r);
                    if let Err(e) = std::fs::create_dir_all(dir)
                        .and_then(|()| std::fs::write(dir.join("BENCH_pipeline.json"), json))
                    {
                        eprintln!("warning: failed to write BENCH_pipeline.json: {e}");
                    }
                }
                if args.experiments.iter().all(|e| e == "pipeline") {
                    // Sole experiment: skip corpus generation entirely.
                    if let Some(path) = &args.metrics_out {
                        write_metrics(path, &mut metrics);
                    }
                    eprintln!("done in {secs:.1}s");
                    return ExitCode::SUCCESS;
                }
            }
        }
    }

    let cfg = CorpusConfig {
        n_users: args.users,
        n_weeks: args.weeks,
        seed: args.seed,
        ..Default::default()
    };
    eprintln!(
        "generating corpus: {} users x {} weeks (seed {:#x}, {} threads)...",
        cfg.n_users,
        cfg.n_weeks,
        cfg.seed,
        hids_core::current_threads()
    );
    let t0 = Instant::now();
    let corpus = Corpus::generate(cfg.clone());
    let corpus_secs = t0.elapsed().as_secs_f64();
    eprintln!("corpus ready in {corpus_secs:.1}s");

    let mut timings: Vec<(String, f64)> = pre_timings;
    timings.push(("corpus".to_string(), corpus_secs));

    // Run one experiment under the wall-clock ledger.
    macro_rules! experiment {
        ($name:literal, $body:block) => {
            experiment!($name, wants($name), $body)
        };
        ($name:literal, $cond:expr, $body:block) => {
            if $cond {
                let t = Instant::now();
                $body
                let secs = t.elapsed().as_secs_f64();
                eprintln!("[timing] {}: {:.2}s", $name, secs);
                timings.push(($name.to_string(), secs));
            }
        };
    }

    let tcp = FeatureKind::TcpConnections;

    experiment!("validate", {
        let report = synthgen::validate(&corpus.population, corpus.config.windowing());
        println!("{}", report.render());
        if !report.passed() {
            eprintln!("warning: population failed calibration checks");
        }
    });

    experiment!("fig1", {
        let r = fig1::run(&corpus, 0);
        emit(&fig1::summary_table(&r), &args.out, "fig1_summary");
        emit(&fig1::concentration_table(&r), &args.out, "fig1_concentration");
        if let Some(curve) = r.curves.iter().find(|c| c.feature == tcp) {
            let series = [
                Series {
                    label: "99th percentile",
                    points: curve
                        .points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as f64, p.1.max(1.0)))
                        .collect(),
                },
                Series {
                    label: "99.9th percentile",
                    points: curve
                        .points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as f64, p.2.max(1.0)))
                        .collect(),
                },
            ];
            println!(
                "{}",
                plot(
                    &ChartSpec {
                        title: "Fig. 1(a) — # TCP connections: per-user thresholds (sorted)",
                        x_label: "user rank",
                        y_label: "threshold",
                        log_y: true,
                        ..Default::default()
                    },
                    &series,
                )
            );
        }
        if args.out.is_some() {
            for c in &r.curves {
                let name = format!(
                    "fig1_curve_{}",
                    c.feature.name().replace('-', "_")
                );
                emit(&fig1::curve_table(c), &args.out, &name);
            }
        }
    });

    experiment!("fig2", {
        let r = fig2::run(&corpus, 0);
        emit(&fig2::summary_table(&r), &args.out, "fig2_summary");
        if args.out.is_some() {
            emit(&fig2::scatter_table(&r), &args.out, "fig2_scatter");
        }
        let series = [Series {
            label: "one point per user",
            points: r
                .points
                .iter()
                .map(|(_, x, y)| (x.max(1.0), y.max(1.0)))
                .collect(),
        }];
        println!(
            "{}",
            plot(
                &ChartSpec {
                    title: "Fig. 2 — per-user 99th percentiles (log-log): TCP (x) vs UDP (y)",
                    x_label: "tcp q99 (log)",
                    y_label: "udp q99",
                    log_x: true,
                    log_y: true,
                    ..Default::default()
                },
                &series,
            )
        );
    });

    experiment!("tab2", {
        let r = tab2::run(&corpus, 0, 10);
        emit(&tab2::table(&r), &args.out, "tab2");
    });

    experiment!("fig3a", {
        let r = fig3::run_a(&corpus, tcp, 0.4);
        emit(&fig3::table_a(&r), &args.out, "fig3a");
    });

    experiment!("fig3b", {
        let r = fig3::run_b(&corpus, tcp, &fig3::paper_weights());
        emit(&fig3::table_b(&r), &args.out, "fig3b");
        let labels = ["Homogeneous", "Full-Diversity", "8-Partial"];
        let series: Vec<Series> = labels
            .iter()
            .enumerate()
            .map(|(p, label)| Series {
                label,
                points: r
                    .weights
                    .iter()
                    .zip(&r.means[p])
                    .map(|(&w, &u)| (w, u))
                    .collect(),
            })
            .collect();
        println!(
            "{}",
            plot(
                &ChartSpec {
                    title: "Fig. 3(b) — mean utility vs w",
                    x_label: "w",
                    y_label: "utility",
                    ..Default::default()
                },
                &series,
            )
        );
    });

    experiment!("tab3", {
        let r = tab3::run(&corpus, tcp);
        emit(&tab3::table(&r), &args.out, "tab3");
    });

    experiment!("fig4a", {
        let r = fig4::run_a(&corpus, tcp, 0, 64);
        emit(&fig4::table_a(&r), &args.out, "fig4a");
        let labels = ["Homogeneous", "Full-Diversity", "8-Partial"];
        let series: Vec<Series> = labels
            .iter()
            .enumerate()
            .map(|(p, label)| Series {
                label,
                points: r.sizes.iter().zip(&r.curves[p]).map(|(&b, &f)| (b, f)).collect(),
            })
            .collect();
        println!(
            "{}",
            plot(
                &ChartSpec {
                    title: "Fig. 4(a) — fraction of users alarming vs attack size",
                    x_label: "attack size (log)",
                    y_label: "fraction",
                    log_x: true,
                    ..Default::default()
                },
                &series,
            )
        );
    });

    experiment!("fig4b", {
        let r = fig4::run_b(&corpus, tcp, 0, 0.9);
        emit(&fig4::table_b(&r), &args.out, "fig4b");
        emit(&fig4::run_c(&corpus, tcp, 0), &args.out, "fig4c_omniscient");
    });

    experiment!("fig5", wants("fig5a") || wants("fig5b"), {
        let r = fig5::run(&corpus, 0, &StormConfig::default());
        let wpw = corpus.config.windowing().windows_per_week() as f64;
        emit(&fig5::summary_table(&r, wpw), &args.out, "fig5_summary");
        if args.out.is_some() {
            emit(&fig5::scatter_table(&r), &args.out, "fig5_scatter");
        }
        let fp_floor = 1.0 / wpw;
        let series: Vec<Series> = r
            .scatters
            .iter()
            .map(|s| Series {
                label: s.policy,
                points: s
                    .points
                    .iter()
                    .map(|p| (p.fp.max(fp_floor), p.detection))
                    .collect(),
            })
            .collect();
        println!(
            "{}",
            plot(
                &ChartSpec {
                    title: "Fig. 5 — Storm replay: FP (log) vs detection, one point per user",
                    x_label: "false positive rate (log)",
                    y_label: "detection",
                    log_x: true,
                    ..Default::default()
                },
                &series,
            )
        );
    });

    experiment!("multi", {
        let r = multifeat::run(&corpus, 0, &StormConfig::default());
        emit(&multifeat::table(&r), &args.out, "multifeat");
    });

    experiment!("collab", {
        let r = collab::run(&corpus, 0, &StormConfig::default());
        emit(&collab::table(&r), &args.out, "collab");
    });

    experiment!("seeds", {
        // Five alternate populations at reduced scale: the qualitative
        // conclusions must not depend on the master seed.
        let r = seeds::run(&[1, 2, 3, 0xBEEF, 0xC0FFEE], args.users.min(120));
        emit(&seeds::table(&r), &args.out, "seeds");
        if !r.all_conclusions_hold() {
            eprintln!("warning: a seed failed to reproduce a headline conclusion");
        }
    });

    experiment!("ops", {
        emit(
            &ops::triage_table(&corpus, tcp, &itconsole::TriageConfig::default()),
            &args.out,
            "ops_triage",
        );
        if corpus.config.n_weeks >= 3 {
            emit(&ops::maintenance_table(&corpus, tcp), &args.out, "ops_maintenance");
        }
    });

    experiment!("drift", {
        let r = drift::run(&corpus, tcp);
        emit(&drift::table(&r), &args.out, "drift");
    });

    experiment!("chaos", {
        let mut ccfg = chaos::ChaosConfig::new(args.fault_seed, args.fault_rate);
        if let Some(n) = args.delivery_attempts {
            ccfg.queue.max_attempts = n;
        }
        if let Some(t) = args.delivery_backoff {
            ccfg.queue.backoff_base = t;
        }
        let r = chaos::run(&corpus, tcp, &ccfg);
        emit(&chaos::table(&r), &args.out, "chaos");
        if let Err(e) = r.check() {
            eprintln!("warning: chaos invariant violated: {e}");
        }
        r.export_metrics(&mut metrics);
    });

    experiment!("daemon", {
        let mut scenario = daemon::DaemonScenario {
            feature: tcp,
            ..daemon::DaemonScenario::default()
        };
        if let Some(n) = args.delivery_attempts {
            scenario.delivery.max_attempts = n;
        }
        if let Some(t) = args.delivery_backoff {
            scenario.delivery.backoff_base = t;
        }
        if args.fault_rate > 0.0 {
            // One poisoned host per run keeps the quarantine path hot
            // without drowning the coverage picture.
            scenario.poison_hosts = vec![(args.fault_seed % args.users as u64) as u32];
            eprintln!(
                "note: host {} carries a poison batch; panic traces below are injected \
                 faults survived by the shard supervisor",
                scenario.poison_hosts[0]
            );
        }
        let batches = daemon::build_batches(&corpus, &scenario);

        let ref_dir = daemon::unique_run_dir("repro-ref");
        let reference = match daemon::run(&ref_dir, &scenario, &batches, &[]) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("daemon experiment failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = std::fs::remove_dir_all(&ref_dir);
        emit(&daemon::hosts_table(&reference), &args.out, "daemon_hosts");
        emit(&daemon::ops_table(&reference), &args.out, "daemon_ops");
        metrics.merge(&reference.metrics);
        if let Err(e) = reference.check() {
            eprintln!("warning: daemon invariant violated: {e}");
        }

        if args.fault_rate > 0.0 {
            // Crash-recovery self-check: replay the same stream through a
            // daemon killed at seeded batch/byte boundaries (including a
            // torn final WAL record) and demand a byte-identical hosts CSV.
            let kills = faultsim::kill_points(
                args.fault_seed,
                6,
                reference.total_applied,
                reference.total_wal_bytes,
            );
            let kill_dir = daemon::unique_run_dir("repro-kill");
            match daemon::run(&kill_dir, &scenario, &batches, &kills) {
                Ok(killed) => {
                    if daemon::hosts_csv(&killed) == daemon::hosts_csv(&reference) {
                        eprintln!(
                            "daemon kill-recovery check: {} kills over {} lifetimes, hosts CSV identical",
                            killed.recovery.kills, killed.recovery.lifetimes
                        );
                    } else {
                        eprintln!("warning: daemon kill-recovery check FAILED: hosts CSV diverged");
                    }
                }
                Err(e) => eprintln!("warning: daemon kill-recovery run failed: {e}"),
            }
            let _ = std::fs::remove_dir_all(&kill_dir);
        }
    });

    experiment!("ingest", {
        let base = experiments::ingest::IngestScenario {
            seed: args.fault_seed,
            rate_per_tick: args.ingest_rate,
            burst: args.ingest_burst,
            daemon: daemon::DaemonScenario {
                feature: tcp,
                ..daemon::DaemonScenario::default()
            },
            ..experiments::ingest::IngestScenario::default()
        };

        // Identity leg: a clean wire must reproduce the synthetic-batch
        // hosts CSV byte-for-byte — the wire format adds nothing.
        let clean_dir = daemon::unique_run_dir("ingest-clean");
        let clean = match experiments::ingest::run(&clean_dir, &corpus, &base) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ingest experiment failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = std::fs::remove_dir_all(&clean_dir);
        let batches = daemon::build_batches(&corpus, &base.daemon);
        let ref_dir = daemon::unique_run_dir("ingest-ref");
        match daemon::run(&ref_dir, &base.daemon, &batches, &[]) {
            Ok(reference) => {
                if clean.hosts_csv() == daemon::hosts_csv(&reference) {
                    eprintln!("ingest identity check: severity-0 hosts CSV identical to synthetic path");
                } else {
                    eprintln!("warning: ingest identity check FAILED: hosts CSV diverged");
                }
            }
            Err(e) => eprintln!("warning: ingest reference run failed: {e}"),
        }
        let _ = std::fs::remove_dir_all(&ref_dir);

        // Degradation leg: a faulted wire plus one flooding agent. The
        // flood drains its own source's bucket, so that host's test week
        // is shed — it must surface through degraded accounting, not
        // vanish.
        let flooded_host = (args.fault_seed % args.users as u64) as u32;
        let hostile = experiments::ingest::IngestScenario {
            severity: args.fault_severity,
            flood_hosts: vec![flooded_host],
            ..base.clone()
        };
        let hostile_dir = daemon::unique_run_dir("ingest-hostile");
        let faulted = match experiments::ingest::run(&hostile_dir, &corpus, &hostile) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ingest experiment failed (severity {}): {e}", args.fault_severity);
                return ExitCode::FAILURE;
            }
        };
        let _ = std::fs::remove_dir_all(&hostile_dir);
        emit(
            &experiments::ingest::sweep_table(&[
                (0.0, &clean),
                (args.fault_severity, &faulted),
            ]),
            &args.out,
            "ingest_sweep",
        );
        metrics.merge(&faulted.run.metrics);
        for (label, r) in [("clean", &clean), ("hostile", &faulted)] {
            if let Err(e) = r.check() {
                eprintln!("warning: ingest invariant violated ({label}): {e}");
            }
        }
        use hids_core::degraded::HostStatus;
        match faulted.host_status(flooded_host) {
            Some(HostStatus::Evaluated) => {
                eprintln!("warning: flooded host {flooded_host} was fully evaluated — flood had no effect")
            }
            Some(s) => eprintln!(
                "ingest flood check: host {flooded_host} degraded to {s:?} with {} datagrams shed",
                faulted.stats.shed
            ),
            None => eprintln!("ingest flood check: host {flooded_host} fully dark (no state)"),
        }

        // Throughput: events/sec for one core through the hardened
        // parser, recorded as a tracked benchmark artifact.
        let events_per_sec = experiments::ingest::measure_decode_throughput(200_000);
        eprintln!("ingest decode throughput: {events_per_sec:.0} events/sec/core");
        let (sanitize_bps, sanitize_ns) =
            experiments::ingest::measure_sanitize_dirty_throughput(200_000);
        eprintln!(
            "ingest sanitize dirty-path throughput: {sanitize_bps:.0} bytes/sec/core \
             ({sanitize_ns:.0} ns/line)"
        );
        if let Some(dir) = &args.out {
            let json =
                ingest_json(&args, &clean, &faulted, events_per_sec, sanitize_bps, sanitize_ns);
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join("BENCH_ingest.json"), json))
            {
                eprintln!("warning: failed to write BENCH_ingest.json: {e}");
            }
        }
    });

    experiment!("rollout", {
        // Synthetic drift streams (not the corpus): sized so both
        // narratives — benign promotion and poisoned rollback — are
        // scripted outcomes, deterministic at any --threads setting.
        let benign = rollout::RolloutScenario {
            seed: args.fault_seed,
            ..rollout::RolloutScenario::default()
        };
        let benign_input = rollout::build_input(&benign);
        let ben_dir = daemon::unique_run_dir("rollout-benign");
        let promoted = match rollout::run(&ben_dir, &benign, &benign_input, &[]) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("rollout experiment failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = std::fs::remove_dir_all(&ben_dir);
        println!("benign drift: refit, canary, promote");
        print!("{}", itconsole::render_history(&promoted.epoch_summaries()));
        itconsole::export_history_metrics(&promoted.epoch_summaries(), &mut metrics);
        emit(&rollout::hosts_table(&promoted), &args.out, "rollout_benign_hosts");
        emit(&rollout::epochs_table(&promoted), &args.out, "rollout_benign_epochs");
        emit(&rollout::ops_table(&promoted), &args.out, "rollout_benign_ops");
        if let Err(e) = promoted.check(&benign) {
            eprintln!("warning: benign rollout invariant violated: {e}");
        }

        let poisoned = rollout::RolloutScenario {
            poison: true,
            ..benign.clone()
        };
        let poisoned_input = rollout::build_input(&poisoned);
        let poi_dir = daemon::unique_run_dir("rollout-poisoned");
        let rolled_back = match rollout::run(&poi_dir, &poisoned, &poisoned_input, &[]) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("rollout experiment failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = std::fs::remove_dir_all(&poi_dir);
        println!("poisoned drift: guard, gate failure, rollback");
        print!("{}", itconsole::render_history(&rolled_back.epoch_summaries()));
        itconsole::export_history_metrics(&rolled_back.epoch_summaries(), &mut metrics);
        emit(&rollout::hosts_table(&rolled_back), &args.out, "rollout_poisoned_hosts");
        emit(&rollout::epochs_table(&rolled_back), &args.out, "rollout_poisoned_epochs");
        emit(&rollout::ops_table(&rolled_back), &args.out, "rollout_poisoned_ops");
        if let Err(e) = rolled_back.check(&poisoned) {
            eprintln!("warning: poisoned rollout invariant violated: {e}");
        }

        // Rollback-identity self-check: the rolled-back fleet must be
        // byte-identical to one that never attempted a rollout.
        let untouched_scenario = rollout::RolloutScenario {
            attempt_rollout: false,
            ..poisoned.clone()
        };
        let ref_dir = daemon::unique_run_dir("rollout-untouched");
        match rollout::run(&ref_dir, &untouched_scenario, &poisoned_input, &[]) {
            Ok(untouched) => {
                if rollout::hosts_csv(&rolled_back) == rollout::hosts_csv(&untouched) {
                    eprintln!("rollout rollback-identity check: hosts CSV identical");
                } else {
                    eprintln!("warning: rollout rollback-identity check FAILED");
                }
            }
            Err(e) => eprintln!("warning: rollout reference run failed: {e}"),
        }
        let _ = std::fs::remove_dir_all(&ref_dir);

        if args.fault_rate > 0.0 {
            // Crash-recovery self-check across batch, WAL-byte, and
            // epoch-boundary kills.
            let kills = faultsim::rollout_kill_points(
                args.fault_seed,
                6,
                promoted.total_applied,
                promoted.total_wal_bytes,
                promoted.total_rollout_events as u32,
            );
            let kill_dir = daemon::unique_run_dir("rollout-kill");
            match rollout::run(&kill_dir, &benign, &benign_input, &kills) {
                Ok(killed) => {
                    if rollout::hosts_csv(&killed) == rollout::hosts_csv(&promoted) {
                        eprintln!(
                            "rollout kill-recovery check: {} kills over {} lifetimes, hosts CSV identical",
                            killed.recovery.kills, killed.recovery.lifetimes
                        );
                    } else {
                        eprintln!("warning: rollout kill-recovery check FAILED: hosts CSV diverged");
                    }
                }
                Err(e) => eprintln!("warning: rollout kill-recovery run failed: {e}"),
            }
            let _ = std::fs::remove_dir_all(&kill_dir);
        }
    });

    experiment!("controlplane", {
        let mut scenario = controlplane::ControlScenario {
            feature: tcp,
            ..controlplane::ControlScenario::default()
        };
        if let Some(n) = args.delivery_attempts {
            scenario.delivery.max_attempts = n;
        }
        if let Some(t) = args.delivery_backoff {
            scenario.delivery.backoff_base = t;
        }
        if args.users == 1 {
            // A one-host fleet: the script's drain/pin target must exist.
            scenario.drain_shard = 0;
            scenario.pin_host = 0;
        }
        let batches = daemon::build_batches_for(&corpus, tcp, scenario.batch_windows, &[]);

        let ref_dir = daemon::unique_run_dir("ctrl-ref");
        let reference = match controlplane::run(&ref_dir, &scenario, &batches, &[]) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("controlplane experiment failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = std::fs::remove_dir_all(&ref_dir);
        emit(&controlplane::hosts_table(&reference), &args.out, "controlplane_hosts");
        emit(
            &controlplane::evidence_table(&reference),
            &args.out,
            "controlplane_evidence",
        );
        metrics.merge(&reference.metrics);
        match reference.check(&scenario) {
            Ok(()) => eprintln!(
                "controlplane script check: drain refused admission, operator rollback recorded, \
                 reload generation {}, invalid reload rejected with old config live",
                reference.evidence.generation_after_reload
            ),
            Err(e) => eprintln!("warning: controlplane invariant violated: {e}"),
        }

        // Determinism: a second uninterrupted run of the same script must
        // reproduce the hosts CSV byte-for-byte.
        let dup_dir = daemon::unique_run_dir("ctrl-dup");
        match controlplane::run(&dup_dir, &scenario, &batches, &[]) {
            Ok(dup) => {
                if controlplane::hosts_csv(&dup) == controlplane::hosts_csv(&reference) {
                    eprintln!("controlplane determinism check: hosts CSV identical");
                } else {
                    eprintln!("warning: controlplane determinism check FAILED: hosts CSV diverged");
                }
            }
            Err(e) => eprintln!("warning: controlplane determinism run failed: {e}"),
        }
        let _ = std::fs::remove_dir_all(&dup_dir);

        if args.fault_rate > 0.0 {
            // Crash-recovery self-check: kill at seeded batch boundaries,
            // WAL byte offsets (including torn tails over command
            // records), and post-command ack windows, and demand a
            // byte-identical hosts CSV.
            let kills = faultsim::command_kill_points(
                args.fault_seed,
                10,
                reference.total_applied,
                reference.total_wal_bytes,
                reference.total_commands as u32,
            );
            let kill_dir = daemon::unique_run_dir("ctrl-kill");
            match controlplane::run(&kill_dir, &scenario, &batches, &kills) {
                Ok(killed) => {
                    if let Err(e) = killed.check(&scenario) {
                        eprintln!("warning: controlplane invariant violated under kills: {e}");
                    }
                    if controlplane::hosts_csv(&killed) == controlplane::hosts_csv(&reference) {
                        eprintln!(
                            "controlplane kill-recovery check: {} kills over {} lifetimes across \
                             {} scheduled points, hosts CSV identical",
                            killed.recovery.kills,
                            killed.recovery.lifetimes,
                            kills.len()
                        );
                    } else {
                        eprintln!(
                            "warning: controlplane kill-recovery check FAILED: hosts CSV diverged"
                        );
                    }
                }
                Err(e) => eprintln!("warning: controlplane kill-recovery run failed: {e}"),
            }
            let _ = std::fs::remove_dir_all(&kill_dir);
        }

        if let Some(port) = args.admin_port {
            // Live endpoint leg: serve the admin plane on a real socket
            // and drive reload / rejected reload / command / scrape
            // requests through it.
            match admin_probe(port, scenario.daemon) {
                Ok(responses) => {
                    let get = |label: &str| {
                        responses
                            .iter()
                            .find(|(l, _)| l == label)
                            .map(|(_, r)| r.as_str())
                            .unwrap_or("")
                    };
                    let reload_ok = get("reload-valid").starts_with("HTTP/1.0 200")
                        && get("reload-valid").contains("\"generation\":2");
                    let reject_ok = get("reload-invalid").starts_with("HTTP/1.0 422")
                        && get("reload-invalid").contains("restart");
                    let pin_ok = get("pin-threshold").starts_with("HTTP/1.0 200");
                    let state_ok = get("state").contains("\"config_generation\":2");
                    for line in get("metrics").lines() {
                        if line.starts_with("# TYPE control_") {
                            println!("{line}");
                        }
                    }
                    if reload_ok && reject_ok && pin_ok && state_ok {
                        eprintln!(
                            "controlplane admin check: reload applied at generation 2, structural \
                             reload rejected 422, pin-threshold accepted over 127.0.0.1:{port}"
                        );
                    } else {
                        eprintln!(
                            "warning: controlplane admin check FAILED (reload {reload_ok}, \
                             reject {reject_ok}, pin {pin_ok}, state {state_ok})"
                        );
                    }
                }
                Err(e) => eprintln!("warning: controlplane admin probe failed: {e}"),
            }
        }
    });

    experiment!("ablation", {
        emit(
            &ablation::group_count_table(&ablation::group_count(&corpus, tcp, 0.5)),
            &args.out,
            "ablation_groups",
        );
        emit(
            &ablation::grouping_methods(&corpus, tcp, 0.5, 8),
            &args.out,
            "ablation_methods",
        );
        emit(
            &ablation::heuristic_family(&corpus, tcp, 0.4),
            &args.out,
            "ablation_heuristics",
        );
        emit(
            &ablation::kmeans_probe_table(&ablation::kmeans_probe(&corpus, tcp)),
            &args.out,
            "ablation_kmeans",
        );
        let ds_for_size = corpus.dataset(tcp, 0);
        let mut q99s: Vec<f64> = ds_for_size.train.iter().map(|d| d.quantile(0.99)).collect();
        q99s.sort_by(|a, b| a.total_cmp(b));
        emit(
            &ablation::attack_duration(&corpus, tcp, q99s[q99s.len() / 2]),
            &args.out,
            "ablation_duration",
        );
        emit(&ablation::roc_headroom(&corpus, tcp), &args.out, "ablation_roc");
        // The bin-width ablation regenerates its own corpus, so run it on
        // a reduced population to keep the runtime reasonable.
        let small = CorpusConfig {
            n_users: cfg.n_users.min(120),
            n_weeks: 2,
            ..cfg.clone()
        };
        emit(
            &ablation::bin_width(&small, tcp, 0.5),
            &args.out,
            "ablation_binwidth",
        );
    });

    experiment!("cluster", named("cluster"), {
        let mut scenario = cluster::ClusterScenario {
            feature: tcp,
            ..cluster::ClusterScenario::default()
        };
        scenario.cluster.n_nodes = args.nodes;
        scenario.cluster.heartbeat_interval = args.heartbeat_interval;
        scenario.cluster.heartbeat_timeout = args.heartbeat_timeout;
        if let Some(n) = args.delivery_attempts {
            scenario.delivery.max_attempts = n;
        }
        if let Some(t) = args.delivery_backoff {
            scenario.delivery.backoff_base = t;
        }
        let batches =
            daemon::build_batches_for(&corpus, tcp, scenario.batch_windows, &scenario.poison_hosts);

        // Single-node reference: the merged table every sharded run must
        // reproduce byte-for-byte.
        let mut ref_scenario = scenario.clone();
        ref_scenario.cluster.n_nodes = 1;
        let ref_dir = daemon::unique_run_dir("cluster-ref");
        let reference = match cluster::run(&ref_dir, &ref_scenario, &batches, &[]) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cluster experiment failed (single-node reference): {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = std::fs::remove_dir_all(&ref_dir);

        let multi_dir = daemon::unique_run_dir("cluster-multi");
        let multi = match cluster::run(&multi_dir, &scenario, &batches, &[]) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cluster experiment failed ({} nodes): {e}", args.nodes);
                return ExitCode::FAILURE;
            }
        };
        let _ = std::fs::remove_dir_all(&multi_dir);
        emit(&cluster::hosts_table(&multi), &args.out, "cluster_hosts");
        emit(&cluster::ops_table(&multi), &args.out, "cluster_ops");
        metrics.merge(&multi.metrics);
        if let Err(e) = multi.check() {
            eprintln!("warning: cluster invariant violated: {e}");
        }
        if cluster::hosts_csv(&multi) == cluster::hosts_csv(&reference)
            && cluster::determinism_snapshot(&multi) == cluster::determinism_snapshot(&reference)
        {
            eprintln!(
                "cluster determinism check ({} nodes vs 1): hosts CSV and metrics snapshot identical",
                args.nodes
            );
        } else {
            eprintln!(
                "warning: cluster determinism check FAILED: {}-node output diverged from single-node",
                args.nodes
            );
        }

        if args.fault_rate > 0.0 {
            // Fault-tolerance self-check: replay the same stream under a
            // seeded schedule of silent node deaths, batch-boundary
            // process kills, and torn WAL/journal writes, and demand the
            // identical merged hosts CSV.
            let kills = faultsim::cluster_kill_points(
                args.kill_seed,
                10,
                args.nodes,
                multi.total_applied,
                multi.total_wal_bytes,
                multi.total_ticks,
            );
            let kill_dir = daemon::unique_run_dir("cluster-kill");
            match cluster::run(&kill_dir, &scenario, &batches, &kills) {
                Ok(killed) => {
                    if let Err(e) = killed.check() {
                        eprintln!("warning: cluster invariant violated under kills: {e}");
                    }
                    let identical = cluster::hosts_csv(&killed) == cluster::hosts_csv(&reference)
                        && cluster::determinism_snapshot(&killed)
                            == cluster::determinism_snapshot(&reference);
                    if identical {
                        eprintln!(
                            "cluster kill-recovery check: {} node deaths, {} process kills over {} lifetimes, \
                             {} dark episodes, hosts CSV identical",
                            killed.node_deaths_total,
                            killed.recovery.kills,
                            killed.recovery.lifetimes,
                            killed.dark_episodes.len()
                        );
                    } else {
                        eprintln!("warning: cluster kill-recovery check FAILED: hosts CSV diverged");
                    }
                }
                Err(e) => eprintln!("warning: cluster kill-recovery run failed: {e}"),
            }
            let _ = std::fs::remove_dir_all(&kill_dir);
        }
    });

    experiment!("sketchablate", named("sketchablate"), {
        let r = sketchablate::run(&corpus, tcp, args.sketch_eps);
        emit(&r.rank_table(), &args.out, "sketchablate_rank");
        emit(&r.heuristic_table(), &args.out, "sketchablate_heuristics");
        match r.check() {
            Ok(()) => eprintln!(
                "sketchablate self-check: worst rank deviation {:.6} within budget {:.6}",
                r.worst_rank_dev,
                r.rank_budget()
            ),
            Err(e) => eprintln!("warning: sketchablate rank bound violated: {e}"),
        }
    });

    if let Some(path) = &args.metrics_out {
        write_metrics(path, &mut metrics);
    }

    let total_secs = t0.elapsed().as_secs_f64();
    if let Some(dir) = &args.out {
        let json = timings_json(&args, &timings, total_secs);
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join("BENCH_repro.json"), json))
        {
            eprintln!("warning: failed to write BENCH_repro.json: {e}");
        }
    }
    eprintln!("done in {total_secs:.1}s");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn parse(argv: &[&str]) -> Result<super::Args, String> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_fill_in_when_nothing_is_passed() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.users, 350);
        assert_eq!(args.weeks, 5);
        assert_eq!(args.experiments, vec!["all".to_string()]);
    }

    #[test]
    fn flags_and_experiments_parse_together() {
        let args = parse(&["--users", "40", "--threads", "2", "rollout", "daemon"]).unwrap();
        assert_eq!(args.users, 40);
        assert_eq!(args.threads, Some(2));
        assert_eq!(args.experiments, vec!["rollout", "daemon"]);
    }

    #[test]
    fn fault_rate_outside_unit_interval_is_rejected() {
        assert!(parse(&["--fault-rate", "1.5"]).unwrap_err().contains("[0, 1]"));
        assert!(parse(&["--fault-rate", "-0.1"]).unwrap_err().contains("[0, 1]"));
        assert!(parse(&["--fault-rate", "1.0"]).is_ok());
    }

    #[test]
    fn zero_valued_tunables_are_rejected() {
        assert!(parse(&["--users", "0"]).unwrap_err().contains("--users"));
        assert!(parse(&["--threads", "0"]).unwrap_err().contains("--threads"));
        assert!(parse(&["--weeks", "1"]).unwrap_err().contains("--weeks"));
        assert!(parse(&["--delivery-backoff", "0"])
            .unwrap_err()
            .contains("--delivery-backoff"));
        assert!(parse(&["--delivery-attempts", "0"])
            .unwrap_err()
            .contains("--delivery-attempts"));
    }

    #[test]
    fn sketch_eps_outside_open_unit_interval_is_rejected() {
        for bad in ["0", "0.0", "1", "1.0", "-0.1", "2.5", "NaN"] {
            assert!(
                parse(&["--sketch-eps", bad]).unwrap_err().contains("(0, 1)"),
                "--sketch-eps {bad} must be rejected"
            );
        }
        let args = parse(&["--sketch-eps", "0.05", "megafleet"]).unwrap();
        assert_eq!(args.sketch_eps, 0.05);
        assert_eq!(parse(&[]).unwrap().sketch_eps, 0.01, "default eps");
    }

    #[test]
    fn cluster_flags_parse_with_defaults() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.nodes, 2);
        assert_eq!(args.heartbeat_interval, 4);
        assert_eq!(args.heartbeat_timeout, 16);
        let args = parse(&[
            "--nodes",
            "4",
            "--kill-seed",
            "99",
            "--heartbeat-interval",
            "3",
            "--heartbeat-timeout",
            "12",
            "cluster",
        ])
        .unwrap();
        assert_eq!(args.nodes, 4);
        assert_eq!(args.kill_seed, 99);
        assert_eq!(args.heartbeat_interval, 3);
        assert_eq!(args.heartbeat_timeout, 12);
        assert_eq!(args.experiments, vec!["cluster"]);
    }

    #[test]
    fn cluster_flag_misuse_is_rejected() {
        assert!(parse(&["--nodes", "0"]).unwrap_err().contains("--nodes"));
        assert!(parse(&["--nodes", "4097"]).unwrap_err().contains("--nodes"));
        assert!(parse(&["--heartbeat-interval", "0"])
            .unwrap_err()
            .contains("--heartbeat-interval"));
        // The timeout must strictly exceed the interval, else a healthy
        // node can never prove liveness between detector sweeps.
        assert!(parse(&["--heartbeat-interval", "8", "--heartbeat-timeout", "8"])
            .unwrap_err()
            .contains("--heartbeat-timeout"));
        assert!(parse(&["--heartbeat-interval", "8", "--heartbeat-timeout", "4"])
            .unwrap_err()
            .contains("--heartbeat-timeout"));
        assert!(parse(&["--kill-seed"]).unwrap_err().contains("requires a value"));
        assert!(parse(&["--kill-seed", "not-a-seed"]).is_err());
    }

    #[test]
    fn ingest_flags_parse_with_defaults() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.ingest_rate, 16);
        assert_eq!(args.ingest_burst, 64);
        assert_eq!(args.fault_severity, 0.2);
        let args = parse(&[
            "--ingest-rate",
            "4",
            "--ingest-burst",
            "32",
            "--fault-severity",
            "0.05",
            "ingest",
        ])
        .unwrap();
        assert_eq!(args.ingest_rate, 4);
        assert_eq!(args.ingest_burst, 32);
        assert_eq!(args.fault_severity, 0.05);
        assert_eq!(args.experiments, vec!["ingest"]);
    }

    #[test]
    fn ingest_flag_misuse_is_rejected() {
        assert!(parse(&["--ingest-rate", "0"])
            .unwrap_err()
            .contains("--ingest-rate"));
        // A burst below the refill rate can never fill the bucket —
        // honest sources would shed on their very first tick.
        assert!(parse(&["--ingest-rate", "8", "--ingest-burst", "4"])
            .unwrap_err()
            .contains("--ingest-burst"));
        for bad in ["1.5", "-0.1", "NaN"] {
            assert!(
                parse(&["--fault-severity", bad]).unwrap_err().contains("[0, 1]"),
                "--fault-severity {bad} must be rejected"
            );
        }
        assert!(parse(&["--fault-severity"]).unwrap_err().contains("requires a value"));
        assert!(parse(&["--ingest-rate", "not-a-rate"]).is_err());
        assert!(parse(&["--fault-severity", "1.0"]).is_ok());
    }

    #[test]
    fn admin_port_routes_through_fleet_config_validation() {
        // Port 0 parses as a number but is forbidden by FleetConfig's own
        // validator — the same rule a live reload enforces.
        assert!(parse(&["--admin-port", "0"]).unwrap_err().contains("--admin-port"));
        // Out of u16 range fails at the typed key parse, with the flag named.
        assert!(parse(&["--admin-port", "70000"])
            .unwrap_err()
            .contains("--admin-port"));
        assert!(parse(&["--admin-port"]).unwrap_err().contains("requires a value"));
        assert!(parse(&["--admin-port", "not-a-port"]).is_err());
        let args = parse(&["--admin-port", "18080", "controlplane"]).unwrap();
        assert_eq!(args.admin_port, Some(18080));
        assert_eq!(args.experiments, vec!["controlplane"]);
        assert_eq!(parse(&[]).unwrap().admin_port, None, "endpoint off by default");
    }

    #[test]
    fn users_beyond_host_id_space_are_rejected() {
        assert!(parse(&["--users", "4294967296"])
            .unwrap_err()
            .contains("host id space"));
        assert!(parse(&["--users", "4294967295"]).is_ok());
        // Values that overflow usize itself fail at the parse step.
        assert!(parse(&["--users", "99999999999999999999999"]).is_err());
    }

    #[test]
    fn malformed_input_is_rejected_with_context() {
        assert!(parse(&["--users"]).unwrap_err().contains("requires a value"));
        assert!(parse(&["--users", "many"]).is_err());
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown flag"));
    }
}
