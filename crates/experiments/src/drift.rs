//! Extension: week-over-week threshold instability.
//!
//! The paper notes (§6.1) that "selecting a threshold based on the 99th
//! percentile (for a given week) did not always reflect a 1% false
//! positive rate in the next week". This experiment quantifies that drift
//! and evaluates EWMA smoothing of weekly thresholds as a mitigation.

use flowtab::FeatureKind;
use tailstats::{ks_distance, Ewma, EmpiricalDist, FiveNumber};

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// Drift statistics for one feature.
#[derive(Debug, Clone)]
pub struct DriftResult {
    /// Feature analysed.
    pub feature: FeatureKind,
    /// Per-user realized FP when the week-n p99 threshold is applied to
    /// week n+1 (all consecutive week pairs pooled).
    pub realized_fp: Vec<f64>,
    /// Per-user relative threshold change |T(n+1) − T(n)| / max(T(n), 1).
    pub relative_change: Vec<f64>,
    /// Realized FP when thresholds are EWMA-smoothed (α = 0.5) over weeks.
    pub smoothed_fp: Vec<f64>,
    /// Kolmogorov–Smirnov distance between each user's consecutive weekly
    /// distributions (how much the whole distribution moved, not just the
    /// tail).
    pub ks: Vec<f64>,
}

/// Run the drift analysis over all consecutive week pairs.
pub fn run(corpus: &Corpus, feature: FeatureKind) -> DriftResult {
    let n_weeks = corpus.config.n_weeks;
    assert!(n_weeks >= 2, "drift needs at least two weeks");
    let mut realized_fp = Vec::new();
    let mut relative_change = Vec::new();
    let mut smoothed_fp = Vec::new();
    let mut ks = Vec::new();

    for user_weeks in &corpus.weeks {
        let dists: Vec<EmpiricalDist> = user_weeks
            .iter()
            .map(|s| EmpiricalDist::from_counts(&s.feature(feature)))
            .collect();
        let thresholds: Vec<f64> = dists.iter().map(|d| d.quantile_discrete(0.99)).collect();
        let mut ewma = Ewma::new(0.5);
        let mut smoothed: Vec<f64> = Vec::with_capacity(thresholds.len());
        for &t in &thresholds {
            smoothed.push(ewma.observe(t));
        }
        for w in 0..n_weeks - 1 {
            realized_fp.push(dists[w + 1].exceedance(thresholds[w]));
            smoothed_fp.push(dists[w + 1].exceedance(smoothed[w]));
            relative_change
                .push((thresholds[w + 1] - thresholds[w]).abs() / thresholds[w].max(1.0));
            ks.push(ks_distance(&dists[w], &dists[w + 1]));
        }
    }

    DriftResult {
        feature,
        realized_fp,
        relative_change,
        smoothed_fp,
        ks,
    }
}

/// Render the drift summary.
pub fn table(r: &DriftResult) -> Table {
    let mut t = Table::new(
        &format!(
            "Threshold drift — p99 trained week n applied to week n+1 ({})",
            r.feature.name()
        ),
        &["statistic", "q1", "median", "q3", "max"],
    );
    for (label, data) in [
        ("realized FP (target 0.01)", &r.realized_fp),
        ("realized FP, EWMA-smoothed", &r.smoothed_fp),
        ("relative threshold change", &r.relative_change),
        ("KS distance week->week", &r.ks),
    ] {
        let s = FiveNumber::from_samples(data);
        t.row(vec![
            label.to_string(),
            format!("{:.4}", s.q1),
            format!("{:.4}", s.median),
            format!("{:.4}", s.q3),
            fnum(s.max),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    #[test]
    fn drift_exists_but_is_bounded() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 60,
            n_weeks: 3,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, FeatureKind::TcpConnections);
        assert_eq!(r.realized_fp.len(), 60 * 2);
        // The paper's observation: realized FP differs from the nominal 1%.
        let off_target = r
            .realized_fp
            .iter()
            .filter(|&&fp| (fp - 0.01).abs() > 0.003)
            .count();
        assert!(
            off_target > r.realized_fp.len() / 10,
            "many users drift off the 1% target ({off_target})"
        );
        // But not absurdly: median realized FP stays within [0, 5%].
        let mut fps = r.realized_fp.clone();
        fps.sort_by(|a, b| a.total_cmp(b));
        assert!(fps[fps.len() / 2] <= 0.05);
    }

    #[test]
    fn ks_distance_positive_but_bounded() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 30,
            n_weeks: 3,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, FeatureKind::TcpConnections);
        assert_eq!(r.ks.len(), 60);
        assert!(r.ks.iter().all(|&d| (0.0..=1.0).contains(&d)));
        // Weeks are similar but not identical.
        let mean = r.ks.iter().sum::<f64>() / r.ks.len() as f64;
        assert!(mean > 0.005 && mean < 0.6, "mean KS {mean}");
    }

    #[test]
    fn thresholds_change_week_to_week() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 30,
            n_weeks: 3,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, FeatureKind::UdpConnections);
        let moved = r.relative_change.iter().filter(|&&c| c > 0.0).count();
        assert!(moved > r.relative_change.len() / 2);
    }

    #[test]
    fn table_renders_three_rows() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 10,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        assert_eq!(table(&run(&corpus, FeatureKind::DnsConnections)).len(), 4);
    }
}
