//! Terminal (ASCII) charts, so `repro` output *shows* the figures rather
//! than only tabulating them.
//!
//! One glyph per series, optional log axes (the paper's figures are mostly
//! log-scale), min/max axis labels. Deliberately dependency-free.

/// A named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Points (need not be sorted).
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChartSpec<'a> {
    /// Title line.
    pub title: &'a str,
    /// x-axis caption.
    pub x_label: &'a str,
    /// y-axis caption.
    pub y_label: &'a str,
    /// Plot-area width in characters.
    pub width: usize,
    /// Plot-area height in characters.
    pub height: usize,
    /// Log-scale x (values ≤ 0 are clamped to the smallest positive point).
    pub log_x: bool,
    /// Log-scale y.
    pub log_y: bool,
}

impl Default for ChartSpec<'_> {
    fn default() -> Self {
        Self {
            title: "",
            x_label: "x",
            y_label: "y",
            width: 72,
            height: 20,
            log_x: false,
            log_y: false,
        }
    }
}

const GLYPHS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];

fn transform(v: f64, log: bool, floor: f64) -> f64 {
    if log {
        v.max(floor).log10()
    } else {
        v
    }
}

/// Render the chart. Returns a multi-line string ending in a newline.
pub fn render(spec: &ChartSpec, series: &[Series]) -> String {
    let mut out = String::new();
    if !spec.title.is_empty() {
        out.push_str(spec.title);
        out.push('\n');
    }
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }

    let pos_floor = |get: fn(&(f64, f64)) -> f64| {
        all.iter()
            .map(get)
            .filter(|&v| v > 0.0)
            .fold(f64::INFINITY, f64::min)
            .clamp(1e-12, 1.0)
    };
    let fx = pos_floor(|p| p.0);
    let fy = pos_floor(|p| p.1);

    let xs: Vec<f64> = all.iter().map(|p| transform(p.0, spec.log_x, fx)).collect();
    let ys: Vec<f64> = all.iter().map(|p| transform(p.1, spec.log_y, fy)).collect();
    let (x_min, x_max) = bounds(&xs);
    let (y_min, y_max) = bounds(&ys);

    let w = spec.width.max(8);
    let h = spec.height.max(4);
    let mut grid = vec![vec![' '; w]; h];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let tx = transform(x, spec.log_x, fx);
            let ty = transform(y, spec.log_y, fy);
            let col = scale(tx, x_min, x_max, w - 1);
            let row = h - 1 - scale(ty, y_min, y_max, h - 1);
            grid[row][col] = glyph;
        }
    }

    let y_top = axis_value(y_max, spec.log_y);
    let y_bottom = axis_value(y_min, spec.log_y);
    let label_w = 10usize;
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_top:>label_w$.4}")
        } else if i == h - 1 {
            format!("{y_bottom:>label_w$.4}")
        } else if i == h / 2 {
            format!("{:>label_w$}", spec.y_label)
        } else {
            " ".repeat(label_w)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_w));
    out.push('+');
    out.push_str(&"-".repeat(w));
    out.push('\n');
    let x_lo = axis_value(x_min, spec.log_x);
    let x_hi = axis_value(x_max, spec.log_x);
    let footer = format!(
        "{}{:<12}{:^w$}{:>12}",
        " ".repeat(label_w),
        trim_num(x_lo),
        spec.x_label,
        trim_num(x_hi),
        w = w.saturating_sub(24)
    );
    out.push_str(footer.trim_end());
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.label))
        .collect();
    out.push_str(&" ".repeat(label_w));
    out.push_str(&legend.join("   "));
    out.push('\n');
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn scale(v: f64, lo: f64, hi: f64, max_idx: usize) -> usize {
    let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    (frac * max_idx as f64).round() as usize
}

fn axis_value(v: f64, log: bool) -> f64 {
    if log {
        10f64.powf(v)
    } else {
        v
    }
}

fn trim_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else if v.abs() >= 1000.0 || (v != 0.0 && v.abs() < 0.01) {
        format!("{v:.2e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChartSpec<'static> {
        ChartSpec {
            title: "demo",
            x_label: "size",
            y_label: "frac",
            width: 40,
            height: 10,
            ..Default::default()
        }
    }

    #[test]
    fn renders_all_series_glyphs() {
        let s = [
            Series {
                label: "a",
                points: vec![(0.0, 0.0), (1.0, 1.0)],
            },
            Series {
                label: "b",
                points: vec![(0.0, 1.0), (1.0, 0.0)],
            },
        ];
        let chart = render(&spec(), &s);
        assert!(chart.contains('o'));
        assert!(chart.contains('x'));
        assert!(chart.contains("o a"));
        assert!(chart.contains("x b"));
        assert!(chart.contains("demo"));
    }

    #[test]
    fn corners_land_in_corners() {
        let s = [Series {
            label: "a",
            points: vec![(0.0, 0.0), (10.0, 10.0)],
        }];
        let chart = render(&spec(), &s);
        let lines: Vec<&str> = chart.lines().collect();
        // Row 1 (after title) is the top of the grid: max y -> last col.
        assert!(lines[1].ends_with('o'), "{chart}");
        // Bottom grid row has the min point right after the axis bar.
        let bottom = lines[10];
        let after_bar = bottom.split('|').nth(1).unwrap();
        assert!(after_bar.starts_with('o'), "{chart}");
    }

    #[test]
    fn log_axes_do_not_panic_on_zero() {
        let s = [Series {
            label: "a",
            points: vec![(0.0, 0.0), (100.0, 1000.0)],
        }];
        let mut sp = spec();
        sp.log_x = true;
        sp.log_y = true;
        let chart = render(&sp, &s);
        assert!(chart.contains('o'));
    }

    #[test]
    fn empty_series_handled() {
        let chart = render(&spec(), &[]);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn constant_series_handled() {
        let s = [Series {
            label: "flat",
            points: vec![(1.0, 5.0), (2.0, 5.0)],
        }];
        let chart = render(&spec(), &s);
        assert!(chart.contains('o'));
    }
}
