//! Figure 2: per-user fringe comparison across two features.
//!
//! Each point is one user; x = 99th percentile of TCP connections,
//! y = 99th percentile of UDP connections. The paper's observation: users
//! occupy the corners too — some are TCP-heavy but UDP-light and vice
//! versa, so *who is best at detecting what* differs by feature.

use flowtab::FeatureKind;

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// The scatter plus corner statistics.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// `(user, x = tcp q99, y = udp q99)`.
    pub points: Vec<(u32, f64, f64)>,
    /// Users in the lower-right corner (TCP-heavy, UDP-light).
    pub tcp_heavy_udp_light: Vec<u32>,
    /// Users in the upper-left corner (UDP-heavy, TCP-light).
    pub udp_heavy_tcp_light: Vec<u32>,
    /// Pearson correlation between log-scaled x and y.
    pub log_correlation: f64,
}

/// Run the Figure-2 analysis (corner = above the 75th percentile in one
/// feature and below the 25th in the other).
pub fn run(corpus: &Corpus, week: usize) -> Fig2Result {
    let x = corpus.q99(FeatureKind::TcpConnections, week);
    let y = corpus.q99(FeatureKind::UdpConnections, week);
    let points: Vec<(u32, f64, f64)> = x
        .iter()
        .zip(&y)
        .enumerate()
        .map(|(u, (&a, &b))| (u as u32, a, b))
        .collect();

    let quantile = |v: &[f64], q: f64| {
        tailstats::EmpiricalDist::from_samples(v.to_vec()).quantile(q)
    };
    let (x_hi, x_lo) = (quantile(&x, 0.75), quantile(&x, 0.25));
    let (y_hi, y_lo) = (quantile(&y, 0.75), quantile(&y, 0.25));

    let tcp_heavy_udp_light = points
        .iter()
        .filter(|(_, a, b)| *a >= x_hi && *b <= y_lo)
        .map(|(u, _, _)| *u)
        .collect();
    let udp_heavy_tcp_light = points
        .iter()
        .filter(|(_, a, b)| *b >= y_hi && *a <= x_lo)
        .map(|(u, _, _)| *u)
        .collect();

    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|(_, a, b)| (a.max(1.0).log10(), b.max(1.0).log10()))
        .collect();
    let n = logs.len() as f64;
    let mx = logs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = logs.iter().map(|p| p.1).sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (a, b) in &logs {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    let log_correlation = if sxx > 0.0 && syy > 0.0 {
        sxy / (sxx * syy).sqrt()
    } else {
        0.0
    };

    Fig2Result {
        points,
        tcp_heavy_udp_light,
        udp_heavy_tcp_light,
        log_correlation,
    }
}

/// Scatter as a CSV-ready table.
pub fn scatter_table(r: &Fig2Result) -> Table {
    let mut t = Table::new(
        "Figure 2 — per-user 99th percentiles, TCP vs UDP",
        &["user", "tcp_q99", "udp_q99"],
    );
    for (u, a, b) in &r.points {
        t.row(vec![u.to_string(), fnum(*a), fnum(*b)]);
    }
    t
}

/// Summary of the corner populations.
pub fn summary_table(r: &Fig2Result) -> Table {
    let mut t = Table::new(
        "Figure 2 — orientation corners",
        &["statistic", "value"],
    );
    t.row(vec!["users".into(), r.points.len().to_string()]);
    t.row(vec![
        "tcp-heavy & udp-light".into(),
        r.tcp_heavy_udp_light.len().to_string(),
    ]);
    t.row(vec![
        "udp-heavy & tcp-light".into(),
        r.udp_heavy_tcp_light.len().to_string(),
    ]);
    t.row(vec![
        "log-log correlation".into(),
        format!("{:.3}", r.log_correlation),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    #[test]
    fn corners_are_nonempty_for_a_large_population() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 200,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0);
        assert_eq!(r.points.len(), 200);
        // Orientation independence must put some users in each corner.
        assert!(
            !r.tcp_heavy_udp_light.is_empty(),
            "expected TCP-heavy/UDP-light corner users"
        );
        assert!(
            !r.udp_heavy_tcp_light.is_empty(),
            "expected UDP-heavy/TCP-light corner users"
        );
        // Correlated through the shared heaviness factor, but far from 1.
        assert!(r.log_correlation > 0.05 && r.log_correlation < 0.95);
    }

    #[test]
    fn corner_users_disjoint() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 100,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0);
        for u in &r.tcp_heavy_udp_light {
            assert!(!r.udp_heavy_tcp_light.contains(u));
        }
    }

    #[test]
    fn tables_render() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 12,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0);
        assert_eq!(scatter_table(&r).len(), 12);
        assert_eq!(summary_table(&r).len(), 4);
    }
}
