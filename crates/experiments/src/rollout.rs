//! Drift-aware threshold lifecycle, end to end: synthetic drift (benign
//! or boiling-frog poisoned) → console-side refit planning → daemon
//! canary epoch → promote or automatic rollback.
//!
//! This is the shared harness behind `repro rollout` and the root
//! `tests/rollout.rs` acceptance suite. It generates per-host window
//! streams whose second (test) week drifts away from the first, drives
//! them through a [`fleetd::Daemon`] over the same unreliable
//! stop-and-wait delivery link as [`crate::daemon`], and runs the
//! [`itconsole::RolloutPlanner`] beside the daemon: live counts feed the
//! fleet drift monitor exactly once per applied batch, and once every
//! host has latched drift (and the soak span is still undelivered) the
//! planner's candidate threshold set is submitted via
//! [`fleetd::Daemon::begin_rollout`].
//!
//! Two scripted narratives, selected by [`RolloutScenario::poison`]:
//!
//! * **benign** — activity genuinely shrinks (scale ramps down), refit
//!   thresholds follow, the canary soak is quiet on both incumbent and
//!   candidate, gates pass, the epoch promotes — and injected post-soak
//!   attacks sized between the new and old thresholds show the promoted
//!   fleet catching what the stale incumbent would have missed;
//! * **poisoned** — attackers inflate live counts. "Aggressive" hosts
//!   ramp fast enough to trip the boiling-frog guard (the planner falls
//!   back to their pooled group thresholds); "stealthy" hosts ramp
//!   slowly and poison their own refit window, so their candidate
//!   thresholds would silence alarms the incumbent still raises. The
//!   daemon's alarm-drop gate sees exactly that during the soak and
//!   rolls the epoch back; the incumbent fleet state is preserved
//!   byte-for-byte (checked against a run that never attempts a
//!   rollout).
//!
//! Every stream, verdict, and decision is a pure function of the
//! scenario, so the hosts CSV is byte-identical across kill schedules
//! and thread counts.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use faultsim::{poisoned_hosts, KillPoint, RampInject};
use fleetd::{
    Admit, Daemon, DaemonConfig, DaemonError, DaemonStats, EpochOutcome, EpochState, HostState,
    KillSwitch, QueueConfig, Week, WindowBatch,
};
use hids_core::{DriftConfig, Grouping, PartialMethod, Policy, ThresholdHeuristic};
use itconsole::{
    fallback_from_outcome, DeliveryConfig, DeliveryQueue, DeliveryStats, EpochSummary,
    FleetDriftMonitor, RolloutPlanner, RolloutProposal,
};
use tailstats::EmpiricalDist;

use crate::daemon::{RecoveryTotals, RunError};
use crate::report::Table;

/// Everything a rollout run needs besides a scratch directory.
#[derive(Debug, Clone)]
pub struct RolloutScenario {
    /// Fleet size.
    pub n_hosts: u32,
    /// Windows per delivered batch; soak bounds are batch-aligned
    /// multiples of this.
    pub batch_windows: u32,
    /// `true` = poisoned drift (expect rollback), `false` = benign drift
    /// (expect promotion).
    pub poison: bool,
    /// `false` = never plan or submit a rollout: the reference run the
    /// rollback-identity contract is stated against.
    pub attempt_rollout: bool,
    /// Master seed for the aggressive/stealthy host split.
    pub seed: u64,
    /// Test batches that must be fully applied (fleet-wide) before the
    /// planner proposes; `soak_start = propose_after_batches *
    /// batch_windows`.
    pub propose_after_batches: u32,
    /// Soak span in batches.
    pub soak_batches: u32,
    /// Drift detector configuration for the console-side monitor.
    pub drift: DriftConfig,
    /// Daemon configuration.
    pub daemon: DaemonConfig,
    /// Host-side delivery link configuration.
    pub delivery: DeliveryConfig,
    /// Safety valve on harness rounds before declaring a stall.
    pub max_rounds: u64,
    /// Safety valve on daemon lifetimes (1 + number of recoveries).
    pub max_lifetimes: u32,
}

impl Default for RolloutScenario {
    fn default() -> Self {
        Self {
            n_hosts: 9,
            batch_windows: 112,
            poison: false,
            attempt_rollout: true,
            seed: 7,
            propose_after_batches: 2,
            soak_batches: 1,
            drift: DriftConfig::default(),
            daemon: DaemonConfig {
                n_shards: 3,
                snapshot_every: 24,
                queue: QueueConfig {
                    capacity: 64,
                    high: 48,
                    low: 16,
                    // The rollout contract assumes shed-free soaks; age-based
                    // shedding would turn delivery timing into coverage.
                    shed_after: 100_000,
                    quantum: 4,
                },
                ..DaemonConfig::default()
            },
            delivery: DeliveryConfig {
                capacity: 256,
                // The canary barrier defers post-soak batches for the whole
                // soak; with exponential(-ish) backoff the attempt count
                // stays far below this budget, and nothing may expire.
                max_attempts: 40,
                backoff_base: 1,
                jitter_seed: Some(0x5eed_d312),
            },
            max_rounds: 1_000_000,
            max_lifetimes: 64,
        }
    }
}

impl RolloutScenario {
    /// First soak window (inclusive); batch-aligned by construction.
    pub fn soak_start(&self) -> u32 {
        self.propose_after_batches * self.batch_windows
    }

    /// One past the last soak window; batch-aligned by construction.
    pub fn soak_end(&self) -> u32 {
        self.soak_start() + self.soak_batches * self.batch_windows
    }

    /// Baseline activity level for a host (windows/week vary per host so
    /// per-host thresholds genuinely differ).
    fn level(&self, host: u32) -> f64 {
        90.0 + f64::from(host % 4) * 8.0
    }

    /// Hosts on the daemon's canary shards, ascending.
    fn canary_hosts(&self) -> Vec<u32> {
        let canary = self.daemon.rollout.canary_shards.min(self.daemon.n_shards);
        (0..self.n_hosts)
            .filter(|&h| (h as usize % self.daemon.n_shards) < canary)
            .collect()
    }

    /// The aggressive (guard-tripping) poisoned cohort. Seeded, then
    /// adjusted so the narrative is well-posed at any seed: at least one
    /// *stealthy* host sits on a canary shard (the alarm-drop gate needs
    /// a silenced canary host to fire) and at least one aggressive host
    /// exists (so the group-fallback path is exercised).
    pub fn aggressive_hosts(&self) -> BTreeSet<u32> {
        let mut aggressive = poisoned_hosts(self.seed, self.n_hosts, 0.5);
        let canary = self.canary_hosts();
        if let Some(&first) = canary.first() {
            if canary.iter().all(|h| aggressive.contains(h)) {
                aggressive.remove(&first);
            }
            if aggressive.is_empty() {
                if let Some(h) = (0..self.n_hosts).rev().find(|h| Some(h) != canary.first()) {
                    aggressive.insert(h);
                }
            }
        }
        aggressive
    }
}

/// The generated input: batches plus the ground truth needed to judge
/// the outcome.
#[derive(Debug, Clone)]
pub struct RolloutInput {
    /// Batches in round-robin delivery order, per-host seqs from 1.
    pub batches: Vec<WindowBatch>,
    /// Per-host training-week counts (the planner registers trackers
    /// from these).
    pub train: BTreeMap<u32, Vec<u64>>,
    /// Injected post-soak attacks as `(host, window, count)`, sized to
    /// clear a refit threshold but hide under the stale incumbent.
    pub attacks: Vec<(u32, u32, u64)>,
    /// Hosts whose poisoned ramp is aggressive enough to trip the guard.
    pub aggressive: BTreeSet<u32>,
}

/// Generate the scenario's streams. Pure function of the scenario.
pub fn build_input(s: &RolloutScenario) -> RolloutInput {
    let n_windows = s.daemon.n_windows;
    let aggressive = if s.poison {
        s.aggressive_hosts()
    } else {
        BTreeSet::new()
    };

    // Benign drift: activity shrinks 45% over the first 48 test windows.
    let benign = RampInject {
        span: (0, 48),
        from: 1.0,
        to: 0.55,
    };
    // Stealthy poisoning: a fast, small inflation that plateaus before
    // the guard can accumulate a long monotone run — the refit window
    // learns the attacker's plateau.
    let stealthy = RampInject {
        span: (0, 40),
        from: 1.0,
        to: 1.45,
    };
    // Aggressive poisoning: a long strictly-rising ramp on a noiseless
    // baseline — exactly the boiling-frog shape the guard latches on.
    let aggressive_ramp = RampInject {
        span: (0, 160),
        from: 1.0,
        to: 3.0,
    };

    let mut train: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut test: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut attacks = Vec::new();
    for host in 0..s.n_hosts {
        let level = s.level(host);
        let noisy = |w: u32| level + f64::from(w % 7);
        let train_counts: Vec<u64> = (0..n_windows).map(|w| noisy(w).round() as u64).collect();
        let mut test_counts: Vec<u64> = (0..n_windows)
            .map(|w| {
                if !s.poison {
                    benign.apply(w, noisy(w).round() as u64)
                } else if aggressive.contains(&host) {
                    aggressive_ramp.apply(w, level.round() as u64)
                } else {
                    stealthy.apply(w, noisy(w).round() as u64)
                }
            })
            .collect();
        if !s.poison {
            // Post-soak attacks: above any refit of the drifted-down
            // window, below the stale incumbent (≈ level + 6).
            let count = (0.9 * level).round() as u64;
            let mut w = s.soak_end() + s.batch_windows;
            while w < n_windows {
                test_counts[w as usize] = count;
                attacks.push((host, w, count));
                w += 16;
            }
        }
        train.insert(host, train_counts);
        test.insert(host, test_counts);
    }

    // Batch both weeks per host, then interleave round-robin (as in
    // `crate::daemon::build_batches`, over synthetic streams).
    let width = s.batch_windows.max(1) as usize;
    let mut per_host: Vec<Vec<WindowBatch>> = Vec::new();
    for host in 0..s.n_hosts {
        let mut seq = 0u64;
        let mut list = Vec::new();
        for (week, counts) in [(Week::Train, &train[&host]), (Week::Test, &test[&host])] {
            for chunk_start in (0..counts.len()).step_by(width) {
                let end = (chunk_start + width).min(counts.len());
                seq += 1;
                list.push(WindowBatch {
                    host,
                    seq,
                    week,
                    start: chunk_start as u32,
                    counts: counts[chunk_start..end].to_vec(),
                    poison: false,
                });
            }
        }
        per_host.push(list);
    }
    let max_len = per_host.iter().map(Vec::len).max().unwrap_or(0);
    let mut batches = Vec::new();
    for i in 0..max_len {
        for list in &per_host {
            if let Some(b) = list.get(i) {
                batches.push(b.clone());
            }
        }
    }
    RolloutInput {
        batches,
        train,
        attacks,
        aggressive,
    }
}

/// Build the console-side planner for an input: one drift tracker per
/// host (against its training distribution), P99 refit, and pooled
/// group-threshold fallbacks from the partial-diversity policy.
pub fn build_planner(s: &RolloutScenario, input: &RolloutInput) -> RolloutPlanner {
    let mut monitor = FleetDriftMonitor::new(s.drift);
    let host_ids: Vec<u32> = input.train.keys().copied().collect();
    let dists: Vec<EmpiricalDist> = host_ids
        .iter()
        .map(|h| EmpiricalDist::from_counts(&input.train[h]))
        .collect();
    for (h, d) in host_ids.iter().zip(&dists) {
        monitor.register_host(*h, d);
    }
    let policy = Policy {
        grouping: Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
        heuristic: ThresholdHeuristic::P99,
    };
    let outcome = policy.configure(&dists);
    let fallback = fallback_from_outcome(&host_ids, &outcome);
    RolloutPlanner::new(
        monitor,
        ThresholdHeuristic::P99,
        fallback,
        s.soak_batches * s.batch_windows,
    )
}

/// The result of driving one rollout scenario to quiescence.
#[derive(Debug)]
pub struct RolloutRun {
    /// Final per-host state, ordered by host id.
    pub hosts: Vec<(u32, HostState)>,
    /// Final epoch lifecycle state (candidate resolved, history filled).
    pub epoch: EpochState,
    /// The proposal that was submitted, if any.
    pub proposal: Option<RolloutProposal>,
    /// Daemon counters from the final lifetime.
    pub stats: DaemonStats,
    /// Delivery-link counters summed over lifetimes.
    pub delivery: DeliveryStats,
    /// Restart/recovery evidence.
    pub recovery: RecoveryTotals,
    /// Batches the delivery link gave up on (must be 0).
    pub lost_batches: u64,
    /// Injected attacks (benign scenario only).
    pub n_attacks: u64,
    /// Attacks missed under each host's final *effective* thresholds.
    pub fn_effective: u64,
    /// Attacks missed under the stale incumbent thresholds.
    pub fn_stale: u64,
    /// Lifetime batches applied, metered by the kill switch.
    pub total_applied: u64,
    /// Lifetime WAL bytes appended, metered by the kill switch.
    pub total_wal_bytes: u64,
    /// Lifetime rollout transition records journaled.
    pub total_rollout_events: u64,
}

/// Drive `input` through a daemon rooted at `dir`, planning and
/// submitting a rollout alongside delivery, killing and recovering at
/// each scheduled point.
pub fn run(
    dir: &Path,
    s: &RolloutScenario,
    input: &RolloutInput,
    kills: &[KillPoint],
) -> Result<RolloutRun, RunError> {
    let mut by_host: BTreeMap<u32, Vec<&WindowBatch>> = BTreeMap::new();
    for b in &input.batches {
        by_host.entry(b.host).or_default().push(b);
    }
    let soak_start = s.soak_start();

    let mut kill = KillSwitch::none();
    let mut kill_iter = kills.iter().copied();
    kill.rearm(kill_iter.next());

    let mut completed: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut lost: BTreeSet<(u32, u64)> = BTreeSet::new();

    // Console-side planner state, which must survive daemon restarts the
    // way a real console process outlives a daemon crash: counts feed
    // the monitor exactly once per (host, seq), in per-host seq order
    // (guaranteed by stop-and-wait delivery).
    let mut planner = build_planner(s, input);
    let mut fed: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut fed_windows: BTreeMap<u32, u64> = (0..s.n_hosts).map(|h| (h, 0)).collect();
    let mut proposal: Option<RolloutProposal> = None;
    let mut submitted = false;
    let mut decided = false;

    let mut recovery = RecoveryTotals::default();
    let mut delivery_total = DeliveryStats::default();
    let mut rounds = 0u64;

    'lifetime: loop {
        recovery.lifetimes += 1;
        if recovery.lifetimes > s.max_lifetimes {
            return Err(RunError::Stalled("lifetime budget exhausted"));
        }
        let (mut daemon, rec) = Daemon::open(dir, s.daemon)?;
        if rec.snapshot_seq.is_some() {
            recovery.snapshots_loaded += 1;
        }
        recovery.snapshots_discarded += rec.snapshots_discarded;
        recovery.wal_replayed += rec.wal_replayed;
        recovery.wal_torn_bytes += rec.wal_torn_bytes;

        // Reconcile the orchestrator with what the daemon made durable:
        // a journaled decision ends the lifecycle; a journaled Begin
        // means the submission stuck; a submission this harness made
        // that is in *neither* place was a torn Begin — resubmit it.
        if s.attempt_rollout {
            let es = daemon.epoch_state();
            if !es.history.is_empty() {
                decided = true;
            } else if es.candidate.is_some() {
                submitted = true;
            } else if submitted {
                submitted = false;
            }
        }

        let mut queue: DeliveryQueue<WindowBatch> = DeliveryQueue::new(s.delivery);
        let mut cursor: BTreeMap<u32, usize> = by_host
            .iter()
            .map(|(&h, list)| {
                let idx = list
                    .iter()
                    .position(|b| {
                        !completed.contains(&(b.host, b.seq)) && !lost.contains(&(b.host, b.seq))
                    })
                    .unwrap_or(list.len());
                (h, idx)
            })
            .collect();
        let mut in_flight: BTreeSet<u32> = BTreeSet::new();
        let mut attempts: BTreeMap<(u32, u64), u32> = BTreeMap::new();

        loop {
            rounds += 1;
            if rounds > s.max_rounds {
                return Err(RunError::Stalled("round budget exhausted"));
            }

            // Plan: once the pre-soak prefix is fully applied fleet-wide
            // the monitor's verdicts are final, and the soak windows are
            // still undelivered (held back below) — submit the proposal.
            if s.attempt_rollout && !decided && !submitted {
                if proposal.is_none() && fed_windows.values().all(|&w| w >= u64::from(soak_start)) {
                    proposal = planner.propose(soak_start);
                }
                if let Some(p) = &proposal {
                    match daemon.begin_rollout(p.soak_start, p.soak_end, p.plan.thresholds.clone(), &mut kill) {
                        Ok(_) => {
                            submitted = true;
                            planner.mark_submitted();
                        }
                        Err(DaemonError::Killed) => {
                            submitted = true; // resolved against durable state on reopen
                            recovery.kills += 1;
                            kill.rearm(kill_iter.next());
                            delivery_total = sum_delivery(delivery_total, queue.stats());
                            continue 'lifetime;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }

            // Feed: one outstanding batch per host; while a proposal is
            // pending, hold back test batches that would consume soak
            // windows before the daemon knows a candidate exists.
            let holdback_active = s.attempt_rollout && !decided && !submitted;
            let mut work_left = false;
            for (&host, &idx) in &cursor {
                let list = &by_host[&host];
                if idx < list.len() {
                    work_left = true;
                    let b = list[idx];
                    let held =
                        holdback_active && b.week == Week::Test && b.start >= soak_start;
                    if !held && !in_flight.contains(&host) && queue.offer(b.clone()) {
                        in_flight.insert(host);
                    }
                }
            }
            if !work_left && in_flight.is_empty() && queue.is_empty() && daemon.queued_total() == 0
            {
                delivery_total = sum_delivery(delivery_total, queue.stats());
                let hosts: Vec<(u32, HostState)> = daemon
                    .hosts()
                    .into_iter()
                    .map(|(h, st)| (h, st.clone()))
                    .collect();
                let stats = *daemon.stats();
                let epoch = daemon.epoch_state().clone();
                let (fn_effective, fn_stale) = count_misses(&hosts, &input.attacks);
                return Ok(RolloutRun {
                    hosts,
                    epoch,
                    proposal,
                    stats,
                    delivery: delivery_total,
                    recovery,
                    lost_batches: lost.len() as u64,
                    n_attacks: input.attacks.len() as u64,
                    fn_effective,
                    fn_stale,
                    total_applied: kill.applied_batches(),
                    total_wal_bytes: kill.wal_bytes(),
                    total_rollout_events: kill.rollout_events(),
                });
            }

            // Deliver: backpressure and the canary barrier both read as
            // "not now, retry later" to the link.
            queue.pump(|b| {
                if daemon.shard_busy(b.host) {
                    *attempts.entry((b.host, b.seq)).or_insert(0) += 1;
                    return false;
                }
                match daemon.offer(b.clone()) {
                    Admit::Overflow => {
                        *attempts.entry((b.host, b.seq)).or_insert(0) += 1;
                        false
                    }
                    _ => true,
                }
            });
            attempts.retain(|&(host, seq), &mut n| {
                if n >= s.delivery.max_attempts {
                    lost.insert((host, seq));
                    if let Some(idx) = cursor.get_mut(&host) {
                        *idx += 1;
                    }
                    in_flight.remove(&host);
                    false
                } else {
                    true
                }
            });

            // Process one tick.
            match daemon.tick(&mut kill) {
                Ok(()) => {}
                Err(DaemonError::Killed) => {
                    recovery.kills += 1;
                    kill.rearm(kill_iter.next());
                    delivery_total = sum_delivery(delivery_total, queue.stats());
                    continue 'lifetime;
                }
                Err(e) => return Err(e.into()),
            }
            if s.attempt_rollout && !decided && !daemon.epoch_state().history.is_empty() {
                decided = true;
            }

            // Acknowledge: completions advance cursors; applied (or
            // previously-applied) test batches feed the drift monitor,
            // exactly once each.
            for c in daemon.take_completions() {
                completed.insert((c.host, c.seq));
                attempts.remove(&(c.host, c.seq));
                if let Some(idx) = cursor.get_mut(&c.host) {
                    let list = &by_host[&c.host];
                    if *idx < list.len() && list[*idx].seq == c.seq {
                        *idx += 1;
                        in_flight.remove(&c.host);
                    }
                }
                if matches!(
                    c.disposition,
                    fleetd::Disposition::Applied | fleetd::Disposition::Duplicate
                ) && fed.insert((c.host, c.seq))
                {
                    if let Some(b) = by_host
                        .get(&c.host)
                        .and_then(|l| l.iter().find(|b| b.seq == c.seq))
                    {
                        if b.week == Week::Test {
                            for &count in &b.counts {
                                planner.observe(b.host, count);
                            }
                            *fed_windows.entry(b.host).or_insert(0) += b.counts.len() as u64;
                        }
                    }
                }
            }

            queue.tick(1);
        }
    }
}

fn sum_delivery(mut acc: DeliveryStats, st: DeliveryStats) -> DeliveryStats {
    acc.enqueued += st.enqueued;
    acc.delivered += st.delivered;
    acc.retries += st.retries;
    acc.rejected_batches += st.rejected_batches;
    acc.rejected_units += st.rejected_units;
    acc.expired_batches += st.expired_batches;
    acc.expired_units += st.expired_units;
    acc.queue_high_water = acc.queue_high_water.max(st.queue_high_water);
    acc
}

/// Misses over the injected attacks under (a) each host's final
/// effective thresholds and (b) the stale incumbent alone.
fn count_misses(hosts: &[(u32, HostState)], attacks: &[(u32, u32, u64)]) -> (u64, u64) {
    let by_id: BTreeMap<u32, &HostState> = hosts.iter().map(|(h, st)| (*h, st)).collect();
    let mut fn_effective = 0u64;
    let mut fn_stale = 0u64;
    for &(host, w, count) in attacks {
        let Some(st) = by_id.get(&host) else { continue };
        let c = count as f64;
        if !st.effective_threshold(w).is_some_and(|t| c > t) {
            fn_effective += 1;
        }
        if !st.threshold.is_some_and(|t| c > t) {
            fn_stale += 1;
        }
    }
    (fn_effective, fn_stale)
}

impl RolloutRun {
    /// Convert the daemon's epoch history into the console's summary
    /// form (see [`itconsole::render_history`]).
    pub fn epoch_summaries(&self) -> Vec<EpochSummary> {
        self.epoch
            .history
            .iter()
            .map(|r| EpochSummary {
                epoch: r.epoch,
                rolled_back: match r.outcome {
                    EpochOutcome::Promoted => None,
                    EpochOutcome::RolledBack(reason) => Some(reason.to_string()),
                },
                windows: r.stats.windows,
                expected_windows: r.expected_windows,
                incumbent_alarms: r.stats.incumbent_alarms,
                candidate_alarms: r.stats.candidate_alarms,
            })
            .collect()
    }

    /// Cross-check the run against the scenario's scripted narrative.
    pub fn check(&self, s: &RolloutScenario) -> Result<(), String> {
        if self.lost_batches != 0 {
            return Err(format!("{} batches lost to retry expiry", self.lost_batches));
        }
        if !self.stats.conservation_holds(0) {
            return Err("final-lifetime conservation violated".to_string());
        }
        if !s.attempt_rollout {
            if !self.epoch.history.is_empty() || self.epoch.candidate.is_some() {
                return Err("reference run must never see an epoch".to_string());
            }
            return Ok(());
        }
        if self.epoch.candidate.is_some() {
            return Err("candidate left unresolved at quiescence".to_string());
        }
        let [record] = &self.epoch.history[..] else {
            return Err(format!(
                "expected exactly one epoch, got {}",
                self.epoch.history.len()
            ));
        };
        let Some(p) = &self.proposal else {
            return Err("no proposal was submitted".to_string());
        };
        if s.poison {
            if record.outcome != EpochOutcome::RolledBack(fleetd::RollbackReason::AlarmDrop) {
                return Err(format!("expected alarm-drop rollback, got {:?}", record.outcome));
            }
            if self.hosts.iter().any(|(_, st)| st.promoted.is_some()) {
                return Err("rollback must not leave promoted overrides".to_string());
            }
            if p.plan.fallback_hosts.is_empty() {
                return Err("no host exercised the group-threshold fallback".to_string());
            }
            if !p.plan.skipped_hosts.is_empty() {
                return Err(format!(
                    "hosts dropped from the plan entirely: {:?}",
                    p.plan.skipped_hosts
                ));
            }
        } else {
            if record.outcome != EpochOutcome::Promoted {
                return Err(format!("expected promotion, got {:?}", record.outcome));
            }
            for (h, st) in &self.hosts {
                let want = p.plan.thresholds.get(h);
                let got = st.promoted;
                match (want, got) {
                    (Some(&t), Some((from, pt))) if from == p.soak_end && pt == t => {}
                    _ => {
                        return Err(format!(
                            "host {h}: promoted override {got:?} != plan {want:?} at {}",
                            p.soak_end
                        ))
                    }
                }
            }
            if !p.plan.fallback_hosts.is_empty() || !p.plan.skipped_hosts.is_empty() {
                return Err("benign plan must be all-refit".to_string());
            }
            if self.fn_effective >= self.fn_stale {
                return Err(format!(
                    "promotion must cut attack misses: effective {} vs stale {}",
                    self.fn_effective, self.fn_stale
                ));
            }
        }
        Ok(())
    }
}

/// The per-host output table — the byte-identity witness for both the
/// rollback contract and the crash-recovery contract. Floats use Rust's
/// shortest-roundtrip `Display`.
pub fn hosts_table(run: &RolloutRun) -> Table {
    let mut t = Table::new(
        "rollout — per-host threshold lifecycle",
        &[
            "host",
            "last_seq",
            "incumbent",
            "promoted_from",
            "promoted_thresh",
            "live_alarms",
            "train_windows",
            "test_windows",
        ],
    );
    for (host, st) in &run.hosts {
        let (from, pt) = match st.promoted {
            Some((from, t)) => (from.to_string(), format!("{t}")),
            None => ("-".to_string(), "-".to_string()),
        };
        t.row(vec![
            host.to_string(),
            st.last_seq.to_string(),
            st.threshold.map_or_else(|| "-".to_string(), |t| format!("{t}")),
            from,
            pt,
            st.live_alarms.to_string(),
            st.train.len().to_string(),
            st.test.len().to_string(),
        ]);
    }
    t
}

/// The hosts CSV (see [`hosts_table`]).
pub fn hosts_csv(run: &RolloutRun) -> String {
    hosts_table(run).to_csv()
}

/// Epoch history as a table (the operator-facing text form comes from
/// [`itconsole::render_history`] over [`RolloutRun::epoch_summaries`]).
pub fn epochs_table(run: &RolloutRun) -> Table {
    let mut t = Table::new(
        "rollout — epoch history",
        &[
            "epoch",
            "outcome",
            "soak_windows",
            "expected",
            "incumbent_alarms",
            "candidate_alarms",
        ],
    );
    for e in run.epoch_summaries() {
        t.row(vec![
            e.epoch.to_string(),
            e.rolled_back
                .map_or_else(|| "promoted".to_string(), |r| format!("rolled-back [{r}]")),
            e.windows.to_string(),
            e.expected_windows.to_string(),
            e.incumbent_alarms.to_string(),
            e.candidate_alarms.to_string(),
        ]);
    }
    t
}

/// Lifecycle and recovery counters for one run.
pub fn ops_table(run: &RolloutRun) -> Table {
    let mut t = Table::new("rollout — operational counters", &["counter", "value"]);
    let plan = run.proposal.as_ref().map(|p| &p.plan);
    let rows: Vec<(&str, String)> = vec![
        ("lifetimes", run.recovery.lifetimes.to_string()),
        ("kills", run.recovery.kills.to_string()),
        ("snapshots_loaded", run.recovery.snapshots_loaded.to_string()),
        (
            "snapshots_discarded",
            run.recovery.snapshots_discarded.to_string(),
        ),
        ("wal_frames_replayed", run.recovery.wal_replayed.to_string()),
        ("wal_torn_bytes", run.recovery.wal_torn_bytes.to_string()),
        ("rollout_events", run.total_rollout_events.to_string()),
        ("barrier_deferred", run.stats.barrier_deferred.to_string()),
        (
            "plan_refit_hosts",
            plan.map_or(0, |p| p.refit_hosts.len()).to_string(),
        ),
        (
            "plan_fallback_hosts",
            plan.map_or(0, |p| p.fallback_hosts.len()).to_string(),
        ),
        (
            "plan_skipped_hosts",
            plan.map_or(0, |p| p.skipped_hosts.len()).to_string(),
        ),
        ("attacks_injected", run.n_attacks.to_string()),
        ("attack_misses_effective", run.fn_effective.to_string()),
        ("attack_misses_stale", run.fn_stale.to_string()),
        ("delivery_retries", run.delivery.retries.to_string()),
        ("lost_batches", run.lost_batches.to_string()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::unique_run_dir;

    fn run_scenario(s: &RolloutScenario, tag: &str, kills: &[KillPoint]) -> RolloutRun {
        let input = build_input(s);
        let dir = unique_run_dir(tag);
        let out = run(&dir, s, &input, kills).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        out
    }

    #[test]
    fn benign_drift_promotes_and_cuts_attack_misses() {
        let s = RolloutScenario::default();
        let run = run_scenario(&s, "benign", &[]);
        run.check(&s).unwrap();
        assert_eq!(run.recovery.lifetimes, 1);
        assert_eq!(run.epoch.history.len(), 1);
        assert_eq!(run.fn_effective, 0, "promoted fleet catches every attack");
        assert_eq!(run.fn_stale, run.n_attacks, "stale incumbent misses every attack");
        assert!(run.n_attacks > 0);
        let text = itconsole::render_history(&run.epoch_summaries());
        assert!(text.starts_with("epoch 1: promoted"), "got: {text}");
    }

    #[test]
    fn poisoned_drift_rolls_back_and_matches_untouched_reference() {
        let s = RolloutScenario {
            poison: true,
            ..RolloutScenario::default()
        };
        let rolled = run_scenario(&s, "poisoned", &[]);
        rolled.check(&s).unwrap();
        let text = itconsole::render_history(&rolled.epoch_summaries());
        assert!(text.contains("rolled-back [alarm-drop]"), "got: {text}");

        let reference = RolloutScenario {
            attempt_rollout: false,
            ..s.clone()
        };
        let untouched = run_scenario(&reference, "poisoned-ref", &[]);
        untouched.check(&reference).unwrap();
        assert_eq!(
            hosts_csv(&rolled),
            hosts_csv(&untouched),
            "rollback must restore the incumbent fleet byte-for-byte"
        );
    }

    #[test]
    fn plan_provenance_matches_the_poisoning_split() {
        let s = RolloutScenario {
            poison: true,
            ..RolloutScenario::default()
        };
        let input = build_input(&s);
        let run = run_scenario(&s, "provenance", &[]);
        let plan = &run.proposal.as_ref().unwrap().plan;
        let aggressive: Vec<u32> = input.aggressive.iter().copied().collect();
        assert_eq!(plan.fallback_hosts, aggressive, "guard-tripped hosts fall back");
        let stealthy: Vec<u32> = (0..s.n_hosts)
            .filter(|h| !input.aggressive.contains(h))
            .collect();
        assert_eq!(plan.refit_hosts, stealthy, "stealthy hosts poison their refit");
    }

    #[test]
    fn kill_at_every_epoch_boundary_recovers_identically() {
        let s = RolloutScenario::default();
        let input = build_input(&s);
        let dir = unique_run_dir("rollout-ref");
        let reference = run(&dir, &s, &input, &[]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let ref_csv = hosts_csv(&reference);
        assert_eq!(reference.total_rollout_events, 2);

        for n in 1..=2u32 {
            let dir = unique_run_dir("rollout-kill");
            let killed = run(&dir, &s, &input, &[KillPoint::AfterRolloutEvents(n)]).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            assert_eq!(killed.recovery.kills, 1, "kill point {n} never fired");
            killed.check(&s).unwrap();
            assert_eq!(hosts_csv(&killed), ref_csv, "kill point {n}");
        }
    }
}
