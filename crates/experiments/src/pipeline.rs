//! End-to-end pipeline experiment: pcap → decode → sanitize → features
//! → threshold sweep.
//!
//! Exercises the entire measurement path the paper's deployment implies,
//! as one run with per-stage accounting:
//!
//! 1. **render** — each user's generated week is rendered into a real
//!    pcap capture ([`synthgen::export_user_windows`]);
//! 2. **capture** — the capture is read back through the fault-tolerant
//!    [`netpkt::LossyPcapReader`] and decoded into flow records by
//!    [`flowtab::FlowExtractor`] (a clean capture must be loss-free);
//! 3. **features** — per-window behavioral counts are extracted from the
//!    packet path and checked window-for-window against the generated
//!    series (the packet round trip must add nothing);
//! 4. **wire** — the measured counts ride a CEF-in-syslog batch datagram
//!    through the hardened ingest (`encode → sanitize → decode`), with
//!    hostile ANSI escapes woven into the envelope so the sanitizer's
//!    dirty path is exercised for real, and the decoded batch is checked
//!    against the measured counts;
//! 5. **sweep** — the per-user train/test series become a
//!    [`hids_core::FeatureDataset`] and the paper's three grouping
//!    policies are fitted and swept.
//!
//! [`PipelineReport::check`] asserts the cross-stage laws (loss-free
//! capture, feature identity, wire identity, finite utilities);
//! `repro pipeline` prints the table and records the first end-to-end
//! throughput figure in `BENCH_pipeline.json`.

use std::time::Instant;

use flowtab::{
    extract_features, FeatureKind, FeatureSeries, FlowExtractor, FlowTableConfig, Windowing,
};
use hids_core::{
    eval::evaluate_policy, EvalConfig, FeatureDataset, Grouping, PartialMethod, Policy,
    ThresholdHeuristic,
};
use netpkt::LossyPcapReader;
use synthgen::{export_user_windows, user_week_series_trended, Population, PopulationConfig};

use crate::report::{fnum, Table};

/// Parameters of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineScenario {
    /// Master seed for the synthetic population and all derived streams.
    pub seed: u64,
    /// End hosts rendered through the pipeline.
    pub n_users: usize,
    /// First 15-minute window of the rendered span (32 = 08:00 Monday).
    pub first_window: usize,
    /// Windows per user per week (32 = one working day).
    pub n_windows: usize,
    /// Weekly activity trend (see [`PopulationConfig::weekly_trend`]).
    pub weekly_trend: f64,
    /// Behavioral feature carried through to the sweep.
    pub feature: FeatureKind,
}

impl Default for PipelineScenario {
    fn default() -> Self {
        Self {
            seed: 7,
            n_users: 8,
            first_window: 32,
            n_windows: 32,
            weekly_trend: 0.97,
            feature: FeatureKind::TcpConnections,
        }
    }
}

/// Wall-clock seconds spent in each stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageSecs {
    /// Stage 1: synthetic weeks → pcap bytes.
    pub render: f64,
    /// Stage 2: pcap bytes → flow records.
    pub capture: f64,
    /// Stage 3: flow records → per-window feature series.
    pub features: f64,
    /// Stage 4: feature series → datagram → sanitize → decode.
    pub wire: f64,
    /// Stage 5: dataset fit + attack sweep.
    pub sweep: f64,
}

impl StageSecs {
    /// Sum over all stages.
    pub fn total(&self) -> f64 {
        self.render + self.capture + self.features + self.wire + self.sweep
    }
}

/// One grouping policy's outcome over the packet-measured population.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Grouping label.
    pub grouping: String,
    /// Mean utility over the population.
    pub mean_utility: f64,
    /// Thresholds the policy configured.
    pub thresholds: usize,
}

/// Everything one pipeline run measured.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Users rendered.
    pub users: usize,
    /// Windows per user per week.
    pub span: usize,
    /// Stage 1: frames written across all captures.
    pub frames_written: u64,
    /// Stage 1: flows rendered.
    pub flows_rendered: u64,
    /// Stage 1: pcap bytes produced.
    pub bytes_written: u64,
    /// Stage 1: windows the renderer skipped as oversized (those windows
    /// are checked to measure zero rather than against the series).
    pub oversized_windows: u64,
    /// Stage 2: records the lossy reader recovered.
    pub records_ok: u64,
    /// Stage 2: records it skipped (must be 0 on a clean capture).
    pub records_skipped: u64,
    /// Stage 2: recovered frames the extractor rejected (must be 0).
    pub frames_rejected: u64,
    /// Stage 3: windows compared against the generated series.
    pub feature_windows: u64,
    /// Stage 3: windows whose packet-path counts diverged (must be 0).
    pub feature_mismatches: u64,
    /// Stage 4: batch datagrams decoded (one per user per week).
    pub wire_datagrams: u64,
    /// Stage 4: wire bytes decoded.
    pub wire_bytes: u64,
    /// Stage 4: decoded batches that diverged from the measured counts
    /// (must be 0 — the hostile envelope must sanitize away cleanly).
    pub wire_mismatches: u64,
    /// Stage 5: one row per grouping policy.
    pub sweep: Vec<SweepRow>,
    /// Per-stage wall-clock.
    pub secs: StageSecs,
    /// Window-events carried end to end per second of total wall-clock.
    pub events_per_sec: f64,
}

const GROUPINGS: [(&str, Grouping); 3] = [
    ("Homogeneous", Grouping::Homogeneous),
    ("Full Diversity", Grouping::FullDiversity),
    ("8-Partial", Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
];

/// A syslog envelope laced with ANSI CSI/OSC noise and control bytes:
/// the sanitizer must strip all of it before the decoder sees the line.
const DIRTY_HOSTNAME: &str = "\u{1b}[31mhost-\u{1b}]0;owned\u{7}pipeline\u{7f}";

/// One run. Deterministic in the scenario; returns the first stage
/// failure as text rather than panicking.
pub fn run(scenario: &PipelineScenario) -> Result<PipelineReport, String> {
    let windowing = Windowing::FIFTEEN_MIN;
    let population = Population::sample(PopulationConfig {
        n_users: scenario.n_users,
        seed: scenario.seed,
        weekly_trend: scenario.weekly_trend,
        ..PopulationConfig::default()
    });
    let config = fleetd::IngestConfig::default();

    let mut report = PipelineReport {
        users: scenario.n_users,
        span: scenario.n_windows,
        frames_written: 0,
        flows_rendered: 0,
        bytes_written: 0,
        oversized_windows: 0,
        records_ok: 0,
        records_skipped: 0,
        frames_rejected: 0,
        feature_windows: 0,
        feature_mismatches: 0,
        wire_datagrams: 0,
        wire_bytes: 0,
        wire_mismatches: 0,
        sweep: Vec::new(),
        secs: StageSecs::default(),
        events_per_sec: 0.0,
    };

    let mut train: Vec<FeatureSeries> = Vec::with_capacity(scenario.n_users);
    let mut test: Vec<FeatureSeries> = Vec::with_capacity(scenario.n_users);

    for (u, profile) in population.users.iter().take(scenario.n_users).enumerate() {
        for week in 0..2usize {
            // Stage 1: render this user-week span into a pcap capture.
            let t = Instant::now();
            let mut capture = Vec::new();
            let stats = export_user_windows(
                &mut capture,
                profile,
                scenario.seed,
                week,
                scenario.weekly_trend,
                windowing,
                scenario.first_window,
                scenario.n_windows,
            )
            .map_err(|e| format!("user {u} week {week}: render: {e}"))?;
            report.secs.render += t.elapsed().as_secs_f64();
            report.frames_written += stats.frames;
            report.flows_rendered += stats.flows;
            report.bytes_written += capture.len() as u64;
            report.oversized_windows += stats.oversized_windows;

            // Stage 2: read it back through the fault-tolerant reader.
            let t = Instant::now();
            let reader = LossyPcapReader::new(&capture)
                .map_err(|e| format!("user {u} week {week}: pcap header: {e}"))?;
            let (packets, loss) = reader.read_all();
            report.records_ok += loss.records_ok;
            report.records_skipped += loss.records_skipped;
            let mut ex = FlowExtractor::new(FlowTableConfig::default());
            for pkt in &packets {
                if ex.push_pcap(pkt).is_err() {
                    report.frames_rejected += 1;
                }
            }
            let records = ex.finish();
            report.secs.capture += t.elapsed().as_secs_f64();

            // Stage 3: features from the packet path, checked against the
            // generated series window-for-window.
            let t = Instant::now();
            let measured = extract_features(
                &records,
                profile.addr,
                windowing,
                scenario.first_window + scenario.n_windows,
            );
            let expected = user_week_series_trended(
                profile,
                scenario.seed,
                week,
                windowing,
                scenario.weekly_trend,
            );
            let mut span = FeatureSeries::zeros(windowing, scenario.n_windows);
            for k in 0..scenario.n_windows {
                let w = scenario.first_window + k;
                report.feature_windows += 1;
                // The renderer skips windows whose flow total exceeds its
                // source-port space (and counts them in the stats); those
                // windows must measure zero, every other window must
                // reproduce the generated counts exactly.
                let oversized = expected
                    .windows
                    .get(w)
                    .is_some_and(|c| (0..6).map(|i| c.0[i]).sum::<u64>() > 60_000);
                let want = if oversized {
                    Some(&flowtab::FeatureCounts::default())
                } else {
                    expected.windows.get(w)
                };
                if measured.windows.get(w) != want {
                    report.feature_mismatches += 1;
                }
                if let (Some(dst), Some(src)) = (span.windows.get_mut(k), measured.windows.get(w))
                {
                    *dst = *src;
                }
            }
            report.secs.features += t.elapsed().as_secs_f64();

            // Stage 4: the measured counts ride the hardened wire — a
            // hostile envelope forces the sanitizer's rebuild path — and
            // the decoded batch must reproduce them exactly.
            let t = Instant::now();
            let batch = fleetd::WindowBatch {
                host: profile.id,
                seq: u as u64 + 1,
                week: if week == 0 {
                    fleetd::Week::Train
                } else {
                    fleetd::Week::Test
                },
                start: scenario.first_window as u32,
                counts: span.feature(scenario.feature),
                poison: false,
            };
            let wire =
                fleetd::ingest::encode_batch_datagram(&batch, DIRTY_HOSTNAME, "hids-agent");
            report.wire_bytes += wire.len() as u64;
            report.wire_datagrams += 1;
            match fleetd::decode_batch_datagram(&wire, &config) {
                Ok(decoded) if decoded == batch => {}
                _ => report.wire_mismatches += 1,
            }
            report.secs.wire += t.elapsed().as_secs_f64();

            if week == 0 {
                train.push(span);
            } else {
                test.push(span);
            }
        }
    }

    // Stage 5: dataset fit + the paper's grouping sweep over the
    // packet-measured population.
    let t = Instant::now();
    let ds = FeatureDataset::try_from_series(&train, &test, scenario.feature)
        .map_err(|e| format!("dataset: {e}"))?;
    let base = EvalConfig {
        w: 0.5,
        sweep: ds.default_sweep(),
    };
    for (label, grouping) in GROUPINGS {
        let policy = Policy {
            grouping,
            heuristic: ThresholdHeuristic::P99,
        };
        let eval = evaluate_policy(&ds, &policy, &base);
        report.sweep.push(SweepRow {
            grouping: label.to_string(),
            mean_utility: eval.mean_utility(),
            thresholds: eval.outcome.thresholds.len(),
        });
    }
    report.secs.sweep += t.elapsed().as_secs_f64();

    let total = report.secs.total().max(1e-9);
    report.events_per_sec = report.feature_windows as f64 / total;
    Ok(report)
}

impl PipelineReport {
    /// Verify every cross-stage law; returns the first violation as text.
    pub fn check(&self) -> Result<(), String> {
        if self.records_skipped != 0 || self.records_ok != self.frames_written {
            return Err(format!(
                "capture: clean pcap lost data ({} recovered of {}, {} skipped)",
                self.records_ok, self.frames_written, self.records_skipped
            ));
        }
        if self.frames_rejected != 0 {
            return Err(format!(
                "capture: {} clean frames rejected by the extractor",
                self.frames_rejected
            ));
        }
        if self.feature_mismatches != 0 {
            return Err(format!(
                "features: {} of {} windows diverged from the generated series",
                self.feature_mismatches, self.feature_windows
            ));
        }
        if self.wire_mismatches != 0 {
            return Err(format!(
                "wire: {} of {} datagrams failed the sanitize→decode round trip",
                self.wire_mismatches, self.wire_datagrams
            ));
        }
        if self.sweep.len() != GROUPINGS.len() {
            return Err(format!("sweep: {} of 3 policies fitted", self.sweep.len()));
        }
        for row in &self.sweep {
            if !row.mean_utility.is_finite() || row.thresholds == 0 {
                return Err(format!(
                    "sweep: {} produced utility {} over {} thresholds",
                    row.grouping, row.mean_utility, row.thresholds
                ));
            }
        }
        if self.feature_windows > 0 && self.events_per_sec <= 0.0 {
            return Err("throughput: zero events/sec over a nonzero run".into());
        }
        Ok(())
    }
}

/// Render the report as one table.
pub fn table(r: &PipelineReport) -> Table {
    let mut t = Table::new(
        &format!(
            "Pipeline — pcap→decode→sanitize→features→sweep ({} users × {} windows × 2 weeks)",
            r.users, r.span
        ),
        &["stage", "metric", "value"],
    );
    t.row(vec![
        "render".into(),
        "frames / flows / pcap bytes".into(),
        format!("{} / {} / {}", r.frames_written, r.flows_rendered, r.bytes_written),
    ]);
    t.row(vec![
        "capture".into(),
        "records recovered / skipped / rejected".into(),
        format!("{} / {} / {}", r.records_ok, r.records_skipped, r.frames_rejected),
    ]);
    t.row(vec![
        "features".into(),
        "windows checked / mismatched".into(),
        format!("{} / {}", r.feature_windows, r.feature_mismatches),
    ]);
    t.row(vec![
        "wire".into(),
        "datagrams / bytes / mismatches".into(),
        format!("{} / {} / {}", r.wire_datagrams, r.wire_bytes, r.wire_mismatches),
    ]);
    for row in &r.sweep {
        t.row(vec![
            "sweep".into(),
            format!("{}: mean utility ({} thresholds)", row.grouping, row.thresholds),
            fnum(row.mean_utility),
        ]);
    }
    t.row(vec![
        "total".into(),
        "end-to-end window-events/sec".into(),
        format!("{:.0}", r.events_per_sec),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PipelineScenario {
        PipelineScenario {
            n_users: 3,
            n_windows: 8,
            ..PipelineScenario::default()
        }
    }

    #[test]
    fn clean_pipeline_holds_every_law() {
        let r = run(&small()).expect("pipeline runs");
        r.check().expect("invariants");
        assert!(r.frames_written > 0, "work-morning span has traffic");
        assert_eq!(r.wire_datagrams, 6);
        assert!(r.events_per_sec > 0.0);
    }

    #[test]
    fn pipeline_counters_are_deterministic() {
        let a = run(&small()).expect("pipeline runs");
        let b = run(&small()).expect("pipeline runs");
        assert_eq!(a.frames_written, b.frames_written);
        assert_eq!(a.records_ok, b.records_ok);
        assert_eq!(a.wire_bytes, b.wire_bytes);
        for (ra, rb) in a.sweep.iter().zip(&b.sweep) {
            assert_eq!(ra.mean_utility, rb.mean_utility);
        }
    }

    #[test]
    fn dirty_envelope_actually_exercises_the_rebuild() {
        // The envelope constant must be dirty under the sanitizer — if a
        // refactor made it clean, the wire leg would stop covering the
        // rebuild path.
        assert!(matches!(
            fleetd::sanitize(DIRTY_HOSTNAME, 4096),
            std::borrow::Cow::Owned(_)
        ));
        assert_eq!(fleetd::sanitize(DIRTY_HOSTNAME, 4096), "host-pipeline");
    }

    #[test]
    fn renders_table() {
        let r = run(&small()).expect("pipeline runs");
        let t = table(&r);
        assert!(t.render().contains("events/sec"));
    }
}
