//! Table 2: "best users" per alarm type and their overlap.
//!
//! The 10 users with the lowest thresholds per feature are the best
//! detectors of stealthy anomalies in that feature. The paper lists them
//! under the Full-Diversity and Partial-Diversity policies and observes
//! only 2 (full) / 4 (partial) users common between the TCP and UDP lists.

use flowtab::FeatureKind;
use hids_core::{Grouping, PartialMethod, Policy, ThresholdHeuristic};
use itconsole::{best_users, sentinel::overlap};

use crate::data::Corpus;
use crate::report::Table;

/// Best-user lists for one grouping policy.
#[derive(Debug, Clone)]
pub struct BestUsers {
    /// Policy label.
    pub policy: &'static str,
    /// Best 10 for `num-UDP-connections`.
    pub udp: Vec<usize>,
    /// Best 10 for `num-TCP-connections`.
    pub tcp: Vec<usize>,
}

impl BestUsers {
    /// Users common to both lists.
    pub fn common(&self) -> usize {
        overlap(&self.udp, &self.tcp)
    }
}

/// The Table-2 result.
#[derive(Debug, Clone)]
pub struct Tab2Result {
    /// Full-diversity lists.
    pub full: BestUsers,
    /// 8-partial lists.
    pub partial: BestUsers,
}

/// Run the Table-2 analysis.
pub fn run(corpus: &Corpus, week: usize, k: usize) -> Tab2Result {
    let lists = |grouping: Grouping, label: &'static str| -> BestUsers {
        let policy = Policy {
            grouping,
            heuristic: ThresholdHeuristic::P99,
        };
        let pick = |feature: FeatureKind| -> Vec<usize> {
            let ds = corpus.dataset(feature, week);
            let outcome = policy.configure(&ds.train);
            best_users(&outcome.thresholds, k)
        };
        BestUsers {
            policy: label,
            udp: pick(FeatureKind::UdpConnections),
            tcp: pick(FeatureKind::TcpConnections),
        }
    };
    Tab2Result {
        full: lists(Grouping::FullDiversity, "Full Diversity"),
        partial: lists(
            Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            "Partial Diversity",
        ),
    }
}

/// Render as the paper's Table 2 layout plus overlap counts.
pub fn table(r: &Tab2Result) -> Table {
    let fmt = |v: &[usize]| {
        v.iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut t = Table::new(
        "Table 2 — best users per alarm type (lowest thresholds)",
        &["feature", "full diversity", "partial diversity"],
    );
    t.row(vec![
        "number UDP connections".into(),
        fmt(&r.full.udp),
        fmt(&r.partial.udp),
    ]);
    t.row(vec![
        "number TCP connections".into(),
        fmt(&r.full.tcp),
        fmt(&r.partial.tcp),
    ]);
    t.row(vec![
        "common users (UDP ∩ TCP)".into(),
        r.full.common().to_string(),
        r.partial.common().to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    #[test]
    fn lists_have_k_distinct_users() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 80,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0, 10);
        for lists in [&r.full, &r.partial] {
            assert_eq!(lists.udp.len(), 10);
            assert_eq!(lists.tcp.len(), 10);
            let mut u = lists.udp.clone();
            u.sort_unstable();
            u.dedup();
            assert_eq!(u.len(), 10);
        }
    }

    #[test]
    fn best_tcp_and_udp_detectors_differ() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 150,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0, 10);
        // The paper found only 2/10 common under full diversity; our
        // orientation model should likewise keep the lists mostly disjoint.
        assert!(
            r.full.common() <= 6,
            "TCP and UDP best-user lists mostly disjoint, got {} common",
            r.full.common()
        );
    }

    #[test]
    fn renders_three_rows() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 30,
            ..CorpusConfig::small()
        });
        let t = table(&run(&corpus, 0, 10));
        assert_eq!(t.len(), 3);
    }
}
