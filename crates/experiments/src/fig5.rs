//! Figure 5: real-attack replay (Storm zombie overlay).
//!
//! The Storm zombie's week of traffic is overlaid additively on every
//! user's test week; the feature analysed is `num-distinct-connections`
//! (distinct destination addresses), as in the paper. Each user yields one
//! ⟨FP, detection⟩ point; panel (a) contrasts Homogeneous with
//! Full-Diversity, panel (b) Full-Diversity with 8-Partial.

use attacksim::{replay_population, ReplayPerf};
use flowtab::FeatureKind;
use hids_core::{Grouping, PartialMethod, Policy, ThresholdHeuristic};

use crate::data::Corpus;
use crate::report::{fnum, Table};
use synthgen::{storm_week_series, StormConfig};

/// Per-policy replay scatter.
#[derive(Debug, Clone)]
pub struct ReplayScatter {
    /// Policy label.
    pub policy: &'static str,
    /// One point per user.
    pub points: Vec<ReplayPerf>,
}

impl ReplayScatter {
    /// Median FP across users.
    pub fn median_fp(&self) -> f64 {
        sorted_median(self.points.iter().map(|p| p.fp))
    }

    /// Median detection rate across users.
    pub fn median_detection(&self) -> f64 {
        sorted_median(self.points.iter().map(|p| p.detection))
    }

    /// Spread of FP rates in decades (max/min over users, floored at the
    /// one-per-week rate to avoid log(0)).
    pub fn fp_span_decades(&self, windows_per_week: f64) -> f64 {
        let floor = 1.0 / windows_per_week;
        let lo = self
            .points
            .iter()
            .map(|p| p.fp.max(floor))
            .fold(f64::INFINITY, f64::min);
        let hi = self.points.iter().map(|p| p.fp.max(floor)).fold(0.0, f64::max);
        (hi / lo).log10()
    }
}

fn sorted_median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

/// The Figure-5 result: scatters for the three policies.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Homogeneous / Full-Diversity / 8-Partial scatters.
    pub scatters: Vec<ReplayScatter>,
    /// The zombie overlay used (per-window distinct counts).
    pub zombie_distinct: Vec<u64>,
}

/// Run the Storm replay.
pub fn run(corpus: &Corpus, week: usize, storm: &StormConfig) -> Fig5Result {
    let feature = FeatureKind::DistinctConnections;
    let ds = corpus.dataset(feature, week);
    let zombie = storm_week_series(storm, corpus.config.windowing(), 0);
    let zombie_distinct = zombie.feature(feature);

    let scatters = [
        ("Homogeneous", Grouping::Homogeneous),
        ("Full-Diversity", Grouping::FullDiversity),
        ("8-Partial", Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
    ]
    .iter()
    .map(|&(label, grouping)| {
        let thresholds = Policy {
            grouping,
            heuristic: ThresholdHeuristic::P99,
        }
        .configure(&ds.train)
        .thresholds;
        ReplayScatter {
            policy: label,
            points: replay_population(&ds.test_counts, &zombie_distinct, &thresholds),
        }
    })
    .collect();

    Fig5Result {
        scatters,
        zombie_distinct,
    }
}

/// Scatter points as a CSV-ready table (policy column included).
pub fn scatter_table(r: &Fig5Result) -> Table {
    let mut t = Table::new(
        "Figure 5 — Storm replay: per-user ⟨FP, detection⟩",
        &["policy", "user", "fp", "detection"],
    );
    for s in &r.scatters {
        for (u, p) in s.points.iter().enumerate() {
            t.row(vec![
                s.policy.to_string(),
                u.to_string(),
                format!("{:.6}", p.fp),
                format!("{:.4}", p.detection),
            ]);
        }
    }
    t
}

/// Summary statistics matching the paper's qualitative reading.
pub fn summary_table(r: &Fig5Result, windows_per_week: f64) -> Table {
    let mut t = Table::new(
        "Figure 5 — summary (Storm zombie, num-distinct-connections)",
        &[
            "policy",
            "median FP",
            "FP span (decades)",
            "median detection",
            "frac detection in [0.3,0.7]",
        ],
    );
    for s in &r.scatters {
        let mid = s
            .points
            .iter()
            .filter(|p| (0.3..=0.7).contains(&p.detection))
            .count() as f64
            / s.points.len() as f64;
        t.row(vec![
            s.policy.to_string(),
            format!("{:.5}", s.median_fp()),
            format!("{:.2}", s.fp_span_decades(windows_per_week)),
            fnum(s.median_detection()),
            format!("{mid:.2}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn result() -> (Corpus, Fig5Result) {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 100,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0, &StormConfig::default());
        (corpus, r)
    }

    #[test]
    fn diversity_pins_fp_homogeneous_scatters_it() {
        let (corpus, r) = result();
        let wpw = corpus.config.windowing().windows_per_week() as f64;
        let homog = &r.scatters[0];
        let full = &r.scatters[1];
        // Paper: under diversity the bulk of users sit at FP ≈ 1%;
        // under homogeneity FP spans orders of magnitude.
        assert!(
            homog.fp_span_decades(wpw) > full.fp_span_decades(wpw),
            "homog span {} > full span {}",
            homog.fp_span_decades(wpw),
            full.fp_span_decades(wpw)
        );
        assert!(
            full.median_fp() <= 0.02,
            "diversity median FP near the 1% target, got {}",
            full.median_fp()
        );
    }

    #[test]
    fn detection_rates_scattered_under_diversity() {
        let (_, r) = result();
        let full = &r.scatters[1];
        let dets: Vec<f64> = full.points.iter().map(|p| p.detection).collect();
        let lo = dets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = dets.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            hi - lo > 0.3,
            "diverse thresholds spread detection rates ({lo}..{hi})"
        );
    }

    #[test]
    fn partial_bounds_fp_better_than_homogeneous() {
        let (corpus, r) = result();
        let wpw = corpus.config.windowing().windows_per_week() as f64;
        assert!(r.scatters[2].fp_span_decades(wpw) <= r.scatters[0].fp_span_decades(wpw));
    }

    #[test]
    fn every_user_has_a_point_and_attack_windows() {
        let (corpus, r) = result();
        for s in &r.scatters {
            assert_eq!(s.points.len(), corpus.n_users());
            assert!(s.points.iter().all(|p| p.attack_windows > 0));
        }
    }

    #[test]
    fn tables_render() {
        let (corpus, r) = result();
        let wpw = corpus.config.windowing().windows_per_week() as f64;
        assert_eq!(scatter_table(&r).len(), 3 * corpus.n_users());
        assert_eq!(summary_table(&r, wpw).len(), 3);
    }
}
