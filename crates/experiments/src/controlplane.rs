//! Control-plane scenario: a scripted operator timeline — drain, pin,
//! undrain, canary rollout, operator force-rollback, then a valid and an
//! invalid hot config reload — driven over the same unreliable-delivery
//! crash-recovery harness as `repro daemon`.
//!
//! The scenario is staged: the input stream is split into segments with a
//! quiescent barrier between them (every batch of a segment reaches a
//! terminal outcome before the next operator action fires). Quiescent
//! points are deterministic states, so the operator actions land on
//! exactly the same host-table prefix in every timeline — which is what
//! lets the headline contract extend to the control plane: a run killed
//! at arbitrary batch boundaries, WAL byte offsets (including torn
//! mid-command-record writes), and post-command ack windows produces a
//! hosts CSV byte-identical to an uninterrupted run.
//!
//! Crash-resume discipline for the operator script: the harness keeps a
//! stage/action cursor across daemon lifetimes and, before re-issuing an
//! action after a crash, checks its *durable* effect (is the shard in the
//! snapshot's drain set? is the pin in the replayed host table? did the
//! rollback land in the epoch history?). Journaled commands are
//! idempotent, so "issued but unacknowledged" resolves safely either way
//! — exactly the operator's own retry rule.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use faultsim::KillPoint;
use fleetd::{
    Admit, ControlCommand, Daemon, DaemonConfig, DaemonError, DaemonStats, EpochOutcome,
    HostState, KillSwitch, RollbackReason, Week, WindowBatch,
};
use flowtab::FeatureKind;
use hids_core::degraded::DegradedEvaluation;
use hids_metrics::Registry;
use itconsole::{DeliveryConfig, DeliveryQueue, DeliveryStats};

use crate::daemon::{sum_delivery, RecoveryTotals, RunError};
use crate::report::Table;

/// Everything the control-plane scenario needs besides a directory.
#[derive(Debug, Clone)]
pub struct ControlScenario {
    /// Feature streamed to the daemon.
    pub feature: FeatureKind,
    /// Windows per batch.
    pub batch_windows: usize,
    /// Coverage floor for the final degraded evaluation.
    pub min_coverage: f64,
    /// Daemon configuration.
    pub daemon: DaemonConfig,
    /// Host-side delivery link configuration.
    pub delivery: DeliveryConfig,
    /// Shard drained (and later undrained) by the operator script.
    pub drain_shard: u32,
    /// Host pinned by the operator script (must route to `drain_shard`
    /// so the refused-admission probe and the pin exercise one shard).
    pub pin_host: u32,
    /// Pinned threshold: far above any count, so the pinned host's test
    /// week provably evaluates under the pin (zero live alarms).
    pub pin_threshold: f64,
    /// Soak window range for the canary rollout that the script starts
    /// and then force-rolls-back mid-soak.
    pub soak_start: u32,
    /// End of the soak window range (exclusive, ≤ `n_windows`).
    pub soak_end: u32,
    /// Safety valve on harness rounds before declaring a stall.
    pub max_rounds: u64,
    /// Safety valve on daemon lifetimes (1 + number of recoveries).
    pub max_lifetimes: u32,
}

impl Default for ControlScenario {
    fn default() -> Self {
        let base = crate::daemon::DaemonScenario::default();
        Self {
            feature: FeatureKind::TcpConnections,
            batch_windows: 168,
            min_coverage: 0.1,
            daemon: DaemonConfig::default(),
            delivery: base.delivery,
            drain_shard: 1,
            pin_host: 1,
            pin_threshold: 1.0e12,
            soak_start: 336,
            soak_end: 672,
            max_rounds: 1_000_000,
            max_lifetimes: 64,
        }
    }
}

/// One step of the operator script, issued at a quiescent barrier.
#[derive(Debug, Clone)]
enum Action {
    /// A journaled operator command.
    Command(ControlCommand),
    /// Offer one batch of a drained-shard host out of band and record
    /// that admission was refused (the drain evidence).
    ProbeDrained(WindowBatch),
    /// Start the canary rollout (candidate thresholds derived from the
    /// fitted incumbents at this barrier — deterministic).
    BeginRollout,
    /// Hot-apply a config with changed live-appliable fields.
    ReloadValid,
    /// Attempt a structurally-changed config; must be rejected with the
    /// old generation provably live.
    ReloadInvalid,
}

/// Operator-script evidence accumulated across lifetimes.
#[derive(Debug, Default, Clone)]
pub struct ControlEvidence {
    /// The drained shard refused an out-of-band admission probe.
    pub drain_refused: bool,
    /// Generation returned by the accepted reload (2 in the lifetime it
    /// lands in: generations restart at 1 per process start).
    pub generation_after_reload: u64,
    /// Rejection reason from the invalid reload.
    pub invalid_reload_error: Option<String>,
    /// After the rejected reload, the previously-applied live value was
    /// still in force (old generation provably live).
    pub invalid_reload_kept_old: bool,
    /// A `config_rejected` event landed in the daemon's event ring.
    pub config_rejected_event: bool,
    /// The epoch history records an operator-reason rollback.
    pub rollback_operator: bool,
}

/// The result of driving the scripted timeline to quiescence.
#[derive(Debug)]
pub struct ControlRun {
    /// Final per-host state, ordered by host id.
    pub hosts: Vec<(u32, HostState)>,
    /// Degraded evaluation over the final host table.
    pub evaluation: Option<DegradedEvaluation>,
    /// Daemon counters from the final lifetime.
    pub stats: DaemonStats,
    /// Delivery-link counters summed over lifetimes.
    pub delivery: DeliveryStats,
    /// Restart/recovery evidence.
    pub recovery: RecoveryTotals,
    /// Operator-script evidence.
    pub evidence: ControlEvidence,
    /// Batches the delivery link gave up on.
    pub lost_batches: u64,
    /// Lifetime batches applied, as metered by the kill switch.
    pub total_applied: u64,
    /// Lifetime WAL bytes appended, as metered by the kill switch.
    pub total_wal_bytes: u64,
    /// Lifetime operator commands journaled, as metered by the kill
    /// switch (the `max_commands` axis for command kill schedules).
    pub total_commands: u64,
    /// Windows per week the scenario ran with.
    pub n_windows: u32,
    /// Coverage floor used for the evaluation.
    pub min_coverage: f64,
    /// Metrics snapshot from the final daemon lifetime (includes the
    /// `control_*` families).
    pub metrics: Registry,
}

/// Split the input stream into the script's four delivery segments:
/// training week; pre-soak test windows; mid-soak test windows (enough to
/// soak but not to complete it); and the post-rollback remainder.
fn segments(scenario: &ControlScenario, batches: &[WindowBatch]) -> [Vec<WindowBatch>; 4] {
    let mid = scenario.soak_start + (scenario.soak_end - scenario.soak_start) / 2;
    let mut segs: [Vec<WindowBatch>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for b in batches {
        let end = b.start + b.counts.len() as u32;
        let idx = match b.week {
            Week::Train => 0,
            Week::Test if end <= scenario.soak_start => 1,
            Week::Test if end <= mid => 2,
            Week::Test => 3,
        };
        segs[idx].push(b.clone());
    }
    segs
}

/// The per-stage operator actions (indexed in lockstep with the
/// segments: stage `k`'s actions fire once segment `k` is quiescent).
fn stage_actions(scenario: &ControlScenario, segs: &[Vec<WindowBatch>; 4]) -> [Vec<Action>; 4] {
    // The admission probe offers the drained host's *next* undelivered
    // batch: its first test batch (segment 1 carries it later, so the
    // probe refusal costs nothing).
    let probe = segs[1]
        .iter()
        .find(|b| b.host == scenario.pin_host)
        .or_else(|| segs[2].iter().find(|b| b.host == scenario.pin_host))
        .or_else(|| segs[3].iter().find(|b| b.host == scenario.pin_host))
        .cloned();
    let mut stage0 = vec![Action::Command(ControlCommand::DrainShard {
        shard: scenario.drain_shard,
    })];
    if let Some(b) = probe {
        stage0.push(Action::ProbeDrained(b));
    }
    stage0.push(Action::Command(ControlCommand::PinThreshold {
        host: scenario.pin_host,
        t: scenario.pin_threshold,
    }));
    stage0.push(Action::Command(ControlCommand::UndrainShard {
        shard: scenario.drain_shard,
    }));
    [
        stage0,
        vec![Action::BeginRollout],
        vec![Action::Command(ControlCommand::ForceRollback)],
        vec![Action::ReloadValid, Action::ReloadInvalid],
    ]
}

/// Has this action's durable effect already landed (so a crash-resume
/// must skip it instead of re-issuing)?
fn action_done(daemon: &Daemon, action: &Action) -> bool {
    match action {
        Action::Command(ControlCommand::DrainShard { shard }) => {
            daemon.drained_shards().contains(shard)
        }
        Action::Command(ControlCommand::UndrainShard { shard }) => {
            !daemon.drained_shards().contains(shard)
        }
        Action::Command(ControlCommand::PinThreshold { host, t }) => daemon
            .hosts()
            .get(host)
            .is_some_and(|st| st.pinned.map(f64::to_bits) == Some(t.to_bits())),
        Action::Command(ControlCommand::ForceRollback) => {
            !daemon.epoch_state().history.is_empty()
        }
        Action::BeginRollout => {
            daemon.epoch_state().candidate.is_some()
                || !daemon.epoch_state().history.is_empty()
        }
        // The probe is side-effect-free and reloads are not durable
        // (the config file is the durable source): always (re-)run.
        Action::ProbeDrained(_) | Action::ReloadValid | Action::ReloadInvalid => false,
    }
}

/// The accepted reload: live-appliable fields changed, everything
/// structural untouched.
fn valid_reload(base: &DaemonConfig) -> DaemonConfig {
    let mut cfg = *base;
    cfg.snapshot_every = base.snapshot_every.saturating_mul(2) | 1;
    cfg.supervisor.breaker_failures = base.supervisor.breaker_failures.saturating_add(1);
    cfg
}

/// The rejected reload: a structural field changed (shard routing).
fn invalid_reload(base: &DaemonConfig) -> DaemonConfig {
    let mut cfg = valid_reload(base);
    cfg.n_shards += 1;
    cfg
}

/// Issue one operator action against the live daemon. `Ok(true)` means
/// the action completed; `Err(Killed)` ends the lifetime.
fn issue(
    daemon: &mut Daemon,
    kill: &mut KillSwitch,
    scenario: &ControlScenario,
    action: &Action,
    evidence: &mut ControlEvidence,
) -> Result<(), DaemonError> {
    match action {
        Action::Command(cmd) => daemon.command(cmd.clone(), kill),
        Action::ProbeDrained(batch) => {
            if daemon.offer(batch.clone()) == Admit::Overflow {
                evidence.drain_refused = true;
            }
            Ok(())
        }
        Action::BeginRollout => {
            let thresholds: BTreeMap<u32, f64> = daemon
                .hosts()
                .iter()
                .filter_map(|(&h, st)| st.threshold.map(|t| (h, t * 1.01)))
                .collect();
            daemon
                .begin_rollout(scenario.soak_start, scenario.soak_end, thresholds, kill)
                .map(|_| ())
        }
        Action::ReloadValid => {
            let generation = daemon.reload(&valid_reload(&scenario.daemon))?;
            evidence.generation_after_reload = generation;
            Ok(())
        }
        Action::ReloadInvalid => {
            let live_before = daemon.config().snapshot_every;
            match daemon.reload(&invalid_reload(&scenario.daemon)) {
                Ok(_) => {
                    evidence.invalid_reload_error = None;
                }
                Err(e) => {
                    evidence.invalid_reload_error = Some(e.to_string());
                    evidence.invalid_reload_kept_old =
                        daemon.config().snapshot_every == live_before;
                    evidence.config_rejected_event =
                        daemon.events().contains("fleetd.control", "config_rejected");
                }
            }
            Ok(())
        }
    }
}

/// Drive the scripted timeline through a daemon rooted at `dir`, killing
/// and recovering at each scheduled point, until every segment is
/// delivered and every operator action has landed.
pub fn run(
    dir: &Path,
    scenario: &ControlScenario,
    batches: &[WindowBatch],
    kills: &[KillPoint],
) -> Result<ControlRun, RunError> {
    let segs = segments(scenario, batches);
    let actions = stage_actions(scenario, &segs);

    let mut kill = KillSwitch::none();
    let mut kill_iter = kills.iter().copied();
    kill.rearm(kill_iter.next());

    let mut completed: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut lost: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut evidence = ControlEvidence::default();
    let mut recovery = RecoveryTotals::default();
    let mut delivery_total = DeliveryStats::default();
    let mut rounds = 0u64;

    // The operator-script cursor: survives lifetimes; actions are only
    // re-issued when their durable effect is absent.
    let mut stage_idx = 0usize;
    let mut action_idx = 0usize;

    'lifetime: loop {
        recovery.lifetimes += 1;
        if recovery.lifetimes > scenario.max_lifetimes {
            return Err(RunError::Stalled("lifetime budget exhausted"));
        }
        let (mut daemon, rec) = Daemon::open(dir, scenario.daemon)?;
        if rec.snapshot_seq.is_some() {
            recovery.snapshots_loaded += 1;
        }
        recovery.snapshots_discarded += rec.snapshots_discarded;
        recovery.wal_replayed += rec.wal_replayed;
        recovery.wal_torn_bytes += rec.wal_torn_bytes;

        while stage_idx < segs.len() {
            let seg = &segs[stage_idx];
            let mut by_host: BTreeMap<u32, Vec<&WindowBatch>> = BTreeMap::new();
            for b in seg {
                by_host.entry(b.host).or_default().push(b);
            }
            let mut queue: DeliveryQueue<WindowBatch> = DeliveryQueue::new(scenario.delivery);
            let mut cursor: BTreeMap<u32, usize> = by_host
                .iter()
                .map(|(&h, list)| {
                    let idx = list
                        .iter()
                        .position(|b| {
                            !completed.contains(&(b.host, b.seq))
                                && !lost.contains(&(b.host, b.seq))
                        })
                        .unwrap_or(list.len());
                    (h, idx)
                })
                .collect();
            let mut in_flight: BTreeSet<u32> = BTreeSet::new();
            let mut attempts: BTreeMap<(u32, u64), u32> = BTreeMap::new();

            // Deliver this segment to quiescence (same stop-and-wait
            // discipline as the daemon harness).
            loop {
                rounds += 1;
                if rounds > scenario.max_rounds {
                    return Err(RunError::Stalled("round budget exhausted"));
                }
                let mut work_left = false;
                for (&host, &idx) in &cursor {
                    if let Some(list) = by_host.get(&host) {
                        if idx < list.len() {
                            work_left = true;
                            if !in_flight.contains(&host) && queue.offer(list[idx].clone()) {
                                in_flight.insert(host);
                            }
                        }
                    }
                }
                if !work_left
                    && in_flight.is_empty()
                    && queue.is_empty()
                    && daemon.queued_total() == 0
                {
                    break;
                }
                queue.pump(|b| {
                    if daemon.shard_busy(b.host) {
                        *attempts.entry((b.host, b.seq)).or_insert(0) += 1;
                        return false;
                    }
                    match daemon.offer(b.clone()) {
                        Admit::Overflow => {
                            *attempts.entry((b.host, b.seq)).or_insert(0) += 1;
                            false
                        }
                        _ => true,
                    }
                });
                attempts.retain(|&(host, seq), &mut n| {
                    if n >= scenario.delivery.max_attempts {
                        lost.insert((host, seq));
                        if let Some(idx) = cursor.get_mut(&host) {
                            *idx += 1;
                        }
                        in_flight.remove(&host);
                        false
                    } else {
                        true
                    }
                });
                match daemon.tick(&mut kill) {
                    Ok(()) => {}
                    Err(DaemonError::Killed) => {
                        recovery.kills += 1;
                        kill.rearm(kill_iter.next());
                        delivery_total = sum_delivery(delivery_total, queue.stats());
                        continue 'lifetime;
                    }
                    Err(e) => return Err(e.into()),
                }
                for c in daemon.take_completions() {
                    completed.insert((c.host, c.seq));
                    attempts.remove(&(c.host, c.seq));
                    if let Some(idx) = cursor.get_mut(&c.host) {
                        if let Some(list) = by_host.get(&c.host) {
                            if *idx < list.len() && list[*idx].seq == c.seq {
                                *idx += 1;
                                in_flight.remove(&c.host);
                            }
                        }
                    }
                }
                queue.tick(1);
            }
            delivery_total = sum_delivery(delivery_total, queue.stats());

            // Quiescent barrier reached: run this stage's remaining
            // operator actions, skipping any whose durable effect a
            // previous (killed) lifetime already landed.
            while action_idx < actions[stage_idx].len() {
                let action = &actions[stage_idx][action_idx];
                if !action_done(&daemon, action) {
                    match issue(&mut daemon, &mut kill, scenario, action, &mut evidence) {
                        Ok(()) => {}
                        Err(DaemonError::Killed) => {
                            recovery.kills += 1;
                            kill.rearm(kill_iter.next());
                            continue 'lifetime;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                action_idx += 1;
            }
            stage_idx += 1;
            action_idx = 0;
        }

        // Every segment delivered, every action landed: collect.
        evidence.rollback_operator = daemon.epoch_state().history.first().is_some_and(|r| {
            r.outcome == EpochOutcome::RolledBack(RollbackReason::Operator)
        });
        let hosts: Vec<(u32, HostState)> = daemon
            .hosts()
            .into_iter()
            .map(|(h, s)| (h, s.clone()))
            .collect();
        let stats = *daemon.stats();
        let evaluation = crate::daemon::evaluate_hosts(
            &hosts,
            scenario.feature,
            scenario.daemon.n_windows as usize,
            scenario.min_coverage,
        );
        let mut metrics = Registry::new();
        daemon.export_metrics(&mut metrics);
        delivery_total.export_metrics(&mut metrics, "controlplane_link");
        if let Some(eval) = &evaluation {
            eval.export_metrics(&mut metrics);
        }
        return Ok(ControlRun {
            hosts,
            evaluation,
            stats,
            delivery: delivery_total,
            recovery,
            evidence,
            lost_batches: lost.len() as u64,
            total_applied: kill.applied_batches(),
            total_wal_bytes: kill.wal_bytes(),
            total_commands: kill.commands(),
            n_windows: scenario.daemon.n_windows,
            min_coverage: scenario.min_coverage,
            metrics,
        });
    }
}

/// The per-host output table — the byte-identity witness shared (column
/// for column) with the daemon and cluster harnesses.
pub fn hosts_table(run: &ControlRun) -> Table {
    crate::daemon::hosts_table_titled(
        "controlplane — per-host evaluation under the operator script",
        &run.hosts,
        run.evaluation.as_ref(),
        run.n_windows,
    )
}

/// The hosts CSV — the byte-identity witness for the recovery contract.
pub fn hosts_csv(run: &ControlRun) -> String {
    hosts_table(run).to_csv()
}

/// Operator-script and recovery evidence, one row per claim.
pub fn evidence_table(run: &ControlRun) -> Table {
    let mut t = Table::new("controlplane — operator-script evidence", &["claim", "value"]);
    let e = &run.evidence;
    let rows: Vec<(&str, String)> = vec![
        ("drain_refused_admission", e.drain_refused.to_string()),
        ("rollback_reason_operator", e.rollback_operator.to_string()),
        (
            "reload_generation",
            e.generation_after_reload.to_string(),
        ),
        (
            "invalid_reload_rejected",
            e.invalid_reload_error.is_some().to_string(),
        ),
        (
            "invalid_reload_kept_old_config",
            e.invalid_reload_kept_old.to_string(),
        ),
        (
            "config_rejected_event",
            e.config_rejected_event.to_string(),
        ),
        ("commands_journaled", run.total_commands.to_string()),
        ("lifetimes", run.recovery.lifetimes.to_string()),
        ("kills", run.recovery.kills.to_string()),
        ("wal_frames_replayed", run.recovery.wal_replayed.to_string()),
        ("wal_torn_bytes", run.recovery.wal_torn_bytes.to_string()),
        ("lost_batches", run.lost_batches.to_string()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

impl ControlRun {
    /// Cross-check the run's own claims: every scripted effect observed,
    /// nothing lost, the pinned host provably evaluated under its pin.
    pub fn check(&self, scenario: &ControlScenario) -> Result<(), String> {
        if !self.stats.conservation_holds(0) {
            return Err("conservation violated in final lifetime".into());
        }
        if self.lost_batches != 0 {
            return Err(format!("{} batches lost", self.lost_batches));
        }
        let e = &self.evidence;
        if !e.drain_refused {
            return Err("drained shard accepted an admission probe".into());
        }
        if !e.rollback_operator {
            return Err("epoch history lacks the operator rollback".into());
        }
        if e.generation_after_reload < 2 {
            return Err(format!(
                "accepted reload did not bump the generation (got {})",
                e.generation_after_reload
            ));
        }
        match &e.invalid_reload_error {
            None => return Err("structural reload was not rejected".into()),
            Some(msg) if !msg.contains("restart") => {
                return Err(format!("rejection reason is not structural: {msg}"))
            }
            Some(_) => {}
        }
        if !e.invalid_reload_kept_old {
            return Err("rejected reload disturbed the live config".into());
        }
        if !e.config_rejected_event {
            return Err("no config_rejected event in the ring".into());
        }
        let pinned = self
            .hosts
            .iter()
            .find(|(h, _)| *h == scenario.pin_host)
            .map(|(_, st)| st)
            .ok_or("pinned host missing from the table")?;
        if pinned.pinned.map(f64::to_bits) != Some(scenario.pin_threshold.to_bits()) {
            return Err("pin missing from final host state".into());
        }
        if pinned.live_alarms != 0 {
            return Err(format!(
                "pinned host alarmed {} times under a {}-high pin",
                pinned.live_alarms, scenario.pin_threshold
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{build_batches_for, unique_run_dir};
    use crate::data::{Corpus, CorpusConfig};

    fn tiny_corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 8,
            n_weeks: 2,
            ..CorpusConfig::small()
        })
    }

    fn tiny_scenario() -> ControlScenario {
        ControlScenario::default()
    }

    #[test]
    fn scripted_timeline_lands_every_effect() {
        let corpus = tiny_corpus();
        let scenario = tiny_scenario();
        let batches = build_batches_for(&corpus, scenario.feature, scenario.batch_windows, &[]);
        let dir = unique_run_dir("ctrl-clean");
        let run = run(&dir, &scenario, &batches, &[]).unwrap();
        run.check(&scenario).unwrap();
        assert_eq!(run.recovery.lifetimes, 1);
        assert_eq!(run.total_commands, 4, "drain, pin, undrain, rollback");
        assert_eq!(run.hosts.len(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn command_kills_recover_byte_identical_csv() {
        let corpus = tiny_corpus();
        let scenario = tiny_scenario();
        let batches = build_batches_for(&corpus, scenario.feature, scenario.batch_windows, &[]);

        let ref_dir = unique_run_dir("ctrl-ref");
        let reference = run(&ref_dir, &scenario, &batches, &[]).unwrap();
        let ref_csv = hosts_csv(&reference);
        std::fs::remove_dir_all(&ref_dir).unwrap();

        let kills = faultsim::command_kill_points(
            0xC0DE,
            6,
            reference.total_applied,
            reference.total_wal_bytes,
            reference.total_commands as u32,
        );
        let kill_dir = unique_run_dir("ctrl-kill");
        let killed = run(&kill_dir, &scenario, &batches, &kills).unwrap();
        killed.check(&scenario).unwrap();
        assert!(killed.recovery.kills > 0);
        assert_eq!(hosts_csv(&killed), ref_csv);
        std::fs::remove_dir_all(&kill_dir).unwrap();
    }
}
