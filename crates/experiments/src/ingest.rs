//! Ingest-plane scenario: the synthetic batch stream re-encoded as real
//! syslog/CEF datagrams, faulted in flight, flood-attacked, and fed
//! through `fleetd::ingest` into the standard daemon harness.
//!
//! The pipeline under test:
//!
//! ```text
//! build_batches ─► encode_batch_datagram ─► DatagramFaults ─► Ingestor
//!                                                               │
//!        daemon::run ◄── accepted WindowBatches ◄───────────────┘
//! ```
//!
//! Two properties anchor it. First, **identity at severity zero**: with
//! no faults and no flood, every encoded datagram decodes back to its
//! original batch, so the daemon consumes the exact synthetic stream and
//! the hosts CSV is byte-identical to the synthetic-batch path — the
//! wire format and parser provably add nothing. Second, **graceful
//! degradation everywhere else**: faulted datagrams become `malformed`
//! counts, flooded sources shed with accounting
//! (`received = accepted + shed + malformed` is checked, never assumed),
//! and the victims surface as `LowCoverage`/`Dark` through the same
//! degraded evaluation the rest of the pipeline uses.
//!
//! A DNS lane rides along: every host also queries a small name pool —
//! in inconsistent letter case — through real RFC 1035 messages, and the
//! distinct-contacts counts must reflect case-folded names.

use std::path::Path;
use std::time::Instant;

use faultsim::{DatagramFaultLog, DatagramFaults};
use fleetd::{
    encode_batch_datagram, encode_dns_datagram, IngestConfig, IngestOutcome, IngestStats,
    Ingestor, Lane, Week, WindowBatch,
};
use hids_core::degraded::HostStatus;

use crate::daemon::{self, DaemonRun, DaemonScenario, RunError};
use crate::data::Corpus;
use crate::report::Table;

/// Everything an ingest run needs besides the corpus and a directory.
#[derive(Debug, Clone)]
pub struct IngestScenario {
    /// Seed for the datagram fault stream.
    pub seed: u64,
    /// Datagram fault severity in `[0, 1]` (0 = clean wire).
    pub severity: f64,
    /// Token-bucket refill per source per tick.
    pub rate_per_tick: u64,
    /// Token-bucket capacity per source.
    pub burst: u64,
    /// Hosts whose agents are compromised: during the test week each
    /// floods junk datagrams ahead of its real batch, draining its own
    /// bucket so the real telemetry is shed.
    pub flood_hosts: Vec<u32>,
    /// Junk datagrams per flooded slot. Must exceed `burst` to starve
    /// the real batch behind it.
    pub flood_burst: u64,
    /// DNS queries each host issues after the batch phase.
    pub dns_queries_per_host: u32,
    /// Downstream daemon scenario (feature, batching, delivery, eval).
    pub daemon: DaemonScenario,
}

impl Default for IngestScenario {
    fn default() -> Self {
        Self {
            seed: 0x1257_0DD5,
            severity: 0.0,
            rate_per_tick: 16,
            burst: 64,
            flood_hosts: Vec::new(),
            flood_burst: 96,
            dns_queries_per_host: 12,
            daemon: DaemonScenario::default(),
        }
    }
}

/// Small name pool the DNS lane queries, deliberately re-queried under
/// inconsistent letter case: distinct-contact counts must be identical
/// to a consistently-lowercase fleet, or the feature is case-inflated.
pub const DNS_NAME_POOL: [&str; 6] = [
    "ntp.example.com",
    "mail.example.com",
    "cdn.example.net",
    "updates.example.org",
    "ldap.corp.example",
    "files.corp.example",
];

/// The result of one ingest-plane run.
#[derive(Debug)]
pub struct IngestRun {
    /// Ingest-plane counters (conservation law checked by [`check`]).
    ///
    /// [`check`]: IngestRun::check
    pub stats: IngestStats,
    /// What the faulted wire did to the datagram stream.
    pub fault_log: DatagramFaultLog,
    /// Batches that survived ingest, in arrival order.
    pub accepted_batches: u64,
    /// Hosts that were flooding (copied from the scenario).
    pub flood_hosts: Vec<u32>,
    /// Sum over hosts of case-folded distinct DNS contacts.
    pub dns_distinct_total: u64,
    /// The downstream daemon run over the accepted stream. Its metrics
    /// registry additionally carries the `ingest_*` families and the
    /// ingest plane's flood-latch events.
    pub run: DaemonRun,
}

impl IngestRun {
    /// Hosts CSV of the downstream run — the identity witness.
    pub fn hosts_csv(&self) -> String {
        daemon::hosts_csv(&self.run)
    }

    /// Status of one host in the final evaluation, if it was present.
    pub fn host_status(&self, host: u32) -> Option<HostStatus> {
        let eval = self.run.evaluation.as_ref()?;
        let idx = self.run.hosts.iter().position(|(h, _)| *h == host)?;
        eval.users.get(idx).map(|u| u.status)
    }

    /// Invariants every ingest run must satisfy, severity and flood
    /// schedule notwithstanding.
    pub fn check(&self) -> Result<(), String> {
        if !self.stats.conservation_holds() {
            return Err(format!(
                "ingest conservation violated: received {} != accepted {} + shed {} + malformed {}",
                self.stats.received, self.stats.accepted, self.stats.shed, self.stats.malformed
            ));
        }
        if self.stats.flood_latched as usize > 0 && self.flood_hosts.is_empty() {
            return Err("flood latched with no flooding host configured".into());
        }
        self.run.check()
    }
}

/// Drive one ingest scenario end to end. `dir` must be fresh; the daemon
/// phase roots its WAL and snapshots there.
pub fn run(dir: &Path, corpus: &Corpus, scenario: &IngestScenario) -> Result<IngestRun, RunError> {
    let batches = daemon::build_batches(corpus, &scenario.daemon);
    let faults = DatagramFaults::with_severity(scenario.severity);
    let mut ingestor = Ingestor::new(IngestConfig {
        rate_per_tick: scenario.rate_per_tick,
        burst: scenario.burst,
        // DNS ticks continue after the batch phase; a coarse window keeps
        // each host's queries inside one or two feature windows so
        // distinct-contact counting is actually exercised.
        ticks_per_window: 64,
        ..IngestConfig::default()
    });
    let mut fault_log = DatagramFaultLog::default();
    let mut accepted: Vec<WindowBatch> = Vec::new();

    // Phase 1: the batch stream, one slot (= one virtual tick) per
    // synthetic batch, in the same round-robin order as the synthetic
    // path. A flooding host spends its slot spraying junk first, so its
    // own real batch meets an empty bucket.
    for (slot, b) in batches.iter().enumerate() {
        let tick = slot as u64;
        if b.week == Week::Test && scenario.flood_hosts.contains(&b.host) {
            for k in 0..scenario.flood_burst {
                let junk = format!("<13>1 - flood{k} spam - - - not-telemetry");
                ingestor.ingest(tick, b.host, Lane::Syslog, junk.as_bytes());
            }
        }
        let wire = encode_batch_datagram(b, &format!("host{:04}", b.host), "hids-agent");
        for copy in faults.apply(&wire, scenario.seed, slot as u64, &mut fault_log) {
            if let IngestOutcome::Batch(decoded) =
                ingestor.ingest(tick, b.host, Lane::Syslog, &copy)
            {
                accepted.push(decoded);
            }
        }
    }

    // Phase 2: the DNS lane. Every host queries the pool with a case
    // spelling that flips per query; the faulted wire applies here too.
    let dns_base = batches.len() as u64;
    let mut dns_index = batches.len() as u64;
    for host in 0..corpus.n_users() as u32 {
        for q in 0..scenario.dns_queries_per_host {
            let base = DNS_NAME_POOL[(host as usize + q as usize) % DNS_NAME_POOL.len()];
            let name = if q % 2 == 1 {
                base.to_ascii_uppercase()
            } else {
                base.to_string()
            };
            let Ok(wire) = encode_dns_datagram(host as u16, &name) else {
                continue;
            };
            let tick = dns_base + q as u64;
            for copy in faults.apply(&wire, scenario.seed, dns_index, &mut fault_log) {
                ingestor.ingest(tick, host, Lane::Dns, &copy);
            }
            dns_index += 1;
        }
    }

    let dns_distinct_total: u64 = (0..corpus.n_users() as u32)
        .map(|h| ingestor.dns_distinct(h).iter().map(|(_, n)| n).sum::<u64>())
        .sum();

    // Phase 3: the surviving stream through the standard daemon harness.
    let mut run = daemon::run(dir, &scenario.daemon, &accepted, &[])?;
    ingestor.export_metrics(&mut run.metrics);

    Ok(IngestRun {
        stats: ingestor.stats(),
        fault_log,
        accepted_batches: accepted.len() as u64,
        flood_hosts: scenario.flood_hosts.clone(),
        dns_distinct_total,
        run,
    })
}

/// One row per severity: what the wire did and what survived it.
pub fn sweep_table(rows: &[(f64, &IngestRun)]) -> Table {
    let mut t = Table::new(
        "ingest — datagram severity sweep",
        &[
            "severity",
            "received",
            "accepted",
            "shed",
            "malformed",
            "dropped_wire",
            "evaluated",
            "low_cov",
            "dark",
            "dns_distinct",
        ],
    );
    for (severity, r) in rows {
        let (evaluated, low, dark) = r
            .run
            .evaluation
            .as_ref()
            .map(|e| e.status_counts())
            .unwrap_or((0, 0, 0));
        t.row(vec![
            format!("{severity}"),
            r.stats.received.to_string(),
            r.stats.accepted.to_string(),
            r.stats.shed.to_string(),
            r.stats.malformed.to_string(),
            r.fault_log.dropped.to_string(),
            evaluated.to_string(),
            low.to_string(),
            dark.to_string(),
            r.dns_distinct_total.to_string(),
        ]);
    }
    t
}

/// Decode throughput of the hardened parser, single-threaded: events/sec
/// for one core, measured over `n_events` decodes of a representative
/// datagram. Wall-clock, so *not* part of any determinism contract —
/// it feeds `BENCH_ingest.json` only.
pub fn measure_decode_throughput(n_events: u64) -> f64 {
    let batch = WindowBatch {
        host: 17,
        seq: 3,
        week: Week::Test,
        start: 96,
        counts: (0..96u64).collect(),
        poison: false,
    };
    let wire = encode_batch_datagram(&batch, "host0017", "hids-agent");
    let config = IngestConfig::default();
    let t = Instant::now();
    let mut decoded = 0u64;
    for _ in 0..n_events {
        if fleetd::decode_batch_datagram(&wire, &config).is_ok() {
            decoded += 1;
        }
    }
    let secs = t.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(decoded, n_events, "benchmark datagram failed to decode");
    n_events as f64 / secs
}

/// Sanitize throughput on the dirty path, single-threaded: bytes/sec
/// over `n_lines` rebuilds of a representative escape-laden line (ANSI
/// CSI color codes plus BEL controls — the kind of console-hostile
/// telemetry [`fleetd::sanitize`] exists to strip). Wall-clock, feeds
/// `BENCH_ingest.json` only.
pub fn measure_sanitize_dirty_throughput(n_lines: u64) -> (f64, f64) {
    // Mirrors the `dirty_ansi_rebuilt` criterion bench line: a CSI color
    // code every 16 chars and a BEL every 37, woven through a clean
    // ~230-byte CEF-in-syslog line.
    let clean = {
        let counts: String = (0..24).map(|i| format!("{},", i * 7 % 97)).collect();
        format!(
            "<134>1 2009-04-07T12:00:00Z host042 hids - - - \
             CEF:0|fleet|hids|1.0|batch|window batch|3|host=42 seq=9 week=test start=96 counts={}",
            counts.trim_end_matches(',')
        )
    };
    let mut line = String::new();
    for (i, c) in clean.chars().enumerate() {
        line.push(c);
        if i % 16 == 0 {
            line.push_str("\u{1b}[31m");
        }
        if i % 37 == 0 {
            line.push('\u{7}');
        }
    }
    let bytes_per_line = line.len() as u64;
    // Best of several passes: a single pass is at the mercy of scheduler
    // noise; the fastest pass is the closest estimate of the true per-line
    // cost (same rationale as criterion's warmup + min-tracking).
    let mut best_secs = f64::MAX;
    for _ in 0..4 {
        let t = Instant::now();
        let mut total = 0usize;
        for _ in 0..n_lines {
            total += fleetd::sanitize(std::hint::black_box(&line), 8192).len();
        }
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        assert!(total > 0, "sanitize produced no output");
        best_secs = best_secs.min(secs);
    }
    let bytes_per_sec = (n_lines * bytes_per_line) as f64 / best_secs;
    let ns_per_line = best_secs * 1e9 / n_lines as f64;
    (bytes_per_sec, ns_per_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn small_corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 6,
            n_weeks: 2,
            seed: 0xBEEF,
            ..CorpusConfig::small()
        })
    }

    fn run_in_fresh_dir(corpus: &Corpus, scenario: &IngestScenario) -> IngestRun {
        let dir = daemon::unique_run_dir("ingest-mod");
        let r = run(&dir, corpus, scenario).expect("ingest run");
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn severity_zero_matches_synthetic_path() {
        let corpus = small_corpus();
        let scenario = IngestScenario::default();
        let r = run_in_fresh_dir(&corpus, &scenario);
        r.check().expect("invariants");
        assert_eq!(r.stats.shed, 0);
        assert_eq!(r.stats.lanes[0].malformed, 0, "clean wire, clean parse");

        let batches = daemon::build_batches(&corpus, &scenario.daemon);
        let ref_dir = daemon::unique_run_dir("ingest-mod-ref");
        let reference = daemon::run(&ref_dir, &scenario.daemon, &batches, &[]).expect("ref run");
        let _ = std::fs::remove_dir_all(&ref_dir);
        assert_eq!(
            r.hosts_csv(),
            daemon::hosts_csv(&reference),
            "severity-0 ingest must be byte-identical to the synthetic path"
        );
    }

    #[test]
    fn flooded_host_degrades_not_vanishes() {
        let corpus = small_corpus();
        let scenario = IngestScenario {
            flood_hosts: vec![2],
            ..IngestScenario::default()
        };
        let r = run_in_fresh_dir(&corpus, &scenario);
        r.check().expect("invariants");
        assert!(r.stats.shed > 0, "flood must shed");
        assert!(r.stats.flood_latched >= 1, "flood must latch");
        let status = r.host_status(2).expect("flooded host still in table");
        assert_ne!(
            status,
            HostStatus::Evaluated,
            "flooded host must surface as LowCoverage/Dark"
        );
    }

    #[test]
    fn dns_distinct_counts_are_case_folded() {
        let corpus = small_corpus();
        let r = run_in_fresh_dir(&corpus, &IngestScenario::default());
        // 12 queries over a 6-name pool with alternating case: at most 6
        // distinct per host per window, strictly fewer sightings than
        // queries.
        assert!(r.stats.dns_queries > 0);
        assert!(r.stats.dns_novel < r.stats.dns_queries);
        assert!(r.dns_distinct_total >= corpus.n_users() as u64);
        assert!(r.dns_distinct_total <= (corpus.n_users() * DNS_NAME_POOL.len()) as u64 * 2);
    }

    #[test]
    fn throughput_probe_decodes() {
        assert!(measure_decode_throughput(100) > 0.0);
    }
}
