//! Streaming-daemon scenario: drive `fleetd` with corpus traffic over an
//! unreliable delivery link, optionally killing and restarting it.
//!
//! This is the shared harness behind both `repro daemon` and the root
//! `tests/daemon.rs` crash-recovery suite. It turns a generated corpus
//! into per-host [`WindowBatch`] streams, delivers them through an
//! [`itconsole::DeliveryQueue`] (retry/backoff over an unreliable link,
//! honoring the daemon's backpressure), survives any number of scheduled
//! kills by reopening the daemon and redelivering unacknowledged work,
//! and finally evaluates the accumulated host table with the degraded
//! pipeline.
//!
//! The delivery discipline is stop-and-wait per host: at most one batch
//! per host is outstanding at any moment, so retries can never reorder a
//! host's sequence numbers. That — plus the daemon's seq-deduped
//! idempotent apply — is what makes the headline property hold: a run
//! killed at arbitrary points and restarted produces a host table, and
//! therefore a hosts CSV, byte-identical to an uninterrupted run.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use faultsim::KillPoint;
use fleetd::{
    Admit, Daemon, DaemonConfig, DaemonError, DaemonStats, HostState, KillSwitch, Week,
    WindowBatch,
};
use flowtab::FeatureKind;
use hids_core::degraded::{DegradedEvalConfig, DegradedEvaluation, HostStatus};
use hids_core::eval::EvalConfig;
use hids_core::threshold::AttackSweep;
use hids_core::{Grouping, Policy, ThresholdHeuristic, WindowAccumulator};
use hids_metrics::Registry;
use itconsole::{DeliveryConfig, DeliveryQueue, DeliveryStats};

use crate::data::Corpus;
use crate::report::Table;

/// Everything a daemon run needs besides the corpus and a directory.
#[derive(Debug, Clone)]
pub struct DaemonScenario {
    /// Feature streamed to the daemon.
    pub feature: FeatureKind,
    /// Windows per batch (a week splits into `ceil(672 / batch_windows)`
    /// batches per host).
    pub batch_windows: usize,
    /// Hosts whose first test-week batch is poisoned (panics the worker).
    pub poison_hosts: Vec<u32>,
    /// Coverage floor for the final degraded evaluation.
    pub min_coverage: f64,
    /// Daemon configuration.
    pub daemon: DaemonConfig,
    /// Host-side delivery link configuration.
    pub delivery: DeliveryConfig,
    /// Safety valve on harness rounds before declaring a stall.
    pub max_rounds: u64,
    /// Safety valve on daemon lifetimes (1 + number of recoveries).
    pub max_lifetimes: u32,
}

impl Default for DaemonScenario {
    fn default() -> Self {
        Self {
            feature: FeatureKind::TcpConnections,
            batch_windows: 96,
            poison_hosts: Vec::new(),
            min_coverage: 0.1,
            daemon: DaemonConfig::default(),
            delivery: DeliveryConfig {
                capacity: 256,
                // Generous retry budget: under kill schedules a batch may
                // fail many delivery attempts across backpressure spells,
                // and an expiry would (deterministically but silently)
                // change coverage. Tests assert `lost_batches == 0`.
                max_attempts: 40,
                backoff_base: 1,
                // Decorrelated retry jitter, fixed seed: retries from many
                // hosts desynchronize without giving up determinism — the
                // hosts CSV stays byte-identical run to run.
                jitter_seed: Some(0x5eed_d311),
            },
            max_rounds: 1_000_000,
            max_lifetimes: 64,
        }
    }
}

/// Turn a two-week corpus into the daemon's input stream: per host, the
/// training week then the test week, split into `batch_windows`-wide
/// batches with per-host sequence numbers from 1, interleaved round-robin
/// across hosts (all hosts make progress concurrently, exercising every
/// shard).
pub fn build_batches(corpus: &Corpus, scenario: &DaemonScenario) -> Vec<WindowBatch> {
    build_batches_for(
        corpus,
        scenario.feature,
        scenario.batch_windows,
        &scenario.poison_hosts,
    )
}

/// [`build_batches`] without a [`DaemonScenario`]: the same stream shape
/// for any harness that drives window batches (the cluster harness shares
/// this so single-daemon and clustered runs ingest identical streams).
pub fn build_batches_for(
    corpus: &Corpus,
    feature: FeatureKind,
    batch_windows: usize,
    poison_hosts: &[u32],
) -> Vec<WindowBatch> {
    let width = batch_windows.max(1);
    let mut per_host: Vec<Vec<WindowBatch>> = Vec::with_capacity(corpus.n_users());
    for host in 0..corpus.n_users() {
        let mut seq = 0u64;
        let mut batches = Vec::new();
        for (week_idx, week) in [Week::Train, Week::Test].into_iter().enumerate() {
            let counts = corpus.series(host, week_idx).feature(feature);
            for chunk_start in (0..counts.len()).step_by(width) {
                let end = (chunk_start + width).min(counts.len());
                seq += 1;
                let poison = week == Week::Test
                    && chunk_start == 0
                    && poison_hosts.contains(&(host as u32));
                batches.push(WindowBatch {
                    host: host as u32,
                    seq,
                    week,
                    start: chunk_start as u32,
                    counts: counts[chunk_start..end].to_vec(),
                    poison,
                });
            }
        }
        per_host.push(batches);
    }
    let max_len = per_host.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::new();
    for i in 0..max_len {
        for batches in &per_host {
            if let Some(b) = batches.get(i) {
                out.push(b.clone());
            }
        }
    }
    out
}

/// Aggregated recovery evidence across a run's restarts.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryTotals {
    /// Daemon lifetimes (1 for an uninterrupted run).
    pub lifetimes: u32,
    /// Kill-switch firings observed.
    pub kills: u32,
    /// Snapshots successfully loaded across recoveries.
    pub snapshots_loaded: u32,
    /// Damaged snapshots skipped across recoveries.
    pub snapshots_discarded: u32,
    /// WAL frames replayed into state across recoveries.
    pub wal_replayed: u64,
    /// Torn/corrupt WAL tail bytes truncated across recoveries.
    pub wal_torn_bytes: u64,
}

/// The result of driving one scenario to quiescence.
#[derive(Debug)]
pub struct DaemonRun {
    /// Final per-host state, ordered by host id.
    pub hosts: Vec<(u32, HostState)>,
    /// Degraded evaluation over the final host table (`None` when every
    /// host fell below the coverage floor).
    pub evaluation: Option<DegradedEvaluation>,
    /// Daemon counters from the final lifetime.
    pub stats: DaemonStats,
    /// Delivery-link counters summed over lifetimes.
    pub delivery: DeliveryStats,
    /// Restart/recovery evidence.
    pub recovery: RecoveryTotals,
    /// Batches the delivery link gave up on (retry budget exhausted).
    pub lost_batches: u64,
    /// Deepest any shard queue got, across every lifetime — the memory
    /// bound witness (≤ the high watermark with a well-behaved source).
    pub max_queue_depth: usize,
    /// Lifetime batches applied, as metered by the kill switch.
    pub total_applied: u64,
    /// Lifetime WAL bytes appended, as metered by the kill switch.
    pub total_wal_bytes: u64,
    /// Windows per week the scenario ran with.
    pub n_windows: u32,
    /// Coverage floor used for the evaluation.
    pub min_coverage: f64,
    /// Metrics snapshot from the final daemon lifetime plus harness
    /// totals: `fleetd_*`, `itc_delivery_*`, `hids_degraded_*` families
    /// and the daemon's structured event log.
    pub metrics: Registry,
}

/// Why a run failed.
#[derive(Debug)]
pub enum RunError {
    /// The daemon itself failed (I/O or configuration).
    Daemon(DaemonError),
    /// The harness hit its round or lifetime safety valve.
    Stalled(&'static str),
}

impl From<DaemonError> for RunError {
    fn from(e: DaemonError) -> Self {
        RunError::Daemon(e)
    }
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunError::Daemon(e) => write!(f, "daemon error: {e}"),
            RunError::Stalled(what) => write!(f, "harness stalled: {what}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A unique scratch directory under the system temp dir.
pub fn unique_run_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("fleetd-run-{}-{}-{}", tag, std::process::id(), n))
}

/// Drive `batches` through a daemon rooted at `dir` until every batch has
/// a terminal outcome, killing and recovering at each scheduled point.
///
/// The directory must be fresh (or hold a prior run of the same scenario
/// you intend to resume). Kill points are consumed in order; offsets and
/// batch counts are metered across restarts on one [`KillSwitch`].
pub fn run(
    dir: &Path,
    scenario: &DaemonScenario,
    batches: &[WindowBatch],
    kills: &[KillPoint],
) -> Result<DaemonRun, RunError> {
    // Original-order index per host, preserving ascending seq.
    let mut by_host: BTreeMap<u32, Vec<&WindowBatch>> = BTreeMap::new();
    for b in batches {
        by_host.entry(b.host).or_default().push(b);
    }

    let mut kill = KillSwitch::none();
    let mut kill_iter = kills.iter().copied();
    kill.rearm(kill_iter.next());

    // (host, seq) pairs with a terminal outcome: daemon completion, or
    // given up by the delivery link.
    let mut completed: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut lost: BTreeSet<(u32, u64)> = BTreeSet::new();

    let mut recovery = RecoveryTotals::default();
    let mut delivery_total = DeliveryStats::default();
    let mut max_queue_depth = 0usize;
    let mut rounds = 0u64;

    'lifetime: loop {
        recovery.lifetimes += 1;
        if recovery.lifetimes > scenario.max_lifetimes {
            return Err(RunError::Stalled("lifetime budget exhausted"));
        }
        let (mut daemon, rec) = Daemon::open(dir, scenario.daemon)?;
        if rec.snapshot_seq.is_some() {
            recovery.snapshots_loaded += 1;
        }
        recovery.snapshots_discarded += rec.snapshots_discarded;
        recovery.wal_replayed += rec.wal_replayed;
        recovery.wal_torn_bytes += rec.wal_torn_bytes;

        let mut queue: DeliveryQueue<WindowBatch> = DeliveryQueue::new(scenario.delivery);
        // Per-host cursor into its batch list: first batch without a
        // terminal outcome. Stop-and-wait: `in_flight` holds hosts whose
        // current batch is somewhere between the delivery queue and a
        // completion.
        let mut cursor: BTreeMap<u32, usize> = by_host
            .iter()
            .map(|(&h, list)| {
                let idx = list
                    .iter()
                    .position(|b| {
                        !completed.contains(&(b.host, b.seq)) && !lost.contains(&(b.host, b.seq))
                    })
                    .unwrap_or(list.len());
                (h, idx)
            })
            .collect();
        let mut in_flight: BTreeSet<u32> = BTreeSet::new();
        // Delivery attempts per in-flight batch, to detect retry-budget
        // exhaustion (the queue drops such batches internally).
        let mut attempts: BTreeMap<(u32, u64), u32> = BTreeMap::new();

        loop {
            rounds += 1;
            if rounds > scenario.max_rounds {
                return Err(RunError::Stalled("round budget exhausted"));
            }

            // Feed: one outstanding batch per host.
            let mut work_left = false;
            for (&host, &idx) in &cursor {
                let list = &by_host[&host];
                if idx < list.len() {
                    work_left = true;
                    if !in_flight.contains(&host) && queue.offer(list[idx].clone()) {
                        in_flight.insert(host);
                    }
                }
            }
            if !work_left && in_flight.is_empty() && queue.is_empty() && daemon.queued_total() == 0
            {
                // Quiescent: every batch has a terminal outcome.
                delivery_total = sum_delivery(delivery_total, queue.stats());
                max_queue_depth = max_queue_depth.max(daemon.max_queue_depth());
                let hosts: Vec<(u32, HostState)> = daemon
                    .hosts()
                    .into_iter()
                    .map(|(h, s)| (h, s.clone()))
                    .collect();
                let stats = *daemon.stats();
                let evaluation = evaluate(&hosts, scenario);
                let mut metrics = Registry::new();
                daemon.export_metrics(&mut metrics);
                delivery_total.export_metrics(&mut metrics, "daemon_link");
                export_recovery_totals(&recovery, &mut metrics);
                if let Some(eval) = &evaluation {
                    eval.export_metrics(&mut metrics);
                }
                return Ok(DaemonRun {
                    hosts,
                    evaluation,
                    stats,
                    delivery: delivery_total,
                    recovery,
                    lost_batches: lost.len() as u64,
                    max_queue_depth,
                    total_applied: kill.applied_batches(),
                    total_wal_bytes: kill.wal_bytes(),
                    n_windows: scenario.daemon.n_windows,
                    min_coverage: scenario.min_coverage,
                    metrics,
                });
            }

            // Deliver: the unreliable link pushes expired-timer batches at
            // the daemon, refusing (and re-arming) when the target shard
            // asserts backpressure.
            queue.pump(|b| {
                if daemon.shard_busy(b.host) {
                    *attempts.entry((b.host, b.seq)).or_insert(0) += 1;
                    return false;
                }
                match daemon.offer(b.clone()) {
                    Admit::Overflow => {
                        *attempts.entry((b.host, b.seq)).or_insert(0) += 1;
                        false
                    }
                    _ => true,
                }
            });

            // Reconcile retry-budget exhaustion: the queue has dropped any
            // batch whose attempts just reached the cap.
            attempts.retain(|&(host, seq), &mut n| {
                if n >= scenario.delivery.max_attempts {
                    lost.insert((host, seq));
                    if let Some(idx) = cursor.get_mut(&host) {
                        *idx += 1;
                    }
                    in_flight.remove(&host);
                    false
                } else {
                    true
                }
            });

            // Process: one daemon tick; a fired kill switch ends this
            // lifetime and recovery takes it from the top.
            match daemon.tick(&mut kill) {
                Ok(()) => {}
                Err(DaemonError::Killed) => {
                    recovery.kills += 1;
                    kill.rearm(kill_iter.next());
                    delivery_total = sum_delivery(delivery_total, queue.stats());
                    max_queue_depth = max_queue_depth.max(daemon.max_queue_depth());
                    continue 'lifetime;
                }
                Err(e) => return Err(e.into()),
            }

            // Acknowledge: completions advance cursors and free hosts.
            for c in daemon.take_completions() {
                completed.insert((c.host, c.seq));
                attempts.remove(&(c.host, c.seq));
                if let Some(idx) = cursor.get_mut(&c.host) {
                    let list = &by_host[&c.host];
                    if *idx < list.len() && list[*idx].seq == c.seq {
                        *idx += 1;
                        in_flight.remove(&c.host);
                    }
                }
            }

            queue.tick(1);
        }
    }
}

/// Harness-level recovery accounting, summed over every daemon lifetime
/// (the per-lifetime view is `fleetd_recovery_*` from `RecoveryReport`).
fn export_recovery_totals(rec: &RecoveryTotals, reg: &mut Registry) {
    reg.register_counter(
        "fleetd_harness_lifetimes_total",
        "Daemon lifetimes driven (1 = uninterrupted)",
    );
    reg.counter_add(
        "fleetd_harness_lifetimes_total",
        &[],
        u64::from(rec.lifetimes),
    );
    reg.register_counter("fleetd_harness_kills_total", "Kill-switch firings observed");
    reg.counter_add("fleetd_harness_kills_total", &[], u64::from(rec.kills));
    reg.register_counter(
        "fleetd_harness_snapshots_total",
        "Snapshots at recovery, by fate",
    );
    reg.counter_add(
        "fleetd_harness_snapshots_total",
        &[("fate", "loaded")],
        u64::from(rec.snapshots_loaded),
    );
    reg.counter_add(
        "fleetd_harness_snapshots_total",
        &[("fate", "discarded")],
        u64::from(rec.snapshots_discarded),
    );
    reg.register_counter(
        "fleetd_harness_wal_replayed_total",
        "WAL frames replayed into state across recoveries",
    );
    reg.counter_add("fleetd_harness_wal_replayed_total", &[], rec.wal_replayed);
    reg.register_counter(
        "fleetd_harness_wal_torn_bytes_total",
        "Torn WAL tail bytes truncated across recoveries",
    );
    reg.counter_add(
        "fleetd_harness_wal_torn_bytes_total",
        &[],
        rec.wal_torn_bytes,
    );
}

pub(crate) fn sum_delivery(mut acc: DeliveryStats, s: DeliveryStats) -> DeliveryStats {
    acc.enqueued += s.enqueued;
    acc.delivered += s.delivered;
    acc.retries += s.retries;
    acc.acknowledged += s.acknowledged;
    acc.rejected_batches += s.rejected_batches;
    acc.rejected_units += s.rejected_units;
    acc.expired_batches += s.expired_batches;
    acc.expired_units += s.expired_units;
    acc.evicted_batches += s.evicted_batches;
    acc.evicted_units += s.evicted_units;
    acc.queue_high_water = acc.queue_high_water.max(s.queue_high_water);
    acc
}

fn evaluate(hosts: &[(u32, HostState)], scenario: &DaemonScenario) -> Option<DegradedEvaluation> {
    evaluate_hosts(
        hosts,
        scenario.feature,
        scenario.daemon.n_windows as usize,
        scenario.min_coverage,
    )
}

/// [`evaluate`] without a [`DaemonScenario`]: the shared degraded-mode
/// evaluation every streaming harness (single daemon or cluster) runs over
/// its final host table. Keeping one implementation is what makes the
/// cross-harness byte-identity claims meaningful.
pub(crate) fn evaluate_hosts(
    hosts: &[(u32, HostState)],
    feature: FeatureKind,
    n_windows: usize,
    min_coverage: f64,
) -> Option<DegradedEvaluation> {
    if hosts.is_empty() {
        return None;
    }
    let pairs: Vec<(&WindowAccumulator, &WindowAccumulator)> =
        hosts.iter().map(|(_, s)| (&s.train, &s.test)).collect();
    let dataset = hids_core::degraded_dataset(feature, n_windows, &pairs).ok()?;
    let b_max = dataset
        .train
        .iter()
        .flatten()
        .map(|d| d.max())
        .fold(1.0f64, f64::max);
    let policy = Policy {
        grouping: Grouping::FullDiversity,
        heuristic: ThresholdHeuristic::P99,
    };
    let cfg = DegradedEvalConfig {
        base: EvalConfig {
            w: 0.5,
            sweep: AttackSweep::up_to(b_max),
        },
        min_coverage,
    };
    hids_core::evaluate_policy_degraded(&dataset, &policy, &cfg).ok()
}

fn status_name(s: HostStatus) -> &'static str {
    match s {
        HostStatus::Evaluated => "evaluated",
        HostStatus::LowCoverage => "low-coverage",
        HostStatus::Dark => "dark",
    }
}

/// The per-host output table — the artifact the crash-recovery contract
/// is stated over: two runs of the same scenario must render this
/// byte-identically regardless of where one of them was killed.
///
/// Floats use Rust's shortest-roundtrip `Display`, so equal strings mean
/// equal `f64`s bit-for-bit (modulo the sign of zero).
pub fn hosts_table(run: &DaemonRun) -> Table {
    hosts_table_titled(
        "daemon — per-host streaming evaluation",
        &run.hosts,
        run.evaluation.as_ref(),
        run.n_windows,
    )
}

/// [`hosts_table`] over raw parts, shared with the cluster harness so both
/// render the identical column set — the cluster determinism contract is
/// stated as byte-equality of this table's CSV across node counts.
pub(crate) fn hosts_table_titled(
    title: &str,
    hosts: &[(u32, HostState)],
    evaluation: Option<&DegradedEvaluation>,
    n_windows: u32,
) -> Table {
    let mut t = Table::new(
        title,
        &[
            "host",
            "last_seq",
            "status",
            "train_cov",
            "test_cov",
            "live_thresh",
            "live_alarms",
            "eval_thresh",
            "fp",
            "fn",
            "utility",
            "false_alarms",
        ],
    );
    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x}"));
    for (i, (host, st)) in hosts.iter().enumerate() {
        let user = evaluation.map(|e| &e.users[i]);
        let (status, train_cov, test_cov) = match user {
            Some(u) => (
                status_name(u.status).to_string(),
                format!("{}", u.train_coverage),
                format!("{}", u.test_coverage),
            ),
            None => {
                let n = n_windows as usize;
                (
                    "unevaluated".to_string(),
                    format!("{}", st.train.coverage(n)),
                    format!("{}", st.test.coverage(n)),
                )
            }
        };
        let perf = user.and_then(|u| u.perf);
        t.row(vec![
            host.to_string(),
            st.last_seq.to_string(),
            status,
            train_cov,
            test_cov,
            fmt_opt(st.threshold),
            st.live_alarms.to_string(),
            fmt_opt(perf.map(|p| p.threshold)),
            fmt_opt(perf.map(|p| p.fp)),
            fmt_opt(perf.map(|p| p.fn_rate)),
            fmt_opt(perf.map(|p| p.utility)),
            perf.map_or_else(|| "-".to_string(), |p| p.false_alarms.to_string()),
        ]);
    }
    t
}

/// The hosts CSV — the byte-identity witness for the recovery contract.
pub fn hosts_csv(run: &DaemonRun) -> String {
    hosts_table(run).to_csv()
}

/// Operational counters: durability, supervision, shedding, delivery.
/// Deliberately a separate table — these legitimately differ between an
/// uninterrupted run and a killed-and-recovered one (redeliveries become
/// duplicates); only the hosts table carries the determinism contract.
pub fn ops_table(run: &DaemonRun) -> Table {
    let mut t = Table::new("daemon — operational counters", &["counter", "value"]);
    let s = &run.stats;
    let rows: Vec<(&str, String)> = vec![
        ("lifetimes", run.recovery.lifetimes.to_string()),
        ("kills", run.recovery.kills.to_string()),
        ("snapshots_loaded", run.recovery.snapshots_loaded.to_string()),
        (
            "snapshots_discarded",
            run.recovery.snapshots_discarded.to_string(),
        ),
        ("wal_frames_replayed", run.recovery.wal_replayed.to_string()),
        ("wal_torn_bytes", run.recovery.wal_torn_bytes.to_string()),
        ("total_applied", run.total_applied.to_string()),
        ("total_wal_bytes", run.total_wal_bytes.to_string()),
        ("final_life_admitted", s.admitted.to_string()),
        ("final_life_applied", s.applied.to_string()),
        ("final_life_duplicates", s.duplicates.to_string()),
        ("final_life_quarantined", s.quarantined.to_string()),
        ("final_life_shed_overload", s.shed_overload.to_string()),
        ("final_life_shed_dark", s.shed_dark.to_string()),
        ("final_life_rejected", s.rejected.to_string()),
        ("final_life_breaker_trips", s.breaker_trips.to_string()),
        ("final_life_snapshots", s.snapshots_written.to_string()),
        ("delivery_enqueued", run.delivery.enqueued.to_string()),
        ("delivery_delivered", run.delivery.delivered.to_string()),
        ("delivery_retries", run.delivery.retries.to_string()),
        ("delivery_expired", run.delivery.expired_batches.to_string()),
        ("lost_batches", run.lost_batches.to_string()),
        ("max_queue_depth", run.max_queue_depth.to_string()),
        (
            "conservation_final_life",
            s.conservation_holds(0).to_string(),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

impl DaemonRun {
    /// Cross-check the run's own invariants (used by `repro daemon` and
    /// tests): final-lifetime conservation, and — when nothing was lost
    /// or shed — full application of every input window.
    pub fn check(&self) -> Result<(), String> {
        if !self.stats.conservation_holds(0) {
            return Err(format!(
                "conservation violated: admitted {} != accounted {}",
                self.stats.admitted,
                self.stats.accounted()
            ));
        }
        if self.lost_batches == 0
            && self.stats.quarantined == 0
            && self.stats.shed_overload == 0
            && self.stats.shed_dark == 0
            && self.recovery.lifetimes == 1
        {
            let expect = self.stats.admitted;
            let got = self.stats.applied + self.stats.duplicates;
            if expect != got {
                return Err(format!(
                    "clean run must resolve every admitted batch: {got} of {expect}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;
    use fleetd::QueueConfig;

    fn tiny_scenario() -> DaemonScenario {
        DaemonScenario {
            batch_windows: 168,
            daemon: DaemonConfig {
                n_shards: 3,
                snapshot_every: 16,
                queue: QueueConfig {
                    capacity: 64,
                    high: 48,
                    low: 16,
                    shed_after: 100_000,
                    quantum: 4,
                },
                ..DaemonConfig::default()
            },
            ..DaemonScenario::default()
        }
    }

    fn tiny_corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 9,
            n_weeks: 2,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn batches_cover_both_weeks_in_seq_order() {
        let corpus = tiny_corpus();
        let scenario = tiny_scenario();
        let batches = build_batches(&corpus, &scenario);
        // 672 windows / 168 per batch = 4 per week, 8 per host.
        assert_eq!(batches.len(), 9 * 8);
        let mut last_seq: BTreeMap<u32, u64> = BTreeMap::new();
        let mut windows: BTreeMap<u32, u64> = BTreeMap::new();
        for b in &batches {
            let prev = last_seq.insert(b.host, b.seq).unwrap_or(0);
            assert_eq!(b.seq, prev + 1, "per-host seqs are dense and ordered");
            *windows.entry(b.host).or_insert(0) += b.counts.len() as u64;
        }
        assert!(windows.values().all(|&w| w == 2 * 672));
    }

    #[test]
    fn clean_run_reaches_full_coverage() {
        let corpus = tiny_corpus();
        let scenario = tiny_scenario();
        let batches = build_batches(&corpus, &scenario);
        let dir = unique_run_dir("clean");
        let run = run(&dir, &scenario, &batches, &[]).unwrap();
        run.check().unwrap();
        assert_eq!(run.recovery.lifetimes, 1);
        assert_eq!(run.lost_batches, 0);
        assert_eq!(run.hosts.len(), 9);
        for (_, st) in &run.hosts {
            assert_eq!(st.train.len(), 672);
            assert_eq!(st.test.len(), 672);
            assert!(st.threshold.is_some());
        }
        let eval = run.evaluation.as_ref().unwrap();
        assert_eq!(eval.status_counts(), (9, 0, 0));
        assert_eq!(hosts_table(&run).len(), 9);
        assert!(!ops_table(&run).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_and_recover_matches_uninterrupted_csv() {
        let corpus = tiny_corpus();
        let scenario = tiny_scenario();
        let batches = build_batches(&corpus, &scenario);

        let ref_dir = unique_run_dir("ref");
        let reference = run(&ref_dir, &scenario, &batches, &[]).unwrap();
        let ref_csv = hosts_csv(&reference);
        std::fs::remove_dir_all(&ref_dir).unwrap();

        let kill_dir = unique_run_dir("killed");
        let killed = run(
            &kill_dir,
            &scenario,
            &batches,
            &[KillPoint::AfterBatches(reference.total_applied / 2)],
        )
        .unwrap();
        assert_eq!(killed.recovery.kills, 1);
        assert_eq!(killed.recovery.lifetimes, 2);
        assert_eq!(killed.lost_batches, 0);
        assert_eq!(hosts_csv(&killed), ref_csv);
        std::fs::remove_dir_all(&kill_dir).unwrap();
    }
}
