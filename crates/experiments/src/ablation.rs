//! Extensions: the ablations DESIGN.md calls out.
//!
//! * group count — the paper studied 2/3/5/8 groups and reported 8 best;
//! * grouping method — knee heuristic vs k-means vs quantile bands, plus
//!   the k-means "no natural clusters" probe (separation score);
//! * heuristic family — percentile vs mean+kσ vs utility-max;
//! * bin width — 5- vs 15-minute windows (the paper: conclusions hold).

use flowtab::FeatureKind;
use hids_core::{
    eval::evaluate_policy, EvalConfig, Grouping, PartialMethod, Policy, ThresholdHeuristic,
};
use tailstats::{kmeans_1d, separation_score};

use crate::data::{Corpus, CorpusConfig};
use crate::report::{fnum, Table};

/// Mean utility per group count (the partial-diversity ladder).
#[derive(Debug, Clone)]
pub struct GroupCountResult {
    /// `(label, groups, mean utility)` rows, including the two extremes.
    pub rows: Vec<(String, usize, f64)>,
}

/// Run the group-count ablation at the given FN weight.
pub fn group_count(corpus: &Corpus, feature: FeatureKind, w: f64) -> GroupCountResult {
    let ds = corpus.dataset(feature, 0);
    let config = EvalConfig {
        w,
        sweep: ds.default_sweep(),
    };
    let mut rows = Vec::new();
    let mut eval = |label: String, groups: usize, grouping: Grouping| {
        let policy = Policy {
            grouping,
            heuristic: ThresholdHeuristic::P99,
        };
        let e = evaluate_policy(&ds, &policy, &config);
        rows.push((label, groups, e.mean_utility()));
    };
    eval("homogeneous".into(), 1, Grouping::Homogeneous);
    for k in [2usize, 3, 5, 8] {
        let (top, bottom) = (k.div_ceil(2), k / 2);
        let grouping = if k == 1 {
            Grouping::Homogeneous
        } else {
            Grouping::Partial(PartialMethod::Knee {
                top_fraction: 0.15,
                top_groups: top,
                bottom_groups: bottom.max(1),
            })
        };
        eval(format!("{k}-partial (knee)"), k, grouping);
    }
    eval(
        "full diversity".into(),
        corpus.n_users(),
        Grouping::FullDiversity,
    );
    GroupCountResult { rows }
}

/// Render the group-count ladder.
pub fn group_count_table(r: &GroupCountResult) -> Table {
    let mut t = Table::new(
        "Ablation — mean utility vs number of groups (p99 heuristic)",
        &["policy", "groups", "mean utility"],
    );
    for (label, groups, u) in &r.rows {
        t.row(vec![label.clone(), groups.to_string(), fnum(*u)]);
    }
    t
}

/// Compare grouping methods at a fixed group count.
pub fn grouping_methods(corpus: &Corpus, feature: FeatureKind, w: f64, k: usize) -> Table {
    let ds = corpus.dataset(feature, 0);
    let config = EvalConfig {
        w,
        sweep: ds.default_sweep(),
    };
    let mut t = Table::new(
        &format!("Ablation — grouping method at {k} groups"),
        &["method", "mean utility", "populated groups"],
    );
    for (label, method) in [
        (
            "knee (paper)",
            PartialMethod::Knee {
                top_fraction: 0.15,
                top_groups: k.div_ceil(2),
                bottom_groups: (k / 2).max(1),
            },
        ),
        ("k-means (log)", PartialMethod::KMeans { k }),
        ("quantile bands", PartialMethod::QuantileBands { k }),
    ] {
        let policy = Policy {
            grouping: Grouping::Partial(method),
            heuristic: ThresholdHeuristic::P99,
        };
        let e = evaluate_policy(&ds, &policy, &config);
        t.row(vec![
            label.to_string(),
            fnum(e.mean_utility()),
            e.outcome.populated_groups().to_string(),
        ]);
    }
    t
}

/// The paper's negative k-means probe: is there natural cluster structure
/// in per-user q99 values? Returns `(k, separation score)` rows; scores
/// near the continuum baseline mean "no natural holes or boundaries".
pub fn kmeans_probe(corpus: &Corpus, feature: FeatureKind) -> Vec<(usize, f64)> {
    let q99 = corpus.q99(feature, 0);
    let logs: Vec<f64> = q99.iter().map(|&x| x.max(0.5).log10()).collect();
    let points: Vec<Vec<f64>> = logs.iter().map(|&x| vec![x]).collect();
    [2usize, 3, 5, 8]
        .iter()
        .map(|&k| {
            let r = kmeans_1d(&logs, k, 300);
            (k, separation_score(&points, &r))
        })
        .collect()
}

/// Render the k-means probe.
pub fn kmeans_probe_table(rows: &[(usize, f64)]) -> Table {
    let mut t = Table::new(
        "Ablation — k-means natural-cluster probe (log10 q99); low separation = no natural groups",
        &["k", "separation score"],
    );
    for (k, s) in rows {
        t.row(vec![k.to_string(), format!("{s:.3}")]);
    }
    t
}

/// Heuristic-family comparison under full diversity.
pub fn heuristic_family(corpus: &Corpus, feature: FeatureKind, w: f64) -> Table {
    let ds = corpus.dataset(feature, 0);
    let config = EvalConfig {
        w,
        sweep: ds.default_sweep(),
    };
    let sweep = ds.default_sweep();
    let mut t = Table::new(
        "Ablation — threshold heuristic family (full diversity)",
        &["heuristic", "mean utility", "mean FP", "mean FN"],
    );
    for (label, heuristic) in [
        ("p99".to_string(), ThresholdHeuristic::P99),
        ("p99.9".to_string(), ThresholdHeuristic::Percentile(0.999)),
        ("mean+3σ".to_string(), ThresholdHeuristic::MeanSigma(3.0)),
        (
            format!("utility-max w={w}"),
            ThresholdHeuristic::UtilityMax {
                w,
                sweep: sweep.clone(),
            },
        ),
        (
            "F-measure (1% prevalence)".to_string(),
            ThresholdHeuristic::FMeasure {
                prevalence: 0.01,
                sweep,
            },
        ),
    ] {
        let policy = Policy {
            grouping: Grouping::FullDiversity,
            heuristic,
        };
        let e = evaluate_policy(&ds, &policy, &config);
        let n = e.users.len() as f64;
        let fp = e.users.iter().map(|u| u.fp).sum::<f64>() / n;
        let fnr = e.users.iter().map(|u| u.fn_rate).sum::<f64>() / n;
        t.row(vec![label, fnum(e.mean_utility()), fnum(fp), fnum(fnr)]);
    }
    t
}

/// Bin-width ablation: rerun the headline comparison at 5-minute windows
/// (regenerates a corpus with the same seed but finer bins).
pub fn bin_width(corpus_cfg: &CorpusConfig, feature: FeatureKind, w: f64) -> Table {
    let mut t = Table::new(
        "Ablation — window width (mean utility, p99 heuristic)",
        &["window", "Homogeneous", "Full-Diversity", "8-Partial"],
    );
    for width in [900.0, 300.0] {
        let corpus = Corpus::generate(CorpusConfig {
            window_secs: width,
            n_weeks: 2,
            ..corpus_cfg.clone()
        });
        let ds = corpus.dataset(feature, 0);
        let config = EvalConfig {
            w,
            sweep: ds.default_sweep(),
        };
        let mut cells = vec![format!("{} min", width / 60.0)];
        for grouping in [
            Grouping::Homogeneous,
            Grouping::FullDiversity,
            Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
        ] {
            let e = evaluate_policy(
                &ds,
                &Policy {
                    grouping,
                    heuristic: ThresholdHeuristic::P99,
                },
                &config,
            );
            cells.push(fnum(e.mean_utility()));
        }
        t.row(cells);
    }
    t
}

/// Attack-duration ablation: the naive attacker's detection probability as
/// the campaign stretches over more windows (each extra window is another
/// chance for some user's benign traffic to push the sum over threshold).
pub fn attack_duration(corpus: &Corpus, feature: FeatureKind, attack_size: f64) -> Table {
    use attacksim::{detection_fraction, NaiveAttack};
    let ds = corpus.dataset(feature, 0);
    let windowing = corpus.config.windowing();
    let mut t = Table::new(
        &format!("Ablation — naive-attack duration (size {attack_size:.0})"),
        &["windows", "Homogeneous", "Full-Diversity", "8-Partial"],
    );
    for len in [1usize, 2, 4, 8, 16] {
        let attack = NaiveAttack::new(
            attacksim::business_hour_windows(windowing, 2, 10, len),
        );
        let mut cells = vec![len.to_string()];
        for grouping in [
            Grouping::Homogeneous,
            Grouping::FullDiversity,
            Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
        ] {
            let thresholds = Policy {
                grouping,
                heuristic: ThresholdHeuristic::P99,
            }
            .configure(&ds.train)
            .thresholds;
            let frac = detection_fraction(&ds.test_counts, &thresholds, attack_size, &attack);
            cells.push(fnum(frac));
        }
        t.row(cells);
    }
    t
}

/// ROC headroom: the detection rate each user *could* achieve at a 1% FP
/// budget (their own ROC curve) versus what the homogeneous threshold
/// actually delivers them — the per-user cost of the monoculture, in ROC
/// terms.
pub fn roc_headroom(corpus: &Corpus, feature: FeatureKind) -> Table {
    use hids_core::RocCurve;
    let ds = corpus.dataset(feature, 0);
    let sweep = ds.default_sweep();
    let homog = Policy {
        grouping: Grouping::Homogeneous,
        heuristic: ThresholdHeuristic::P99,
    }
    .configure(&ds.train);
    let t_global = homog.thresholds[0];

    // Each user's ROC is independent — compute them in parallel, keeping
    // user order so the summary statistics accumulate deterministically.
    let per_user = hids_core::par_map(&ds.train, |_, d| {
        let roc = RocCurve::compute(d, &sweep);
        (
            roc.detection_at_fp(0.01),
            1.0 - sweep.mean_fn(d, t_global),
            roc.auc(),
        )
    });
    let own_at_1pct: Vec<f64> = per_user.iter().map(|r| r.0).collect();
    let under_global: Vec<f64> = per_user.iter().map(|r| r.1).collect();
    let aucs: Vec<f64> = per_user.iter().map(|r| r.2).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    let mut t = Table::new(
        "Ablation — ROC headroom at a 1% FP budget",
        &["statistic", "value"],
    );
    t.row(vec![
        "mean detection (own threshold @1% FP)".into(),
        fnum(mean(&own_at_1pct)),
    ]);
    t.row(vec![
        "mean detection under global threshold".into(),
        fnum(mean(&under_global)),
    ]);
    t.row(vec!["mean per-user AUC".into(), fnum(mean(&aucs))]);
    let losers = own_at_1pct
        .iter()
        .zip(&under_global)
        .filter(|(own, global)| **own > **global + 1e-9)
        .count();
    t.row(vec![
        "users losing detection to the monoculture".into(),
        format!("{losers}/{}", ds.n_users()),
    ]);
    t
}

/// Check the separation-score baseline claim used by [`kmeans_probe`]:
/// synthetic well-separated blobs in the same log space score near 1.
pub fn blob_baseline() -> f64 {
    let mut values = Vec::new();
    for i in 0..100 {
        values.push(1.0 + f64::from(i % 10) * 0.001);
        values.push(4.0 + f64::from(i % 10) * 0.001);
    }
    let points: Vec<Vec<f64>> = values.iter().map(|&x| vec![x]).collect();
    let r = kmeans_1d(&values, 2, 200);
    separation_score(&points, &r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 60,
            n_weeks: 2,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn utility_improves_with_group_count() {
        let c = corpus();
        let r = group_count(&c, FeatureKind::TcpConnections, 0.5);
        let homog = r.rows.first().unwrap().2;
        let full = r.rows.last().unwrap().2;
        let eight = r.rows.iter().find(|r| r.1 == 8).unwrap().2;
        assert!(full >= homog);
        assert!(eight >= homog);
        assert!(
            (full - eight) <= (full - homog) + 1e-9,
            "8 groups closer to full diversity than monoculture is"
        );
    }

    #[test]
    fn population_has_no_natural_clusters_but_blobs_do() {
        let c = corpus();
        let probe = kmeans_probe(&c, FeatureKind::TcpConnections);
        let baseline = blob_baseline();
        for (k, score) in &probe {
            assert!(
                *score < baseline - 0.1,
                "k={k}: population separation {score} should sit well below blob baseline {baseline}"
            );
        }
    }

    #[test]
    fn ablation_tables_render() {
        let c = corpus();
        assert_eq!(
            group_count_table(&group_count(&c, FeatureKind::TcpConnections, 0.5)).len(),
            6
        );
        assert_eq!(grouping_methods(&c, FeatureKind::TcpConnections, 0.5, 8).len(), 3);
        assert_eq!(heuristic_family(&c, FeatureKind::TcpConnections, 0.4).len(), 5);
        assert_eq!(
            kmeans_probe_table(&kmeans_probe(&c, FeatureKind::TcpConnections)).len(),
            4
        );
    }

    #[test]
    fn longer_attacks_detected_more_often() {
        let c = corpus();
        let ds = c.dataset(FeatureKind::TcpConnections, 0);
        // A mid-sized attack: the population-median personal threshold.
        let mut q99s: Vec<f64> = ds.train.iter().map(|d| d.quantile(0.99)).collect();
        q99s.sort_by(|a, b| a.total_cmp(b));
        let size = q99s[q99s.len() / 2];
        let t = attack_duration(&c, FeatureKind::TcpConnections, size);
        assert_eq!(t.len(), 5);
        // Detection under full diversity is non-decreasing in duration.
        let csv = t.to_csv();
        let fractions: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse::<f64>().unwrap())
            .collect();
        for pair in fractions.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12, "{fractions:?}");
        }
    }

    #[test]
    fn monoculture_costs_most_users_roc_headroom() {
        let c = corpus();
        let t = roc_headroom(&c, FeatureKind::TcpConnections);
        assert_eq!(t.len(), 4);
        let csv = t.to_csv();
        let get = |row: usize| -> f64 {
            csv.lines()
                .nth(row + 1)
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        let own = get(0);
        let global = get(1);
        assert!(
            own > global,
            "own-threshold detection at 1% FP ({own}) beats the global threshold ({global})"
        );
    }

    #[test]
    fn bin_width_table_covers_both_widths() {
        let cfg = CorpusConfig {
            n_users: 20,
            n_weeks: 2,
            ..CorpusConfig::small()
        };
        let t = bin_width(&cfg, FeatureKind::TcpConnections, 0.5);
        assert_eq!(t.len(), 2);
    }
}
