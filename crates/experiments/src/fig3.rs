//! Figure 3: policy comparison on per-user utility.
//!
//! (a) boxplots of per-user utilities under Homogeneous / Full-Diversity /
//! 8-Partial with the utility-maximising heuristic at w = 0.4;
//! (b) population-mean utility as w sweeps 0.1..0.9 for the three
//! policies — the paper's "the benefit of diversity grows with the FN
//! weight" plot.
//!
//! Following the paper's methodology, results average the two train→test
//! splits (weeks 1→2 and 3→4).

use flowtab::FeatureKind;
use hids_core::{
    eval::evaluate_policy, EvalConfig, FeatureDataset, Grouping, PartialMethod, Policy,
    ThresholdHeuristic,
};
use tailstats::{bootstrap_ci, FiveNumber};

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// The three policies of the figure, in display order.
pub const POLICIES: [(&str, Grouping); 3] = [
    ("Homogeneous", Grouping::Homogeneous),
    ("Full-Diversity", Grouping::FullDiversity),
    ("8-Partial", Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
];

/// Per-policy utility distribution (Figure 3(a)).
#[derive(Debug, Clone)]
pub struct UtilityBox {
    /// Policy label.
    pub policy: &'static str,
    /// Per-user utilities, averaged over splits.
    pub utilities: Vec<f64>,
    /// Boxplot summary.
    pub summary: FiveNumber,
}

/// Figure 3(a) result.
#[derive(Debug, Clone)]
pub struct Fig3aResult {
    /// One box per policy.
    pub boxes: Vec<UtilityBox>,
    /// FN weight used.
    pub w: f64,
    /// Feature analysed.
    pub feature: FeatureKind,
}

/// Figure 3(b) result: mean utility per (w, policy).
#[derive(Debug, Clone)]
pub struct Fig3bResult {
    /// The sweep of FN weights.
    pub weights: Vec<f64>,
    /// `means[p][i]` = mean utility of policy `p` at `weights[i]`.
    pub means: Vec<Vec<f64>>,
}

fn utility_policy(grouping: Grouping, w: f64, ds: &FeatureDataset) -> Policy {
    Policy {
        grouping,
        heuristic: ThresholdHeuristic::UtilityMax {
            w,
            sweep: ds.default_sweep(),
        },
    }
}

/// Per-user utilities for one grouping at one w, averaged over splits.
fn utilities_for(corpus: &Corpus, feature: FeatureKind, grouping: Grouping, w: f64) -> Vec<f64> {
    let splits = corpus.splits();
    assert!(!splits.is_empty(), "corpus too short for train/test");
    let mut acc = vec![0.0f64; corpus.n_users()];
    for &train_week in &splits {
        let ds = corpus.dataset(feature, train_week);
        let config = EvalConfig {
            w,
            sweep: ds.default_sweep(),
        };
        let eval = evaluate_policy(&ds, &utility_policy(grouping, w, &ds), &config);
        for (a, u) in acc.iter_mut().zip(eval.users.iter()) {
            *a += u.utility;
        }
    }
    for a in &mut acc {
        *a /= splits.len() as f64;
    }
    acc
}

/// Run Figure 3(a): boxplots at w = 0.4.
pub fn run_a(corpus: &Corpus, feature: FeatureKind, w: f64) -> Fig3aResult {
    let boxes = POLICIES
        .iter()
        .map(|&(label, grouping)| {
            let utilities = utilities_for(corpus, feature, grouping, w);
            let summary = FiveNumber::from_samples(&utilities);
            UtilityBox {
                policy: label,
                utilities,
                summary,
            }
        })
        .collect();
    Fig3aResult { boxes, w, feature }
}

/// Run Figure 3(b): mean utility vs w.
///
/// Thresholds come from the operators' fixed 99th-percentile heuristic and
/// only the *evaluation weight* sweeps — the reading of the paper's figure
/// consistent with its monotonically declining curves (a per-w re-optimised
/// homogeneous threshold would collapse towards zero at large w and keep
/// utility high; the paper's homogeneous curve instead keeps its FN-heavy
/// threshold and pays for it as w grows).
pub fn run_b(corpus: &Corpus, feature: FeatureKind, weights: &[f64]) -> Fig3bResult {
    let splits = corpus.splits();
    assert!(!splits.is_empty(), "corpus too short for train/test");
    let means = POLICIES
        .iter()
        .map(|&(_, grouping)| {
            let policy = Policy {
                grouping,
                heuristic: ThresholdHeuristic::P99,
            };
            // FP and FN are independent of w; evaluate once per split and
            // recombine per weight.
            let mut fp_fn: Vec<(f64, f64)> = vec![(0.0, 0.0); corpus.n_users()];
            for &train_week in &splits {
                let ds = corpus.dataset(feature, train_week);
                let config = EvalConfig {
                    w: 0.5,
                    sweep: ds.default_sweep(),
                };
                let eval = evaluate_policy(&ds, &policy, &config);
                for (acc, u) in fp_fn.iter_mut().zip(&eval.users) {
                    acc.0 += u.fp / splits.len() as f64;
                    acc.1 += u.fn_rate / splits.len() as f64;
                }
            }
            weights
                .iter()
                .map(|&w| {
                    fp_fn
                        .iter()
                        .map(|&(fp, fnr)| 1.0 - (w * fnr + (1.0 - w) * fp))
                        .sum::<f64>()
                        / fp_fn.len() as f64
                })
                .collect()
        })
        .collect();
    Fig3bResult {
        weights: weights.to_vec(),
        means,
    }
}

/// The paper's weight grid 0.1..=0.9.
pub fn paper_weights() -> Vec<f64> {
    (1..=9).map(|i| f64::from(i) / 10.0).collect()
}

/// Render Figure 3(a) as a boxplot-statistics table (the mean carries a
/// 95% bootstrap confidence interval).
pub fn table_a(r: &Fig3aResult) -> Table {
    let mut t = Table::new(
        &format!(
            "Figure 3(a) — end-host utility boxplots (utility heuristic, w={}, {})",
            r.w,
            r.feature.name()
        ),
        &["policy", "min", "q1", "median", "q3", "max", "mean", "mean 95% CI"],
    );
    for b in &r.boxes {
        let s = &b.summary;
        let ci = bootstrap_ci(
            &b.utilities,
            |v| v.iter().sum::<f64>() / v.len() as f64,
            1000,
            0.95,
            0xC1,
        );
        t.row(vec![
            b.policy.to_string(),
            fnum(s.min),
            fnum(s.q1),
            fnum(s.median),
            fnum(s.q3),
            fnum(s.max),
            fnum(s.mean),
            format!("[{} {}]", fnum(ci.lo), fnum(ci.hi)),
        ]);
    }
    t
}

/// Render Figure 3(b) as a (w × policy) table.
pub fn table_b(r: &Fig3bResult) -> Table {
    let mut t = Table::new(
        "Figure 3(b) — mean utility vs FN weight w",
        &["w", "Homogeneous", "Full-Diversity", "8-Partial"],
    );
    for (i, &w) in r.weights.iter().enumerate() {
        t.row(vec![
            format!("{w:.1}"),
            fnum(r.means[0][i]),
            fnum(r.means[1][i]),
            fnum(r.means[2][i]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 60,
            n_weeks: 2,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn diversity_dominates_homogeneous_at_w04() {
        let c = corpus();
        let r = run_a(&c, FeatureKind::TcpConnections, 0.4);
        assert_eq!(r.boxes.len(), 3);
        let homog = r.boxes[0].summary.mean;
        let full = r.boxes[1].summary.mean;
        let partial = r.boxes[2].summary.mean;
        assert!(
            full > homog,
            "full diversity mean utility {full} > homogeneous {homog}"
        );
        assert!(
            partial > homog,
            "8-partial {partial} > homogeneous {homog}"
        );
        assert!(
            (full - partial).abs() < (full - homog).abs() + 0.05,
            "partial close to full"
        );
    }

    #[test]
    fn gap_grows_with_w() {
        let c = corpus();
        let r = run_b(&c, FeatureKind::TcpConnections, &[0.1, 0.5, 0.9]);
        let gap = |i: usize| r.means[1][i] - r.means[0][i];
        assert!(
            gap(2) > gap(0),
            "gap at w=0.9 ({}) > gap at w=0.1 ({})",
            gap(2),
            gap(0)
        );
    }

    #[test]
    fn utilities_in_unit_interval() {
        let c = corpus();
        let r = run_a(&c, FeatureKind::UdpConnections, 0.4);
        for b in &r.boxes {
            assert!(b.utilities.iter().all(|&u| (0.0..=1.0).contains(&u)));
            assert_eq!(b.utilities.len(), c.n_users());
        }
    }

    #[test]
    fn tables_render() {
        let c = corpus();
        let a = run_a(&c, FeatureKind::TcpConnections, 0.4);
        assert_eq!(table_a(&a).len(), 3);
        let b = run_b(&c, FeatureKind::TcpConnections, &[0.2, 0.8]);
        assert_eq!(table_b(&b).len(), 2);
    }
}
