//! Figure 1: tail diversity across features.
//!
//! For each of the six features, the per-user 99th and 99.9th percentile
//! values of the training week, sorted ascending — the curves of
//! Fig. 1(a–f). The headline statistic is the *span in decades* between the
//! lightest and heaviest user, which the paper reports as 3–4 orders of
//! magnitude for five features and ~2 for DNS.

use flowtab::FeatureKind;
use tailstats::EmpiricalDist;

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// One feature's sorted threshold curves.
#[derive(Debug, Clone)]
pub struct FeatureCurve {
    /// The feature.
    pub feature: FeatureKind,
    /// `(user_id, q99, q999)` sorted ascending by q99.
    pub points: Vec<(u32, f64, f64)>,
}

impl FeatureCurve {
    /// Span of the q99 curve in decades (max/min over users, with values
    /// floored at 1 to keep the ratio meaningful for count data).
    pub fn span_decades(&self) -> f64 {
        let lo = self
            .points
            .iter()
            .map(|p| p.1.max(1.0))
            .fold(f64::INFINITY, f64::min);
        let hi = self.points.iter().map(|p| p.1.max(1.0)).fold(0.0, f64::max);
        (hi / lo).log10()
    }

    /// Median over users of q999/q99 (how far above the 99th the 99.9th
    /// sits).
    pub fn median_tail_ratio(&self) -> f64 {
        let mut ratios: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.2.max(1.0) / p.1.max(1.0))
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios[ratios.len() / 2]
    }
}

/// The Figure-1 result across all six features.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// One curve per feature.
    pub curves: Vec<FeatureCurve>,
    /// Training week used.
    pub week: usize,
}

/// Run the Figure-1 analysis on a corpus training week.
pub fn run(corpus: &Corpus, week: usize) -> Fig1Result {
    let curves = FeatureKind::ALL
        .iter()
        .map(|&feature| {
            let mut points: Vec<(u32, f64, f64)> = corpus
                .weeks
                .iter()
                .enumerate()
                .map(|(u, w)| {
                    let d = EmpiricalDist::from_counts(&w[week].feature(feature));
                    (u as u32, d.quantile(0.99), d.quantile(0.999))
                })
                .collect();
            points.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            FeatureCurve { feature, points }
        })
        .collect();
    Fig1Result { curves, week }
}

/// Render the summary table (one row per feature).
pub fn summary_table(r: &Fig1Result) -> Table {
    let mut t = Table::new(
        "Figure 1 — tail diversity (per-user 99th/99.9th percentile thresholds)",
        &[
            "feature",
            "min q99",
            "median q99",
            "max q99",
            "span (decades)",
            "median q999/q99",
        ],
    );
    for c in &r.curves {
        let q99s: Vec<f64> = c.points.iter().map(|p| p.1).collect();
        let d = EmpiricalDist::from_samples(q99s);
        t.row(vec![
            c.feature.name().to_string(),
            fnum(d.min()),
            fnum(d.quantile(0.5)),
            fnum(d.max()),
            format!("{:.2}", c.span_decades()),
            format!("{:.2}", c.median_tail_ratio()),
        ]);
    }
    t
}

/// Heaviness-concentration supplement to Figure 1: Gini coefficient of the
/// per-user q99 levels and the share of aggregate tail weight held by the
/// top 15% of users (the knee the paper's grouping heuristic splits at).
pub fn concentration_table(r: &Fig1Result) -> Table {
    let mut t = Table::new(
        "Figure 1 supplement — heaviness concentration per feature",
        &["feature", "Gini(q99)", "top-15% share", "top-15%/median ratio"],
    );
    for c in &r.curves {
        let q99s: Vec<f64> = c.points.iter().map(|p| p.1).collect();
        let gini = tailstats::gini(&q99s);
        let lorenz = tailstats::lorenz_curve(&q99s);
        // Share of total q99 mass held by the top 15% of users.
        let idx = ((lorenz.len() - 1) as f64 * 0.85).round() as usize;
        let top15_share = 1.0 - lorenz[idx].1;
        let median = EmpiricalDist::from_samples(q99s.clone()).quantile(0.5).max(1.0);
        let top15_mean = {
            let n_top = (q99s.len() * 15 / 100).max(1);
            let mut sorted = q99s;
            sorted.sort_by(|a, b| b.total_cmp(a));
            sorted[..n_top].iter().sum::<f64>() / n_top as f64
        };
        t.row(vec![
            c.feature.name().to_string(),
            format!("{gini:.3}"),
            format!("{top15_share:.3}"),
            fnum(top15_mean / median),
        ]);
    }
    t
}

/// Full per-user curve as CSV-ready table (for plotting).
pub fn curve_table(c: &FeatureCurve) -> Table {
    let mut t = Table::new(
        &format!("Figure 1 curve — {}", c.feature.name()),
        &["rank", "user", "q99", "q999"],
    );
    for (rank, (user, q99, q999)) in c.points.iter().enumerate() {
        t.row(vec![
            rank.to_string(),
            user.to_string(),
            fnum(*q99),
            fnum(*q999),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    #[test]
    fn curves_are_sorted_and_complete() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let r = run(&corpus, 0);
        assert_eq!(r.curves.len(), 6);
        for c in &r.curves {
            assert_eq!(c.points.len(), corpus.n_users());
            assert!(c.points.windows(2).all(|p| p[0].1 <= p[1].1));
            // q999 >= q99 pointwise.
            assert!(c.points.iter().all(|p| p.2 >= p.1));
        }
    }

    #[test]
    fn tcp_span_exceeds_dns_span() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 120,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0);
        let span = |k: FeatureKind| {
            r.curves
                .iter()
                .find(|c| c.feature == k)
                .unwrap()
                .span_decades()
        };
        assert!(
            span(FeatureKind::TcpConnections) > span(FeatureKind::DnsConnections),
            "paper: DNS varies over fewer decades"
        );
        assert!(span(FeatureKind::TcpConnections) >= 1.5);
    }

    #[test]
    fn concentration_shows_the_knee() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 120,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0);
        let t = concentration_table(&r);
        assert_eq!(t.len(), 6);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let mut cells = line.split(',');
            let _name = cells.next().unwrap();
            let gini: f64 = cells.next().unwrap().parse().unwrap();
            let share: f64 = cells.next().unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&gini));
            // The top 15% hold well over 15% of aggregate tail weight.
            assert!(share > 0.3, "top-15% share {share} in {line}");
        }
    }

    #[test]
    fn tables_render() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 10,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, 0);
        let t = summary_table(&r);
        assert_eq!(t.len(), 6);
        let ct = curve_table(&r.curves[0]);
        assert_eq!(ct.len(), 10);
        assert!(ct.to_csv().lines().count() == 11);
    }
}
