//! Clustered-daemon scenario: the `daemon` harness promoted across a wire
//! boundary — a coordinator routes corpus traffic to N `fleetd` worker
//! nodes over a simulated lossy link, survives silent node deaths and
//! whole-process kills, and merges the per-node host tables into one
//! fleet evaluation.
//!
//! The determinism contract extends the single-daemon one: for a fixed
//! corpus and scenario, the final hosts CSV (and the degraded-evaluation
//! metrics derived from it) is byte-identical across node counts *and*
//! across any seeded kill schedule — node kills, process kills, torn
//! journal writes, dropped/duplicated/reordered/corrupted frames. The
//! argument has three legs:
//!
//! 1. stop-and-wait per host: at most one batch per host is ever
//!    unacknowledged, so retries cannot reorder a host's sequence;
//! 2. seq-deduped idempotent apply on every node: redelivery at or below
//!    a host's high-water mark is a no-op;
//! 3. rewind-on-handoff: when a host moves to a surviving node, the
//!    harness withdraws its in-flight batches and restarts it from
//!    sequence 1 — the new owner replays the identical prefix, so the
//!    host's final state is a pure function of its batch list.
//!
//! Batches routed to a dead-but-undetected node simply vanish on the
//! wire; the delivery queue's decorrelated-jitter retry keeps re-offering
//! them until the heartbeat detector declares the node dead, the journal
//! records the rebalance, and the host re-emerges on a survivor.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use faultsim::{ClusterKillPoint, LinkFaultLog};
use fleetd::{
    Cluster, ClusterConfig, ClusterKillSwitch, ClusterStats, DaemonError, DarkEpisode, HostState,
    WindowBatch, WireStats,
};
use flowtab::FeatureKind;
use hids_core::degraded::DegradedEvaluation;
use hids_metrics::{Registry, RenderOptions};
use itconsole::{DeliveryConfig, DeliveryQueue, DeliveryStats};

use crate::daemon::{evaluate_hosts, hosts_table_titled, sum_delivery, RunError};
use crate::report::Table;

/// Everything a cluster run needs besides the corpus and a directory.
#[derive(Debug, Clone)]
pub struct ClusterScenario {
    /// Feature streamed to the cluster.
    pub feature: FeatureKind,
    /// Windows per batch (shared with the single-daemon harness).
    pub batch_windows: usize,
    /// Hosts whose first test-week batch is poisoned.
    pub poison_hosts: Vec<u32>,
    /// Coverage floor for the final degraded evaluation.
    pub min_coverage: f64,
    /// Cluster topology, heartbeat discipline, and link faults.
    pub cluster: ClusterConfig,
    /// Source-side delivery link configuration (the coordinator's ARQ).
    pub delivery: DeliveryConfig,
    /// Safety valve on harness rounds before declaring a stall.
    pub max_rounds: u64,
    /// Safety valve on process lifetimes (1 + number of recoveries).
    pub max_lifetimes: u32,
}

impl Default for ClusterScenario {
    fn default() -> Self {
        Self {
            feature: FeatureKind::TcpConnections,
            batch_windows: 96,
            poison_hosts: Vec::new(),
            min_coverage: 0.1,
            cluster: ClusterConfig::default(),
            delivery: DeliveryConfig {
                capacity: 512,
                // A batch routed to a silently-dead node gets no ack until
                // the heartbeat detector (timeout + one rebalance tick)
                // catches up, and may then be caught in a second death.
                // The budget must absorb several such windows; tests
                // assert `lost_batches == 0`.
                max_attempts: 64,
                // Base comfortably above the round-trip (2 × latency + a
                // couple of processing ticks): a healthy ack always
                // arrives before the first retry fires, so retransmission
                // only kicks in when something was actually lost.
                backoff_base: 8,
                jitter_seed: Some(0x5eed_c157),
            },
            max_rounds: 2_000_000,
            max_lifetimes: 64,
        }
    }
}

/// Aggregated recovery evidence across a cluster run's process restarts.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClusterRecoveryTotals {
    /// Process lifetimes (1 for an uninterrupted run).
    pub lifetimes: u32,
    /// Kill-switch firings observed.
    pub kills: u32,
    /// Cluster snapshots successfully loaded across recoveries.
    pub cluster_snapshots_loaded: u32,
    /// Damaged cluster snapshots skipped across recoveries.
    pub cluster_snapshots_discarded: u32,
    /// Assignment events replayed from the cluster journal.
    pub journal_events: u64,
    /// Torn cluster-journal tail bytes tolerated across recoveries.
    pub journal_torn_bytes: u64,
    /// Node snapshots successfully loaded across recoveries.
    pub node_snapshots_loaded: u32,
    /// Damaged node snapshots skipped across recoveries.
    pub node_snapshots_discarded: u32,
    /// Node WAL frames replayed into state across recoveries.
    pub node_wal_replayed: u64,
    /// Torn node WAL tail bytes truncated across recoveries.
    pub node_wal_torn_bytes: u64,
}

/// The result of driving one cluster scenario to quiescence.
#[derive(Debug)]
pub struct ClusterRun {
    /// Final merged per-host state over the full host universe, ordered
    /// by host id (hosts that never reached a live node render default).
    pub hosts: Vec<(u32, HostState)>,
    /// Degraded evaluation over the final merged host table.
    pub evaluation: Option<DegradedEvaluation>,
    /// Cluster counters from the final lifetime.
    pub stats: ClusterStats,
    /// Source-side delivery counters summed over lifetimes.
    pub delivery: DeliveryStats,
    /// Restart/recovery evidence summed over lifetimes.
    pub recovery: ClusterRecoveryTotals,
    /// Wire-decoder statistics from the final lifetime.
    pub wire: WireStats,
    /// Link-fault accounting from the final lifetime.
    pub links: LinkFaultLog,
    /// Every dark window observed, across all lifetimes.
    pub dark_episodes: Vec<DarkEpisode>,
    /// Degraded evaluation captured *during* the first dark window (at
    /// the recorded cumulative tick): the coverage-accounting witness
    /// that a dead node's hosts surface as `Dark`, not as silent gaps.
    pub dark_evaluation: Option<(u64, DegradedEvaluation)>,
    /// Heartbeat-timeout death declarations, summed over lifetimes.
    pub node_deaths_total: u64,
    /// Journaled rebalances, summed over lifetimes.
    pub rebalances_total: u64,
    /// Hosts moved by rebalances, summed over lifetimes.
    pub hosts_moved_total: u64,
    /// Batches the delivery link gave up on (retry budget exhausted).
    pub lost_batches: u64,
    /// Batches applied across every node WAL, metered by the kill switch.
    pub total_applied: u64,
    /// WAL bytes appended (node WALs + cluster journal), metered by the
    /// kill switch.
    pub total_wal_bytes: u64,
    /// Cumulative cluster ticks across every lifetime.
    pub total_ticks: u64,
    /// Windows per week the scenario ran with.
    pub n_windows: u32,
    /// Coverage floor used for the evaluation.
    pub min_coverage: f64,
    /// Metrics snapshot: `fleetd_cluster_*` operational families from the
    /// final lifetime, harness recovery totals, delivery counters, and
    /// the `hids_degraded_*` evaluation families.
    pub metrics: Registry,
}

/// Drive `batches` through a cluster rooted at `dir` until every batch
/// has a terminal outcome, surviving every scheduled kill.
///
/// `kills` mixes silent node deaths (armed once, fired by cumulative
/// cluster tick) with process kills (consumed in order, metered across
/// restarts on the shared [`ClusterKillSwitch::process`] switch — so a
/// WAL-byte kill can land inside a cluster-journal rebalance record,
/// which is exactly the torn-handoff case recovery must survive).
pub fn run(
    dir: &Path,
    scenario: &ClusterScenario,
    batches: &[WindowBatch],
    kills: &[ClusterKillPoint],
) -> Result<ClusterRun, RunError> {
    let mut by_host: BTreeMap<u32, Vec<&WindowBatch>> = BTreeMap::new();
    for b in batches {
        by_host.entry(b.host).or_default().push(b);
    }
    let universe: Vec<u32> = by_host.keys().copied().collect();

    let mut node_kills = Vec::new();
    let mut process_kills = Vec::new();
    for k in kills {
        match *k {
            ClusterKillPoint::Node { node, at_tick } => node_kills.push((node, at_tick)),
            ClusterKillPoint::Process(p) => process_kills.push(p),
        }
    }
    let mut kill = ClusterKillSwitch::new(node_kills);
    let mut kill_iter = process_kills.into_iter();
    kill.process.rearm(kill_iter.next());

    // Batches given up by the delivery link, permanent across lifetimes.
    let mut lost: BTreeSet<(u32, u64)> = BTreeSet::new();

    let mut recovery = ClusterRecoveryTotals::default();
    let mut delivery_total = DeliveryStats::default();
    let mut dark_episodes: Vec<DarkEpisode> = Vec::new();
    let mut dark_evaluation: Option<(u64, DegradedEvaluation)> = None;
    let mut node_deaths_total = 0u64;
    let mut rebalances_total = 0u64;
    let mut hosts_moved_total = 0u64;
    let mut rounds = 0u64;

    'lifetime: loop {
        recovery.lifetimes += 1;
        if recovery.lifetimes > scenario.max_lifetimes {
            return Err(RunError::Stalled("lifetime budget exhausted"));
        }
        let (mut cluster, rec) = match Cluster::open(dir, scenario.cluster, &universe, &mut kill) {
            Ok(x) => x,
            // The bootstrap journal append is itself killable.
            Err(DaemonError::Killed) => {
                recovery.kills += 1;
                kill.process.rearm(kill_iter.next());
                continue 'lifetime;
            }
            Err(e) => return Err(e.into()),
        };
        if rec.snapshot_seq.is_some() {
            recovery.cluster_snapshots_loaded += 1;
        }
        recovery.cluster_snapshots_discarded += rec.snapshots_discarded;
        recovery.journal_events += rec.journal_events;
        recovery.journal_torn_bytes += rec.journal_torn_bytes;
        for (_, report) in &rec.node_reports {
            if report.snapshot_seq.is_some() {
                recovery.node_snapshots_loaded += 1;
            }
            recovery.node_snapshots_discarded += report.snapshots_discarded;
            recovery.node_wal_replayed += report.wal_replayed;
            recovery.node_wal_torn_bytes += report.wal_torn_bytes;
        }

        let mut queue: DeliveryQueue<WindowBatch> = DeliveryQueue::new(scenario.delivery);
        // Unlike the single-daemon harness, completions do NOT persist
        // across lifetimes: after a process kill, every host is redriven
        // from its first batch. Recovered nodes answer the already-applied
        // prefix with `Duplicate` acks (cheap), and hosts whose rebalance
        // was torn out of the journal get the full replay their new owner
        // actually needs. Correctness never depends on harness memory.
        let mut completed: BTreeSet<(u32, u64)> = BTreeSet::new();
        let mut cursor: BTreeMap<u32, usize> = by_host
            .iter()
            .map(|(&h, list)| (h, first_pending(list, &completed, &lost)))
            .collect();
        let mut in_flight: BTreeSet<u32> = BTreeSet::new();
        let mut attempts: BTreeMap<(u32, u64), u32> = BTreeMap::new();

        loop {
            rounds += 1;
            if rounds > scenario.max_rounds {
                return Err(RunError::Stalled("round budget exhausted"));
            }

            // Feed: one outstanding batch per host.
            let mut work_left = false;
            for (&host, &idx) in &cursor {
                let list = &by_host[&host];
                if idx < list.len() {
                    work_left = true;
                    if !in_flight.contains(&host) && queue.offer(list[idx].clone()) {
                        in_flight.insert(host);
                    }
                }
            }
            // A silently-killed node is invisible to the coordinator until
            // its heartbeat timeout expires; quiescing inside that window
            // would drop the dead node's hosts from the merged table. The
            // harness has the god view the coordinator lacks, so it keeps
            // ticking until every fired kill has been detected (and the
            // resulting rebalance redelivered the moved hosts).
            let undetected_kill = cluster
                .assign()
                .live
                .iter()
                .any(|&n| kill.node_is_dead(n));
            if !work_left
                && in_flight.is_empty()
                && queue.is_empty()
                && cluster.queued_total() == 0
                && cluster.settled()
                && !undetected_kill
            {
                // Quiescent: every batch acked or lost, no handoff
                // pending, every live node drained.
                delivery_total = sum_delivery(delivery_total, queue.stats());
                let s = *cluster.stats();
                node_deaths_total += s.node_deaths;
                rebalances_total += s.rebalances;
                hosts_moved_total += s.hosts_moved;
                let hosts = merged_hosts(&cluster, &universe);
                let n_windows = scenario.cluster.node.n_windows;
                let evaluation = evaluate_hosts(
                    &hosts,
                    scenario.feature,
                    n_windows as usize,
                    scenario.min_coverage,
                );
                let mut metrics = Registry::new();
                cluster.export_metrics(&mut metrics);
                delivery_total.export_metrics(&mut metrics, "cluster_link");
                export_cluster_recovery_totals(&recovery, &mut metrics);
                if let Some(eval) = &evaluation {
                    eval.export_metrics(&mut metrics);
                }
                return Ok(ClusterRun {
                    hosts,
                    evaluation,
                    stats: s,
                    delivery: delivery_total,
                    recovery,
                    wire: cluster.wire_stats(),
                    links: cluster.link_log(),
                    dark_episodes,
                    dark_evaluation,
                    node_deaths_total,
                    rebalances_total,
                    hosts_moved_total,
                    lost_batches: lost.len() as u64,
                    total_applied: kill.process.applied_batches(),
                    total_wal_bytes: kill.process.wal_bytes(),
                    total_ticks: kill.ticks(),
                    n_windows,
                    min_coverage: scenario.min_coverage,
                    metrics,
                });
            }

            // Transmit: putting a frame on the wire is not delivery — the
            // sink always reports failure and only an ack (below) retires
            // a batch, so anything the wire loses is retransmitted on the
            // decorrelated-jitter schedule.
            queue.pump(|b| {
                *attempts.entry((b.host, b.seq)).or_insert(0) += 1;
                let _ = cluster.transmit(b);
                false
            });

            // Reconcile retry-budget exhaustion.
            attempts.retain(|&(host, seq), &mut n| {
                if n >= scenario.delivery.max_attempts {
                    lost.insert((host, seq));
                    if let Some(idx) = cursor.get_mut(&host) {
                        *idx += 1;
                    }
                    in_flight.remove(&host);
                    false
                } else {
                    true
                }
            });

            // Advance the cluster one tick; a fired kill switch ends this
            // lifetime and recovery takes it from the top.
            match cluster.tick(&mut kill) {
                Ok(()) => {}
                Err(DaemonError::Killed) => {
                    recovery.kills += 1;
                    kill.process.rearm(kill_iter.next());
                    delivery_total = sum_delivery(delivery_total, queue.stats());
                    let s = cluster.stats();
                    node_deaths_total += s.node_deaths;
                    rebalances_total += s.rebalances;
                    hosts_moved_total += s.hosts_moved;
                    continue 'lifetime;
                }
                Err(e) => return Err(e.into()),
            }

            // Acknowledge: coordinator-confirmed completions retire the
            // queued batch, advance cursors, and free hosts.
            for c in cluster.take_completions() {
                completed.insert((c.host, c.seq));
                attempts.remove(&(c.host, c.seq));
                queue.acknowledge(|b| b.host == c.host && b.seq == c.seq);
                if let Some(idx) = cursor.get_mut(&c.host) {
                    let list = &by_host[&c.host];
                    if *idx < list.len() && list[*idx].seq == c.seq {
                        *idx += 1;
                        in_flight.remove(&c.host);
                    }
                }
            }

            // Rebalance: every moved host rewinds to its first batch. The
            // new owner has none of its history, and only redelivery from
            // sequence 1 reconstructs the same applied prefix a
            // never-moved host would have.
            let handoffs = cluster.take_handoffs();
            if !handoffs.is_empty() {
                let mut moved_hosts: BTreeSet<u32> = BTreeSet::new();
                for h in &handoffs {
                    for &(host, _) in &h.moved {
                        moved_hosts.insert(host);
                    }
                }
                completed.retain(|&(h, _)| !moved_hosts.contains(&h));
                attempts.retain(|&(h, _), _| !moved_hosts.contains(&h));
                queue.evict(|b| moved_hosts.contains(&b.host));
                for &host in &moved_hosts {
                    in_flight.remove(&host);
                    if let Some(idx) = cursor.get_mut(&host) {
                        *idx = first_pending(&by_host[&host], &completed, &lost);
                    }
                }
            }

            // Dark windows: record every episode; on the first one,
            // evaluate the merged table mid-flight so the dead node's
            // hosts demonstrably surface as `Dark` through the degraded
            // coverage accounting rather than disappearing.
            let episodes = cluster.take_dark_episodes();
            if !episodes.is_empty() && dark_evaluation.is_none() {
                let hosts = merged_hosts(&cluster, &universe);
                let at_tick = episodes[0].at_tick;
                if let Some(eval) = evaluate_hosts(
                    &hosts,
                    scenario.feature,
                    scenario.cluster.node.n_windows as usize,
                    scenario.min_coverage,
                ) {
                    dark_evaluation = Some((at_tick, eval));
                }
            }
            dark_episodes.extend(episodes);

            queue.tick(1);
        }
    }
}

/// First index into `list` without a terminal outcome.
fn first_pending(
    list: &[&WindowBatch],
    completed: &BTreeSet<(u32, u64)>,
    lost: &BTreeSet<(u32, u64)>,
) -> usize {
    list.iter()
        .position(|b| !completed.contains(&(b.host, b.seq)) && !lost.contains(&(b.host, b.seq)))
        .unwrap_or(list.len())
}

/// The merged host table over the full universe: live-node state where a
/// host is reachable, a default (zero-coverage ⇒ `Dark`) row where its
/// owner is dead or pending rebalance. Keeping the row set fixed is what
/// lets two runs' CSVs be compared byte-for-byte.
fn merged_hosts(cluster: &Cluster, universe: &[u32]) -> Vec<(u32, HostState)> {
    let mut merged = cluster.hosts();
    for &h in universe {
        merged.entry(h).or_default();
    }
    merged.into_iter().collect()
}

/// Harness-level recovery accounting, summed over every process lifetime.
fn export_cluster_recovery_totals(rec: &ClusterRecoveryTotals, reg: &mut Registry) {
    reg.register_counter(
        "fleetd_cluster_harness_lifetimes_total",
        "Cluster process lifetimes driven (1 = uninterrupted)",
    );
    reg.counter_add(
        "fleetd_cluster_harness_lifetimes_total",
        &[],
        u64::from(rec.lifetimes),
    );
    reg.register_counter(
        "fleetd_cluster_harness_kills_total",
        "Process kill-switch firings observed",
    );
    reg.counter_add(
        "fleetd_cluster_harness_kills_total",
        &[],
        u64::from(rec.kills),
    );
    reg.register_counter(
        "fleetd_cluster_harness_snapshots_total",
        "Snapshots at recovery, by scope and fate",
    );
    for (scope, loaded, discarded) in [
        (
            "cluster",
            rec.cluster_snapshots_loaded,
            rec.cluster_snapshots_discarded,
        ),
        (
            "node",
            rec.node_snapshots_loaded,
            rec.node_snapshots_discarded,
        ),
    ] {
        reg.counter_add(
            "fleetd_cluster_harness_snapshots_total",
            &[("scope", scope), ("fate", "loaded")],
            u64::from(loaded),
        );
        reg.counter_add(
            "fleetd_cluster_harness_snapshots_total",
            &[("scope", scope), ("fate", "discarded")],
            u64::from(discarded),
        );
    }
    reg.register_counter(
        "fleetd_cluster_harness_journal_events_total",
        "Assignment events replayed from the cluster journal",
    );
    reg.counter_add(
        "fleetd_cluster_harness_journal_events_total",
        &[],
        rec.journal_events,
    );
    reg.register_counter(
        "fleetd_cluster_harness_journal_torn_bytes_total",
        "Torn cluster-journal tail bytes tolerated across recoveries",
    );
    reg.counter_add(
        "fleetd_cluster_harness_journal_torn_bytes_total",
        &[],
        rec.journal_torn_bytes,
    );
    reg.register_counter(
        "fleetd_cluster_harness_node_wal_replayed_total",
        "Node WAL frames replayed into state across recoveries",
    );
    reg.counter_add(
        "fleetd_cluster_harness_node_wal_replayed_total",
        &[],
        rec.node_wal_replayed,
    );
    reg.register_counter(
        "fleetd_cluster_harness_node_wal_torn_bytes_total",
        "Torn node WAL tail bytes truncated across recoveries",
    );
    reg.counter_add(
        "fleetd_cluster_harness_node_wal_torn_bytes_total",
        &[],
        rec.node_wal_torn_bytes,
    );
}

/// The merged per-host output table — the artifact the cluster
/// determinism contract is stated over. Same column set as the
/// single-daemon table, rendered from the merged state.
pub fn hosts_table(run: &ClusterRun) -> Table {
    hosts_table_titled(
        "cluster — merged per-host streaming evaluation",
        &run.hosts,
        run.evaluation.as_ref(),
        run.n_windows,
    )
}

/// The hosts CSV — the byte-identity witness for the cluster contract.
pub fn hosts_csv(run: &ClusterRun) -> String {
    hosts_table(run).to_csv()
}

/// The deterministic metrics snapshot: only the evaluation families,
/// which are a pure function of the final merged host table. This is the
/// second byte-identity witness (the `fleetd_cluster_*` operational
/// counters legitimately differ between a clean and a kill-swept run).
pub fn determinism_snapshot(run: &ClusterRun) -> String {
    let mut reg = Registry::new();
    if let Some(eval) = &run.evaluation {
        eval.export_metrics(&mut reg);
    }
    reg.render(RenderOptions::deterministic())
}

/// Operational counters: routing, failure detection, handoff, recovery,
/// wire health, delivery. Deliberately separate from the hosts table —
/// only the latter carries the determinism contract.
pub fn ops_table(run: &ClusterRun) -> Table {
    let mut t = Table::new("cluster — operational counters", &["counter", "value"]);
    let s = &run.stats;
    let rows: Vec<(&str, String)> = vec![
        ("lifetimes", run.recovery.lifetimes.to_string()),
        ("kills", run.recovery.kills.to_string()),
        ("node_deaths", run.node_deaths_total.to_string()),
        ("rebalances", run.rebalances_total.to_string()),
        ("hosts_moved", run.hosts_moved_total.to_string()),
        ("dark_episodes", run.dark_episodes.len().to_string()),
        (
            "cluster_snapshots_loaded",
            run.recovery.cluster_snapshots_loaded.to_string(),
        ),
        (
            "journal_events_replayed",
            run.recovery.journal_events.to_string(),
        ),
        (
            "journal_torn_bytes",
            run.recovery.journal_torn_bytes.to_string(),
        ),
        (
            "node_wal_replayed",
            run.recovery.node_wal_replayed.to_string(),
        ),
        (
            "node_wal_torn_bytes",
            run.recovery.node_wal_torn_bytes.to_string(),
        ),
        ("final_life_batches_sent", s.batches_sent.to_string()),
        ("final_life_unroutable", s.unroutable.to_string()),
        ("final_life_acks_accepted", s.acks_accepted.to_string()),
        ("final_life_acks_stale", s.acks_stale.to_string()),
        (
            "final_life_heartbeats",
            s.heartbeats_received.to_string(),
        ),
        ("wire_frames_decoded", run.wire.frames_decoded.to_string()),
        ("wire_resyncs", run.wire.resyncs.to_string()),
        ("wire_skipped_bytes", run.wire.skipped_bytes.to_string()),
        ("link_frames", run.links.frames.to_string()),
        ("link_dropped", run.links.dropped.to_string()),
        ("link_duplicated", run.links.duplicated.to_string()),
        ("link_reordered", run.links.reordered.to_string()),
        ("link_corrupted", run.links.corrupted.to_string()),
        ("delivery_enqueued", run.delivery.enqueued.to_string()),
        ("delivery_acknowledged", run.delivery.acknowledged.to_string()),
        ("delivery_retries", run.delivery.retries.to_string()),
        ("delivery_expired", run.delivery.expired_batches.to_string()),
        ("delivery_evicted", run.delivery.evicted_batches.to_string()),
        ("lost_batches", run.lost_batches.to_string()),
        ("total_applied", run.total_applied.to_string()),
        ("total_wal_bytes", run.total_wal_bytes.to_string()),
        ("total_ticks", run.total_ticks.to_string()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

impl ClusterRun {
    /// Cross-check the run's own invariants (used by `repro cluster` and
    /// tests).
    pub fn check(&self) -> Result<(), String> {
        // Every expiry is a loss and vice versa: the harness marks a
        // batch lost exactly when the queue's retry budget ran out.
        if self.lost_batches != self.delivery.expired_batches {
            return Err(format!(
                "lost/expired mismatch: {} lost vs {} expired",
                self.lost_batches, self.delivery.expired_batches
            ));
        }
        // Source-side conservation: every enqueued batch is eventually
        // acknowledged, expired, evicted (then re-enqueued), or was still
        // queued when a process kill discarded the queue — and a clean
        // single-lifetime run has no such residue.
        let retired = self.delivery.acknowledged
            + self.delivery.expired_batches
            + self.delivery.evicted_batches;
        if self.recovery.lifetimes == 1 && retired != self.delivery.enqueued {
            return Err(format!(
                "clean run must retire every enqueued batch: {} of {}",
                retired, self.delivery.enqueued
            ));
        }
        if retired > self.delivery.enqueued {
            return Err(format!(
                "retired more than enqueued: {} of {}",
                retired, self.delivery.enqueued
            ));
        }
        // A lossless run evaluates the whole fleet.
        if self.lost_batches == 0 && !self.hosts.is_empty() && self.evaluation.is_none() {
            return Err("lossless run produced no evaluation".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{build_batches_for, unique_run_dir};
    use crate::data::{Corpus, CorpusConfig};
    use faultsim::KillPoint;

    fn small_corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 8,
            n_weeks: 2,
            ..CorpusConfig::small()
        })
    }

    fn scenario(n_nodes: u32) -> ClusterScenario {
        let mut s = ClusterScenario::default();
        s.cluster.n_nodes = n_nodes;
        s
    }

    fn drive(tag: &str, sc: &ClusterScenario, kills: &[ClusterKillPoint]) -> ClusterRun {
        let corpus = small_corpus();
        let batches = build_batches_for(&corpus, sc.feature, sc.batch_windows, &sc.poison_hosts);
        let dir = unique_run_dir(tag);
        let run = run(&dir, sc, &batches, kills).expect("cluster run");
        std::fs::remove_dir_all(&dir).ok();
        run
    }

    #[test]
    fn multi_node_csv_matches_single_node() {
        let one = drive("c1", &scenario(1), &[]);
        let two = drive("c2", &scenario(2), &[]);
        one.check().expect("one-node invariants");
        two.check().expect("two-node invariants");
        assert_eq!(one.lost_batches, 0);
        assert_eq!(two.lost_batches, 0);
        assert_eq!(hosts_csv(&one), hosts_csv(&two));
        assert_eq!(determinism_snapshot(&one), determinism_snapshot(&two));
    }

    #[test]
    fn node_kill_preserves_csv_and_surfaces_dark_window() {
        let clean = drive("ck-clean", &scenario(2), &[]);
        let killed = drive(
            "ck-kill",
            &scenario(2),
            &[ClusterKillPoint::Node {
                node: 1,
                at_tick: 6,
            }],
        );
        killed.check().expect("killed-run invariants");
        assert_eq!(killed.lost_batches, 0);
        assert!(!killed.dark_episodes.is_empty(), "dark window must be observed");
        assert!(killed.node_deaths_total >= 1);
        assert!(killed.rebalances_total >= 1);
        let (at_tick, dark_eval) = killed.dark_evaluation.as_ref().expect("dark evaluation");
        assert!(*at_tick > 0);
        let dark_hosts: Vec<u32> = killed
            .dark_episodes
            .iter()
            .flat_map(|e| e.hosts.iter().copied())
            .collect();
        assert!(!dark_hosts.is_empty());
        // During the window the moved hosts must read as Dark through the
        // degraded coverage accounting.
        use hids_core::degraded::HostStatus;
        for (i, (host, _)) in killed.hosts.iter().enumerate() {
            if dark_hosts.contains(host) {
                assert_eq!(
                    dark_eval.users[i].status,
                    HostStatus::Dark,
                    "host {host} must be dark mid-window"
                );
            }
        }
        assert_eq!(hosts_csv(&clean), hosts_csv(&killed));
        assert_eq!(determinism_snapshot(&clean), determinism_snapshot(&killed));
    }

    #[test]
    fn process_kill_preserves_csv() {
        let clean = drive("pk-clean", &scenario(2), &[]);
        let killed = drive(
            "pk-kill",
            &scenario(2),
            &[
                ClusterKillPoint::Process(KillPoint::AfterBatches(5)),
                ClusterKillPoint::Process(KillPoint::AtWalByte {
                    offset: 4_000,
                    torn: 7,
                }),
            ],
        );
        killed.check().expect("killed-run invariants");
        assert_eq!(killed.lost_batches, 0);
        assert!(killed.recovery.kills >= 1);
        assert!(killed.recovery.lifetimes >= 2);
        assert_eq!(hosts_csv(&clean), hosts_csv(&killed));
    }
}
