//! Chaos experiment: the full pipeline under seeded fault injection.
//!
//! Drives every hardened layer through a `faultsim::FaultPlan` at a chosen
//! severity and verifies that the system *degrades* instead of breaking:
//!
//! 1. **capture** — a synthetic pcap trace is corrupted byte-wise and
//!    ingested through `LossyPcapReader` + `FlowExtractor`; loss is
//!    counted, never panicked on;
//! 2. **evaluation** — telemetry masks (window drops, host dropouts) feed
//!    the degraded-mode evaluator, which configures thresholds on the data
//!    that arrived and reports coverage next to `⟨FN, FP⟩` for each of the
//!    paper's three groupings;
//! 3. **delivery** — the surviving hosts' alert batches are duplicated and
//!    reordered in flight, then shipped through the bounded retry queue
//!    over a deterministically flapping link into the central console.
//!
//! [`ChaosReport::check`] asserts the cross-stage conservation laws (no
//! alert or record is silently created or destroyed — everything is either
//! delivered or accounted as lost), and that severity 0 reproduces the
//! clean pipeline *exactly*. The whole run is a pure function of
//! `(corpus, ChaosConfig)`.

use faultsim::FaultPlan;
use flowtab::{FeatureCounts, FeatureKind, FlowExtractor, FlowTableConfig};
use hids_core::{
    evaluate_policy_degraded, eval::evaluate_policy, DegradedDataset, DegradedEvalConfig,
    Detector, EvalConfig, Grouping, PartialMethod, Policy, ThresholdHeuristic,
};
use itconsole::{AlertBatcher, CentralConsole, DeliveryConfig, DeliveryQueue};
use netpkt::testutil::{build_tcp_frame, build_udp_frame, FrameSpec};
use netpkt::{LinkType, LossyPcapReader, PcapPacket, PcapWriter, TcpFlags};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// Parameters of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault severity in `[0, 1]` (see [`FaultPlan::with_severity`]).
    pub severity: f64,
    /// Master fault seed (independent of the corpus seed).
    pub fault_seed: u64,
    /// Degraded-evaluation coverage floor.
    pub min_coverage: f64,
    /// Frames in the synthetic capture attacked in stage 1.
    pub capture_frames: usize,
    /// Probability the console link rejects a delivery attempt.
    pub link_flap_rate: f64,
    /// Host-side delivery queue parameters.
    pub queue: DeliveryConfig,
}

impl ChaosConfig {
    /// A standard run at the given severity.
    pub fn new(fault_seed: u64, severity: f64) -> Self {
        Self {
            severity,
            fault_seed,
            min_coverage: 0.1,
            capture_frames: 400,
            link_flap_rate: 0.3 * severity.clamp(0.0, 1.0),
            queue: DeliveryConfig::default(),
        }
    }
}

/// Stage-1 results: corrupted-capture ingest.
#[derive(Debug, Clone)]
pub struct CaptureStage {
    /// Frames written into the pristine capture.
    pub frames_written: u64,
    /// Bytes of the pristine capture.
    pub bytes_written: u64,
    /// What the corruptor did.
    pub fault_log: faultsim::ByteFaultLog,
    /// Records the lossy reader recovered.
    pub records_ok: u64,
    /// Records it skipped.
    pub records_skipped: u64,
    /// Bytes it skipped.
    pub bytes_skipped: u64,
    /// Recovered frames the extractor decoded into flows.
    pub frames_decoded: u64,
    /// Recovered frames the extractor rejected (with per-layer counts in
    /// its stats).
    pub frames_rejected: u64,
    /// True when even the lossy reader found no usable header.
    pub reader_rejected: bool,
}

/// Per-grouping stage-2 results: degraded vs clean evaluation.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Grouping label.
    pub grouping: String,
    /// Mean utility over the clean (no-fault) pipeline.
    pub clean_utility: f64,
    /// Mean utility over the hosts the degraded evaluator scored.
    pub degraded_utility: f64,
    /// Hosts scored / below the coverage floor / fully dark.
    pub evaluated: usize,
    /// Hosts excluded for low coverage.
    pub low_coverage: usize,
    /// Hosts with no data at all.
    pub dark: usize,
    /// Population-mean test-week coverage.
    pub mean_test_coverage: f64,
}

/// Stage-3 results: batched delivery to the console.
#[derive(Debug, Clone)]
pub struct DeliveryStage {
    /// Alerts raised by the scored hosts on their covered windows.
    pub alerts_emitted: u64,
    /// Batches those alerts were cut into.
    pub batches_emitted: u64,
    /// Out-of-order alerts the batchers folded/dropped.
    pub late_alerts: u64,
    /// What the network did to the batch stream.
    pub batch_log: faultsim::BatchFaultLog,
    /// Alerts in the stream as delivered by the network.
    pub alerts_after_faults: u64,
    /// Host-queue lifetime counters.
    pub queue_stats: itconsole::DeliveryStats,
    /// Alerts the console actually ingested.
    pub console_alerts: u64,
}

/// Everything one chaos run measured.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Severity the run used.
    pub severity: f64,
    /// Fault seed the run used.
    pub fault_seed: u64,
    /// Users in the population.
    pub n_users: usize,
    /// Stage 1.
    pub capture: CaptureStage,
    /// Stage 2, one row per grouping.
    pub eval: Vec<EvalRow>,
    /// Stage 3.
    pub delivery: DeliveryStage,
}

/// Build a deterministic, valid capture: `frames` alternating TCP/UDP
/// frames across a handful of synthetic hosts.
fn synthetic_capture(frames: usize) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).expect("vec write");
    for i in 0..frames {
        let spec = FrameSpec {
            src_port: 40000 + (i % 512) as u16,
            dst_port: if i % 3 == 0 { 53 } else { 80 },
            ip_id: i as u16,
            ..FrameSpec::default()
        };
        let data = if i % 3 == 0 {
            build_udp_frame(&spec, &[0x61; 24])
        } else {
            let flags = if i % 7 == 0 {
                TcpFlags::syn_only()
            } else {
                TcpFlags(TcpFlags::ACK)
            };
            build_tcp_frame(&spec, flags, i as u32, &[0x62; 40])
        };
        w.write_packet(&PcapPacket {
            ts_sec: 1_300_000_000 + (i / 4) as u32,
            ts_usec: (i % 4) as u32 * 250_000,
            data,
        })
        .expect("vec write");
    }
    w.finish().expect("vec write")
}

fn run_capture_stage(plan: &FaultPlan, frames: usize) -> CaptureStage {
    let pristine = synthetic_capture(frames);
    let (corrupt, fault_log) = plan.bytes.apply(&pristine, plan.bytes_seed());
    let mut stage = CaptureStage {
        frames_written: frames as u64,
        bytes_written: pristine.len() as u64,
        fault_log,
        records_ok: 0,
        records_skipped: 0,
        bytes_skipped: 0,
        frames_decoded: 0,
        frames_rejected: 0,
        reader_rejected: false,
    };
    let reader = match LossyPcapReader::new(&corrupt) {
        Ok(r) => r,
        Err(_) => {
            stage.reader_rejected = true;
            return stage;
        }
    };
    let (packets, loss) = reader.read_all();
    stage.records_ok = loss.records_ok;
    stage.records_skipped = loss.records_skipped;
    stage.bytes_skipped = loss.bytes_skipped;
    let mut ex = FlowExtractor::new(FlowTableConfig::default());
    for pkt in &packets {
        match ex.push_pcap(pkt) {
            Ok(()) => stage.frames_decoded += 1,
            Err(_) => stage.frames_rejected += 1,
        }
    }
    stage
}

const GROUPINGS: [(&str, Grouping); 3] = [
    ("Homogeneous", Grouping::Homogeneous),
    ("Full Diversity", Grouping::FullDiversity),
    (
        "8-Partial",
        Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
    ),
];

/// One run. Deterministic in `(corpus, cfg)`; thread count never changes
/// the output.
pub fn run(corpus: &Corpus, feature: FeatureKind, cfg: &ChaosConfig) -> ChaosReport {
    let plan = FaultPlan::with_severity(cfg.fault_seed, cfg.severity);
    let capture = run_capture_stage(&plan, cfg.capture_frames);

    // Stage 2: telemetry masks over train and test weeks.
    let n_users = corpus.n_users();
    let n_windows = corpus.series(0, 0).len();
    let (train_masks, _) = plan
        .telemetry
        .apply(n_users, n_windows, plan.telemetry_seed());
    let (test_masks, _) = plan
        .telemetry
        .apply(n_users, n_windows, plan.telemetry_seed().wrapping_add(1));

    let train_week = corpus.splits().first().copied().unwrap_or(0);
    let ds = corpus.dataset(feature, train_week);
    let train: Vec<_> = corpus
        .weeks
        .iter()
        .map(|w| w[train_week].clone())
        .collect();
    let test: Vec<_> = corpus
        .weeks
        .iter()
        .map(|w| w[train_week + 1].clone())
        .collect();
    let degraded_ds =
        DegradedDataset::from_masked_series(&train, &test, &train_masks, &test_masks, feature)
            .expect("corpus shapes are consistent");

    let base = EvalConfig {
        w: 0.5,
        sweep: ds.default_sweep(),
    };
    let degraded_cfg = DegradedEvalConfig {
        base: base.clone(),
        min_coverage: cfg.min_coverage,
    };

    let mut eval_rows = Vec::new();
    let mut full_div_eval = None;
    for (label, grouping) in GROUPINGS {
        let policy = Policy {
            grouping,
            heuristic: ThresholdHeuristic::P99,
        };
        let clean = evaluate_policy(&ds, &policy, &base);
        let degraded = evaluate_policy_degraded(&degraded_ds, &policy, &degraded_cfg)
            .expect("synthetic corpus never goes fully dark at test severities");
        let (evaluated, low, dark) = degraded.status_counts();
        eval_rows.push(EvalRow {
            grouping: label.to_string(),
            clean_utility: clean.mean_utility(),
            degraded_utility: degraded.mean_utility(),
            evaluated,
            low_coverage: low,
            dark,
            mean_test_coverage: degraded.mean_test_coverage(),
        });
        if matches!(grouping, Grouping::FullDiversity) {
            full_div_eval = Some(degraded);
        }
    }
    let full_div = full_div_eval.expect("full diversity is in GROUPINGS");

    // Stage 3: the scored hosts raise alerts on their covered windows and
    // batch them daily; the network duplicates/reorders; the bounded queue
    // retries over a flapping link into the console.
    let mut all_batches: Vec<Vec<hids_core::Alert>> = Vec::new();
    let mut alerts_emitted = 0u64;
    let mut late_alerts = 0u64;
    for (&u, perf) in full_div
        .evaluated_hosts
        .iter()
        .zip(full_div.outcome.thresholds.iter())
    {
        let counts = test[u].feature(feature);
        let mut detector = Detector::new(u as u32);
        detector.set_threshold(feature, *perf);
        let mut batcher = AlertBatcher::new(96);
        for (w, &g) in counts.iter().enumerate() {
            if !test_masks[u][w] {
                continue;
            }
            let mut one = FeatureCounts::default();
            *one.get_mut(feature) = g;
            for alert in detector.evaluate(w, &one) {
                alerts_emitted += 1;
                batcher.push(alert);
            }
            all_batches.extend(batcher.take_ready());
        }
        all_batches.extend(batcher.flush());
        late_alerts += batcher.late_alerts();
    }
    let batches_emitted = all_batches.len() as u64;

    let (faulted, batch_log) = plan.batches.apply(&all_batches, plan.batches_seed());
    let alerts_after_faults: u64 = faulted.iter().map(|b| b.len() as u64).sum();

    let console = CentralConsole::new(n_windows);
    let mut queue = DeliveryQueue::new(cfg.queue);
    let mut link = StdRng::seed_from_u64(plan.batches_seed() ^ 0x11_FA_CE);
    let flap = cfg.link_flap_rate;
    for batch in &faulted {
        queue.offer(batch.clone());
        // Pump as we go so the bounded queue reflects a live agent rather
        // than an offline spool.
        queue.pump(|b| {
            if flap > 0.0 && link.random_bool(flap) {
                return false;
            }
            console.ingest_batch(b);
            true
        });
        queue.tick(1);
    }
    // Drain: keep pumping until every batch is delivered or expired.
    while !queue.is_empty() {
        queue.pump(|b| {
            if flap > 0.0 && link.random_bool(flap) {
                return false;
            }
            console.ingest_batch(b);
            true
        });
        queue.tick(u64::from(cfg.queue.max_attempts) * cfg.queue.backoff_base.max(1));
    }

    ChaosReport {
        severity: cfg.severity,
        fault_seed: cfg.fault_seed,
        n_users,
        capture,
        eval: eval_rows,
        delivery: DeliveryStage {
            alerts_emitted,
            batches_emitted,
            late_alerts,
            batch_log,
            alerts_after_faults,
            queue_stats: queue.stats(),
            console_alerts: console.stats().total_alerts,
        },
    }
}

impl ChaosReport {
    /// Export the run into `reg` under the `chaos_*` families (plus the
    /// shared `itc_delivery_*` families for the stage-3 queue).
    ///
    /// Every value is a deterministic function of (corpus, severity,
    /// fault seed) — the chaos pipeline is seeded end to end — so the
    /// rendered snapshot is byte-identical at any thread count. The
    /// counters mirror the conservation laws [`ChaosReport::check`]
    /// asserts: `decoded + rejected = recovered` and per-grouping
    /// `evaluated + low_coverage + dark = users`.
    pub fn export_metrics(&self, reg: &mut hids_metrics::Registry) {
        reg.register_gauge(
            "chaos_run_info",
            "Constant 1, labelled with the run's parameters",
        );
        reg.gauge_set(
            "chaos_run_info",
            &[
                ("severity_ppm", &((self.severity * 1e6) as i64).to_string()),
                ("fault_seed", &self.fault_seed.to_string()),
                ("users", &self.n_users.to_string()),
            ],
            1,
        );

        let c = &self.capture;
        reg.register_counter(
            "chaos_capture_frames_total",
            "Capture-stage frames by pipeline disposition",
        );
        let frames: [(&str, u64); 4] = [
            ("written", c.frames_written),
            ("recovered", c.records_ok),
            ("decoded", c.frames_decoded),
            ("rejected", c.frames_rejected),
        ];
        for (d, v) in frames {
            reg.counter_add("chaos_capture_frames_total", &[("disposition", d)], v);
        }
        reg.register_counter(
            "chaos_capture_skipped_total",
            "Capture-stage losses to corruption",
        );
        reg.counter_add(
            "chaos_capture_skipped_total",
            &[("unit", "records")],
            c.records_skipped,
        );
        reg.counter_add(
            "chaos_capture_skipped_total",
            &[("unit", "bytes")],
            c.bytes_skipped,
        );
        reg.register_counter(
            "chaos_faults_injected_total",
            "Faults the corruptor actually performed",
        );
        reg.counter_add(
            "chaos_faults_injected_total",
            &[("kind", "length_forged")],
            c.fault_log.records_length_forged,
        );
        reg.counter_add(
            "chaos_faults_injected_total",
            &[("kind", "bits_flipped")],
            c.fault_log.bits_flipped,
        );

        reg.register_gauge(
            "chaos_eval_hosts",
            "Stage-2 hosts by evaluation status, per grouping",
        );
        reg.register_gauge(
            "chaos_eval_coverage_ppm",
            "Population-mean test coverage per grouping, parts per million",
        );
        for row in &self.eval {
            let g = row.grouping.as_str();
            reg.gauge_set(
                "chaos_eval_hosts",
                &[("grouping", g), ("status", "evaluated")],
                row.evaluated as i64,
            );
            reg.gauge_set(
                "chaos_eval_hosts",
                &[("grouping", g), ("status", "low_coverage")],
                row.low_coverage as i64,
            );
            reg.gauge_set(
                "chaos_eval_hosts",
                &[("grouping", g), ("status", "dark")],
                row.dark as i64,
            );
            reg.gauge_set(
                "chaos_eval_coverage_ppm",
                &[("grouping", g)],
                (row.mean_test_coverage * 1e6) as i64,
            );
        }

        let d = &self.delivery;
        reg.register_counter(
            "chaos_alerts_total",
            "Stage-3 alerts at each pipeline point",
        );
        let alerts: [(&str, u64); 3] = [
            ("emitted", d.alerts_emitted),
            ("after_faults", d.alerts_after_faults),
            ("ingested", d.console_alerts),
        ];
        for (p, v) in alerts {
            reg.counter_add("chaos_alerts_total", &[("point", p)], v);
        }
        reg.register_counter(
            "chaos_batches_emitted_total",
            "Alert batches cut by the per-host batchers",
        );
        reg.counter_add("chaos_batches_emitted_total", &[], d.batches_emitted);
        reg.register_counter(
            "chaos_late_alerts_total",
            "Out-of-order alerts folded or dropped by the batchers",
        );
        reg.counter_add("chaos_late_alerts_total", &[], d.late_alerts);
        reg.register_counter(
            "chaos_network_batch_faults_total",
            "What the unreliable network did to the batch stream",
        );
        reg.counter_add(
            "chaos_network_batch_faults_total",
            &[("kind", "duplicated")],
            d.batch_log.duplicated,
        );
        reg.counter_add(
            "chaos_network_batch_faults_total",
            &[("kind", "swapped")],
            d.batch_log.swaps,
        );
        d.queue_stats.export_metrics(reg, "chaos");
    }

    /// Verify every cross-stage conservation law; returns the first
    /// violation as text. The chaos acceptance tests call this at every
    /// severity.
    pub fn check(&self) -> Result<(), String> {
        let c = &self.capture;
        if !c.reader_rejected && c.frames_decoded + c.frames_rejected != c.records_ok {
            return Err(format!(
                "capture: decoded {} + rejected {} != recovered {}",
                c.frames_decoded, c.frames_rejected, c.records_ok
            ));
        }
        if self.severity == 0.0 {
            if !c.fault_log.is_clean() {
                return Err("severity 0 corrupted the capture".into());
            }
            if c.records_ok != c.frames_written || c.frames_rejected != 0 {
                return Err(format!(
                    "severity 0: recovered {}/{} frames, {} rejected",
                    c.records_ok, c.frames_written, c.frames_rejected
                ));
            }
        }
        for row in &self.eval {
            if row.evaluated + row.low_coverage + row.dark != self.n_users {
                return Err(format!(
                    "{}: statuses {}+{}+{} != {} users",
                    row.grouping, row.evaluated, row.low_coverage, row.dark, self.n_users
                ));
            }
            if self.severity == 0.0 {
                if row.evaluated != self.n_users {
                    return Err(format!(
                        "severity 0: {} scored only {} hosts",
                        row.grouping, row.evaluated
                    ));
                }
                if row.degraded_utility != row.clean_utility {
                    return Err(format!(
                        "severity 0: {} degraded utility {} != clean {}",
                        row.grouping, row.degraded_utility, row.clean_utility
                    ));
                }
                if row.mean_test_coverage != 1.0 {
                    return Err(format!(
                        "severity 0: coverage {} != 1",
                        row.mean_test_coverage
                    ));
                }
            }
        }
        let d = &self.delivery;
        if d.batch_log.delivered != d.batches_emitted + d.batch_log.duplicated {
            return Err(format!(
                "delivery: stream {} != emitted {} + duplicated {}",
                d.batch_log.delivered, d.batches_emitted, d.batch_log.duplicated
            ));
        }
        if d.alerts_after_faults < d.alerts_emitted {
            return Err(format!(
                "delivery: faults destroyed alerts ({} < {})",
                d.alerts_after_faults, d.alerts_emitted
            ));
        }
        let q = &d.queue_stats;
        if q.enqueued + q.rejected_batches != d.batch_log.delivered {
            return Err(format!(
                "delivery: enqueued {} + rejected {} != stream {}",
                q.enqueued, q.rejected_batches, d.batch_log.delivered
            ));
        }
        if q.delivered + q.expired_batches != q.enqueued {
            return Err(format!(
                "delivery: delivered {} + expired {} != enqueued {}",
                q.delivered, q.expired_batches, q.enqueued
            ));
        }
        if d.console_alerts + q.dropped_units() != d.alerts_after_faults {
            return Err(format!(
                "delivery: console {} + dropped {} != offered {}",
                d.console_alerts,
                q.dropped_units(),
                d.alerts_after_faults
            ));
        }
        if self.severity == 0.0
            && (d.console_alerts != d.alerts_emitted || q.dropped_batches() != 0)
        {
            return Err(format!(
                "severity 0 lost alerts: console {} of {}",
                d.console_alerts, d.alerts_emitted
            ));
        }
        Ok(())
    }
}

/// Render the report as one table.
pub fn table(r: &ChaosReport) -> Table {
    let mut t = Table::new(
        &format!(
            "Chaos — pipeline under fault injection (severity {}, seed {:#x}, {} users)",
            fnum(r.severity),
            r.fault_seed,
            r.n_users
        ),
        &["stage", "metric", "value"],
    );
    let c = &r.capture;
    t.row(vec![
        "capture".into(),
        "records recovered / written".into(),
        format!("{} / {}", c.records_ok, c.frames_written),
    ]);
    t.row(vec![
        "capture".into(),
        "records skipped (bytes)".into(),
        format!("{} ({})", c.records_skipped, c.bytes_skipped),
    ]);
    t.row(vec![
        "capture".into(),
        "frames decoded / rejected".into(),
        format!("{} / {}", c.frames_decoded, c.frames_rejected),
    ]);
    for row in &r.eval {
        t.row(vec![
            "eval".into(),
            format!("{}: utility clean -> degraded", row.grouping),
            format!(
                "{} -> {}",
                fnum(row.clean_utility),
                fnum(row.degraded_utility)
            ),
        ]);
        t.row(vec![
            "eval".into(),
            format!("{}: hosts scored/low/dark", row.grouping),
            format!("{}/{}/{}", row.evaluated, row.low_coverage, row.dark),
        ]);
    }
    let d = &r.delivery;
    t.row(vec![
        "delivery".into(),
        "alerts emitted -> console".into(),
        format!("{} -> {}", d.alerts_emitted, d.console_alerts),
    ]);
    t.row(vec![
        "delivery".into(),
        "batches dup/swap, late alerts".into(),
        format!(
            "{}/{}, {}",
            d.batch_log.duplicated, d.batch_log.swaps, d.late_alerts
        ),
    ]);
    t.row(vec![
        "delivery".into(),
        "queue retries / dropped batches".into(),
        format!(
            "{} / {}",
            d.queue_stats.retries,
            d.queue_stats.dropped_batches()
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn small_corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 24,
            n_weeks: 2,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn zero_severity_reproduces_clean_pipeline() {
        let corpus = small_corpus();
        let r = run(
            &corpus,
            FeatureKind::TcpConnections,
            &ChaosConfig::new(0xFA11, 0.0),
        );
        r.check().expect("invariants at severity 0");
        assert_eq!(r.capture.records_ok, r.capture.frames_written);
        assert_eq!(r.delivery.console_alerts, r.delivery.alerts_emitted);
    }

    #[test]
    fn faulty_run_completes_with_consistent_accounting() {
        let corpus = small_corpus();
        for severity in [0.05, 0.2] {
            let r = run(
                &corpus,
                FeatureKind::TcpConnections,
                &ChaosConfig::new(0xFA11, severity),
            );
            r.check()
                .unwrap_or_else(|e| panic!("severity {severity}: {e}"));
        }
    }

    #[test]
    fn chaos_run_is_deterministic() {
        let corpus = small_corpus();
        let cfg = ChaosConfig::new(7, 0.15);
        let a = run(&corpus, FeatureKind::TcpConnections, &cfg);
        let b = run(&corpus, FeatureKind::TcpConnections, &cfg);
        assert_eq!(a.capture.records_ok, b.capture.records_ok);
        assert_eq!(a.delivery.console_alerts, b.delivery.console_alerts);
        assert_eq!(a.delivery.queue_stats, b.delivery.queue_stats);
        for (ra, rb) in a.eval.iter().zip(&b.eval) {
            assert_eq!(ra.degraded_utility, rb.degraded_utility);
            assert_eq!(ra.evaluated, rb.evaluated);
        }
    }

    #[test]
    fn renders_table() {
        let corpus = small_corpus();
        let r = run(
            &corpus,
            FeatureKind::TcpConnections,
            &ChaosConfig::new(1, 0.1),
        );
        let t = table(&r);
        assert!(t.len() >= 9);
        assert!(t.render().contains("capture"));
    }
}
