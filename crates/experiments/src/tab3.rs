//! Table 3: false alarms per week arriving at the central IT console.
//!
//! For each policy × threshold heuristic, every user's test-week alarms
//! (benign windows whose count exceeds the user's threshold) flow through
//! the per-host batcher into the central console; the table reports the
//! weekly totals. The paper's values (350 users, num-TCP-connections):
//! 99th-percentile heuristic 1594/892/482, utility(w=0.4) 3536/1194/2328.

use flowtab::{FeatureKind, Windowing};
use hids_core::{
    eval::evaluate_policy, Detector, EvalConfig, FeatureDataset, Grouping, PartialMethod, Policy,
    ThresholdHeuristic,
};
use itconsole::{AlertBatcher, CentralConsole};

use crate::data::Corpus;
use crate::report::Table;

/// Alarm totals for one heuristic across the three groupings.
#[derive(Debug, Clone)]
pub struct HeuristicRow {
    /// Heuristic label.
    pub heuristic: String,
    /// Total weekly alarms under homogeneous grouping.
    pub homogeneous: u64,
    /// ... under full diversity.
    pub full_diversity: u64,
    /// ... under 8-partial diversity.
    pub partial: u64,
}

/// The Table-3 result.
#[derive(Debug, Clone)]
pub struct Tab3Result {
    /// One row per heuristic.
    pub rows: Vec<HeuristicRow>,
    /// Users in the corpus (for per-user rates).
    pub n_users: usize,
}

fn heuristic_for(utility: bool, ds: &FeatureDataset) -> ThresholdHeuristic {
    if utility {
        ThresholdHeuristic::UtilityMax {
            w: 0.4,
            sweep: ds.default_sweep(),
        }
    } else {
        ThresholdHeuristic::P99
    }
}

/// Count the alarms reaching the console for one policy, by actually
/// running detectors over the test week and shipping batched alerts.
fn console_alarms(ds: &FeatureDataset, policy: &Policy, feature: FeatureKind) -> u64 {
    let config = EvalConfig {
        w: 0.4,
        sweep: ds.default_sweep(),
    };
    let eval = evaluate_policy(ds, policy, &config);
    let windowing = Windowing::FIFTEEN_MIN;
    let console = CentralConsole::new(windowing.windows_per_week());

    // Each user's detector run is independent: build every user's alert
    // batches in parallel, then ingest them in user order so the console
    // sees a deterministic stream regardless of thread count.
    let per_user_batches = hids_core::par_map(&eval.users, |user, perf| {
        let counts = &ds.test_counts[user];
        let mut detector = Detector::new(user as u32);
        detector.set_threshold(feature, perf.threshold);
        let mut batcher = AlertBatcher::new(96); // ship once per day
        let mut batches = Vec::new();
        for (w, &g) in counts.iter().enumerate() {
            let mut counts_one = flowtab::FeatureCounts::default();
            *counts_one.get_mut(feature) = g;
            for alert in detector.evaluate(w, &counts_one) {
                batcher.push(alert);
            }
            batches.extend(batcher.take_ready());
        }
        batches.extend(batcher.flush());
        batches
    });
    for batches in &per_user_batches {
        for batch in batches {
            console.ingest_batch(batch);
        }
    }
    console.stats().total_alerts
}

/// Run the Table-3 analysis (averaged over the corpus's train→test splits,
/// rounded to whole alarms).
pub fn run(corpus: &Corpus, feature: FeatureKind) -> Tab3Result {
    let splits = corpus.splits();
    assert!(!splits.is_empty());
    let labels = [("99th-percentile", false), ("utility, w = 0.4", true)];
    let mut rows = Vec::new();
    for (label, utility) in labels {
        let mut totals = [0u64; 3];
        for &train_week in &splits {
            let ds = corpus.dataset(feature, train_week);
            let heuristic = heuristic_for(utility, &ds);
            for (slot, grouping) in [
                Grouping::Homogeneous,
                Grouping::FullDiversity,
                Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            ]
            .into_iter()
            .enumerate()
            {
                let policy = Policy {
                    grouping,
                    heuristic: heuristic.clone(),
                };
                totals[slot] += console_alarms(&ds, &policy, feature);
            }
        }
        let div = splits.len() as u64;
        rows.push(HeuristicRow {
            heuristic: label.to_string(),
            homogeneous: totals[0] / div,
            full_diversity: totals[1] / div,
            partial: totals[2] / div,
        });
    }
    Tab3Result {
        rows,
        n_users: corpus.n_users(),
    }
}

/// Render as the paper's Table 3.
pub fn table(r: &Tab3Result) -> Table {
    let mut t = Table::new(
        &format!(
            "Table 3 — mean false alarms per week at the central console ({} users)",
            r.n_users
        ),
        &[
            "threshold heuristic",
            "Homogeneous",
            "Full Diversity",
            "Partial Diversity",
        ],
    );
    for row in &r.rows {
        t.row(vec![
            row.heuristic.clone(),
            row.homogeneous.to_string(),
            row.full_diversity.to_string(),
            row.partial.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    #[test]
    fn diversity_reduces_console_load() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 80,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, FeatureKind::TcpConnections);
        // Utility heuristic: the monoculture floods the console (the
        // paper's 3536 vs 1194/2328 row).
        let util = &r.rows[1];
        assert!(
            util.full_diversity * 2 < util.homogeneous,
            "utility row: full diversity cuts alarms at least in half ({} vs {})",
            util.full_diversity,
            util.homogeneous
        );
        assert!(
            util.partial < util.homogeneous,
            "utility row: partial reduces alarms ({} < {})",
            util.partial,
            util.homogeneous
        );
        // p99 heuristic: all policies target ~1% FP, so totals stay within
        // a modest factor of each other (our near-stationary population
        // lands at parity; the paper's non-stationary data favoured
        // diversity — see EXPERIMENTS.md TAB3 notes).
        let p99 = &r.rows[0];
        assert!(
            p99.full_diversity < p99.homogeneous * 3 / 2,
            "p99 row: full diversity within 1.5x of homogeneous ({} vs {})",
            p99.full_diversity,
            p99.homogeneous
        );
    }

    #[test]
    fn alarm_counts_scale_sanely() {
        // ~1% FP on 672 windows/week caps expected alarms near
        // 0.01 * 672 * users; drift keeps us within a small factor.
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 40,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        let r = run(&corpus, FeatureKind::TcpConnections);
        let nominal = (0.01 * 672.0 * 40.0) as u64;
        for row in &r.rows {
            assert!(
                row.homogeneous < nominal * 6,
                "{} implausibly large vs nominal {nominal}",
                row.homogeneous
            );
        }
    }

    #[test]
    fn renders_two_rows() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 20,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        let t = table(&run(&corpus, FeatureKind::TcpConnections));
        assert_eq!(t.len(), 2);
    }
}
