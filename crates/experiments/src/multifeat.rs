//! Extension: concurrent multi-feature monitoring.
//!
//! The paper's detectors monitor several features at once and its
//! introduction predicts hardware tracking "large numbers of features
//! simultaneously". This experiment quantifies the operational trade-off:
//! turning on more features raises the union false-positive rate (alarms
//! from any feature) but detects the Storm zombie — which perturbs several
//! features at once — in more windows; requiring two features to
//! corroborate claws most of the FP back.

use flowtab::{FeatureKind, FeatureSeries};
use hids_core::{
    evaluate_multi, multi_detection, Grouping, MultiPolicy, PartialMethod, Policy,
    ThresholdHeuristic,
};
use synthgen::{storm_week_series, StormConfig};

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// One row: a policy × feature-set combination.
#[derive(Debug, Clone)]
pub struct MultiRow {
    /// Grouping label.
    pub policy: &'static str,
    /// Number of monitored features.
    pub n_features: usize,
    /// Mean union FP rate across users.
    pub fp_any: f64,
    /// Mean ≥2-feature corroborated FP rate.
    pub fp_corroborated: f64,
    /// Mean Storm detection rate (any feature alarms in a zombie window).
    pub storm_detection: f64,
}

/// The multi-feature result.
#[derive(Debug, Clone)]
pub struct MultiFeatResult {
    /// All rows, grouped by policy then feature count.
    pub rows: Vec<MultiRow>,
}

const FEATURE_SETS: [&[FeatureKind]; 3] = [
    &[FeatureKind::DistinctConnections],
    &[
        FeatureKind::DistinctConnections,
        FeatureKind::UdpConnections,
        FeatureKind::TcpConnections,
    ],
    &FeatureKind::ALL,
];

/// Run the multi-feature experiment on one train→test split.
pub fn run(corpus: &Corpus, train_week: usize, storm: &StormConfig) -> MultiFeatResult {
    let train: Vec<FeatureSeries> = corpus.weeks.iter().map(|w| w[train_week].clone()).collect();
    let test: Vec<FeatureSeries> = corpus
        .weeks
        .iter()
        .map(|w| w[train_week + 1].clone())
        .collect();
    let zombie = storm_week_series(storm, corpus.config.windowing(), 0);

    let mut rows = Vec::new();
    for (label, grouping) in [
        ("Homogeneous", Grouping::Homogeneous),
        ("Full-Diversity", Grouping::FullDiversity),
        ("8-Partial", Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
    ] {
        let policy = Policy {
            grouping,
            heuristic: ThresholdHeuristic::P99,
        };
        for features in FEATURE_SETS {
            let multi = MultiPolicy::on(features, policy.clone());
            let eval = evaluate_multi(&train, &test, &multi);
            let detections = multi_detection(
                &eval.detectors,
                &test,
                &zombie,
                FeatureKind::DistinctConnections,
            );
            rows.push(MultiRow {
                policy: label,
                n_features: features.len(),
                fp_any: eval.mean_fp_any(),
                fp_corroborated: eval.mean_fp_corroborated(),
                storm_detection: detections.iter().sum::<f64>() / detections.len() as f64,
            });
        }
    }
    MultiFeatResult { rows }
}

/// Render the trade-off table.
pub fn table(r: &MultiFeatResult) -> Table {
    let mut t = Table::new(
        "Multi-feature monitoring — union FP vs Storm detection",
        &[
            "policy",
            "features",
            "FP (any)",
            "FP (≥2 corroborating)",
            "storm detection",
        ],
    );
    for row in &r.rows {
        t.row(vec![
            row.policy.to_string(),
            row.n_features.to_string(),
            fnum(row.fp_any),
            fnum(row.fp_corroborated),
            fnum(row.storm_detection),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn result() -> MultiFeatResult {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 40,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        run(&corpus, 0, &StormConfig::default())
    }

    #[test]
    fn more_features_more_union_fp_and_detection() {
        let r = result();
        for policy in ["Homogeneous", "Full-Diversity", "8-Partial"] {
            let rows: Vec<&MultiRow> = r.rows.iter().filter(|x| x.policy == policy).collect();
            assert_eq!(rows.len(), 3);
            // Union FP is monotone in the feature set (supersets).
            assert!(rows[1].fp_any >= rows[0].fp_any - 1e-12, "{policy}");
            assert!(rows[2].fp_any >= rows[1].fp_any - 1e-12, "{policy}");
            // So is detection of a multi-feature attack.
            assert!(rows[2].storm_detection >= rows[0].storm_detection - 1e-12);
            // Corroboration filters below the union rate.
            for row in &rows {
                assert!(row.fp_corroborated <= row.fp_any + 1e-12);
            }
        }
    }

    #[test]
    fn diversity_keeps_union_fp_bounded() {
        let r = result();
        let full_all = r
            .rows
            .iter()
            .find(|x| x.policy == "Full-Diversity" && x.n_features == 6)
            .unwrap();
        // Six features at ~1% each: union stays below the naive 6% bound
        // (features co-fire within a busy window).
        assert!(full_all.fp_any < 0.06, "union FP {}", full_all.fp_any);
        assert!(full_all.fp_any > 0.005);
    }

    #[test]
    fn table_has_nine_rows() {
        assert_eq!(table(&result()).len(), 9);
    }
}
