//! Figure 4: attacker effectiveness under the three policies.
//!
//! (a) naive attacker — fraction of users raising an alarm vs attack size;
//! (b) resourceful (mimicry) attacker — the per-user hidden-traffic budget
//! at 90% evasion, summarised as boxplots.

use attacksim::{detection_curve, hidden_traffic, omniscient_population, total_capacity, NaiveAttack};
use flowtab::FeatureKind;
use hids_core::{Grouping, PartialMethod, Policy, ThresholdHeuristic};
use tailstats::FiveNumber;

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// The three policies compared, in display order.
pub const POLICIES: [(&str, Grouping); 3] = [
    ("Homogeneous", Grouping::Homogeneous),
    ("Full-Diversity", Grouping::FullDiversity),
    ("8-Partial", Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
];

/// Figure 4(a): detection curves.
#[derive(Debug, Clone)]
pub struct Fig4aResult {
    /// The swept attack sizes.
    pub sizes: Vec<f64>,
    /// `curves[p][i]` = fraction of users alarming at `sizes[i]` under
    /// policy `p`.
    pub curves: Vec<Vec<f64>>,
}

/// Figure 4(b): hidden-traffic budgets.
#[derive(Debug, Clone)]
pub struct Fig4bResult {
    /// Per-policy per-user budgets.
    pub budgets: Vec<Vec<u64>>,
    /// Boxplot summaries per policy.
    pub summaries: Vec<FiveNumber>,
    /// Evasion probability targeted.
    pub evade_prob: f64,
}

fn thresholds_for(corpus: &Corpus, feature: FeatureKind, week: usize, grouping: Grouping) -> Vec<f64> {
    let ds = corpus.dataset(feature, week);
    Policy {
        grouping,
        heuristic: ThresholdHeuristic::P99,
    }
    .configure(&ds.train)
    .thresholds
}

/// Run Figure 4(a): sweep attack sizes for the naive attacker.
pub fn run_a(corpus: &Corpus, feature: FeatureKind, week: usize, n_sizes: usize) -> Fig4aResult {
    let ds = corpus.dataset(feature, week);
    let b_max = ds.max_observed();
    let sizes: Vec<f64> = (0..n_sizes)
        .map(|i| 1.0 + (b_max - 1.0) * i as f64 / (n_sizes - 1).max(1) as f64)
        .collect();
    let attack = NaiveAttack::default_for(corpus.config.windowing());
    let curves = POLICIES
        .iter()
        .map(|&(_, grouping)| {
            let thresholds = thresholds_for(corpus, feature, week, grouping);
            detection_curve(&ds.test_counts, &thresholds, &sizes, &attack)
                .into_iter()
                .map(|(_, f)| f)
                .collect()
        })
        .collect();
    Fig4aResult { sizes, curves }
}

/// Run Figure 4(b): mimicry budgets at `evade_prob`.
pub fn run_b(corpus: &Corpus, feature: FeatureKind, week: usize, evade_prob: f64) -> Fig4bResult {
    let ds = corpus.dataset(feature, week);
    let budgets: Vec<Vec<u64>> = POLICIES
        .iter()
        .map(|&(_, grouping)| {
            let thresholds = thresholds_for(corpus, feature, week, grouping);
            hidden_traffic(&ds.train, &thresholds, evade_prob)
                .into_iter()
                .map(|e| e.budget)
                .collect()
        })
        .collect();
    let summaries = budgets
        .iter()
        .map(|b| FiveNumber::from_samples(&b.iter().map(|&x| x as f64).collect::<Vec<_>>()))
        .collect();
    Fig4bResult {
        budgets,
        summaries,
        evade_prob,
    }
}

/// Extension beyond Fig. 4(b): the omniscient-attacker capacity bound —
/// malware that watches live traffic and fills every window to the
/// threshold. Reported as total undetectable weekly DDoS capacity of the
/// whole botnet under each policy.
pub fn run_c(corpus: &Corpus, feature: FeatureKind, week: usize) -> Table {
    let ds = corpus.dataset(feature, week);
    let mut t = Table::new(
        "Extension — omniscient attacker: total undetectable weekly capacity",
        &[
            "policy",
            "botnet capacity (units/week)",
            "median per-user",
            "saturated windows (mean)",
        ],
    );
    for (label, grouping) in POLICIES {
        let thresholds = thresholds_for(corpus, feature, week, grouping);
        let budgets = omniscient_population(&ds.test_counts, &thresholds);
        let mut per_user: Vec<f64> = budgets.iter().map(|b| b.weekly_total as f64).collect();
        per_user.sort_by(|a, b| a.total_cmp(b));
        let sat = budgets.iter().map(|b| b.saturated_windows).sum::<u64>() as f64
            / budgets.len() as f64;
        t.row(vec![
            label.to_string(),
            total_capacity(&budgets).to_string(),
            fnum(per_user[per_user.len() / 2]),
            fnum(sat),
        ]);
    }
    t
}

/// Render the detection curves at a subsample of sizes.
pub fn table_a(r: &Fig4aResult) -> Table {
    let mut t = Table::new(
        "Figure 4(a) — fraction of users raising alarms vs naive attack size",
        &["attack size", "Homogeneous", "Full-Diversity", "8-Partial"],
    );
    let step = (r.sizes.len() / 16).max(1);
    for i in (0..r.sizes.len()).step_by(step) {
        t.row(vec![
            fnum(r.sizes[i]),
            fnum(r.curves[0][i]),
            fnum(r.curves[1][i]),
            fnum(r.curves[2][i]),
        ]);
    }
    t
}

/// Render the hidden-traffic boxplot statistics.
pub fn table_b(r: &Fig4bResult) -> Table {
    let mut t = Table::new(
        &format!(
            "Figure 4(b) — hidden traffic of a resourceful attacker (evasion ≥ {:.0}%)",
            r.evade_prob * 100.0
        ),
        &["policy", "min", "q1", "median", "q3", "max", "mean"],
    );
    for ((label, _), s) in POLICIES.iter().zip(&r.summaries) {
        t.row(vec![
            label.to_string(),
            fnum(s.min),
            fnum(s.q1),
            fnum(s.median),
            fnum(s.q3),
            fnum(s.max),
            fnum(s.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 80,
            n_weeks: 2,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn diversity_detects_stealthy_attacks_better() {
        let c = corpus();
        let r = run_a(&c, FeatureKind::TcpConnections, 0, 60);
        // Stealthy regime: the smallest decile of attack sizes.
        let stealth_end = r.sizes.len() / 10;
        let mean = |curve: &[f64]| {
            curve[1..=stealth_end].iter().sum::<f64>() / stealth_end as f64
        };
        let homog = mean(&r.curves[0]);
        let full = mean(&r.curves[1]);
        assert!(
            full > homog,
            "full diversity catches stealth: {full} > {homog}"
        );
        // Everyone detects the maximal attack.
        for curve in &r.curves {
            assert!(*curve.last().unwrap() > 0.95);
        }
    }

    #[test]
    fn curves_monotone() {
        let c = corpus();
        let r = run_a(&c, FeatureKind::UdpConnections, 0, 40);
        for curve in &r.curves {
            for w in curve.windows(2) {
                assert!(w[1] >= w[0] - 1e-12);
            }
        }
    }

    #[test]
    fn mimicry_budget_shrinks_under_diversity() {
        let c = corpus();
        let r = run_b(&c, FeatureKind::TcpConnections, 0, 0.9);
        let median = |i: usize| r.summaries[i].median;
        assert!(
            median(1) < median(0),
            "paper: median hidden traffic drops to ~1/3 under diversity ({} < {})",
            median(1),
            median(0)
        );
        assert!(
            median(2) < median(0),
            "8-partial also restricts the attacker ({} < {})",
            median(2),
            median(0)
        );
    }

    #[test]
    fn tables_render() {
        let c = corpus();
        let a = run_a(&c, FeatureKind::TcpConnections, 0, 32);
        assert!(table_a(&a).len() >= 16);
        let b = run_b(&c, FeatureKind::TcpConnections, 0, 0.9);
        assert_eq!(table_b(&b).len(), 3);
    }

    #[test]
    fn omniscient_capacity_collapses_under_diversity() {
        let c = corpus();
        let t = run_c(&c, FeatureKind::TcpConnections, 0);
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        let capacity = |row: usize| -> f64 {
            csv.lines()
                .nth(row + 1)
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        let homog = capacity(0);
        let full = capacity(1);
        let partial = capacity(2);
        assert!(
            full < homog / 2.0,
            "diversity at least halves botnet capacity ({full} vs {homog})"
        );
        assert!(partial < homog, "partial reduces capacity too");
    }
}
