//! Extension: operational consequences — analyst triage and threshold
//! maintenance.
//!
//! Table 3 counts alarms; this experiment prices them. A two-analyst team
//! triages each policy's weekly alarm stream (backlog, waiting time, SLA),
//! and the threshold-update strategies of `hids_core::adaptive` compete on
//! realized false-positive stability across the corpus's weeks.

use flowtab::FeatureKind;
use hids_core::{
    eval::evaluate_policy, realized_fp_series, EvalConfig, Grouping, PartialMethod, Policy,
    ThresholdHeuristic, UpdateStrategy,
};
use itconsole::{simulate_week, TriageConfig};
use tailstats::FiveNumber;

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// Triage simulation across the three policies.
pub fn triage_table(corpus: &Corpus, feature: FeatureKind, config: &TriageConfig) -> Table {
    let ds = corpus.dataset(feature, 0);
    let eval_config = EvalConfig {
        w: 0.4,
        sweep: ds.default_sweep(),
    };
    let n_windows = ds.test_counts.first().map_or(0, |c| c.len());

    let mut t = Table::new(
        &format!(
            "Operational cost — {} analysts, {:.0} alarms/analyst-hour, {}h shifts",
            config.analysts, config.alarms_per_analyst_hour, config.shift_hours_per_day
        ),
        &[
            "policy",
            "alarms",
            "handled",
            "backlog",
            "mean wait (h)",
            "within SLA",
        ],
    );
    for (label, grouping) in [
        ("Homogeneous", Grouping::Homogeneous),
        ("Full-Diversity", Grouping::FullDiversity),
        ("8-Partial", Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
    ] {
        let eval = evaluate_policy(
            &ds,
            &Policy {
                grouping,
                heuristic: ThresholdHeuristic::P99,
            },
            &eval_config,
        );
        // Population alarm arrivals per window.
        let mut per_window = vec![0u64; n_windows];
        for (perf, counts) in eval.users.iter().zip(&ds.test_counts) {
            for (w, &g) in counts.iter().enumerate() {
                if g as f64 > perf.threshold {
                    per_window[w] += 1;
                }
            }
        }
        let out = simulate_week(&per_window, corpus.config.window_secs, config);
        t.row(vec![
            label.to_string(),
            out.arrived.to_string(),
            out.handled.to_string(),
            out.backlog.to_string(),
            fnum(out.mean_wait_hours),
            fnum(out.within_sla),
        ]);
    }
    t
}

/// Threshold-maintenance strategies compared on realized FP across all the
/// corpus's week transitions (full diversity, p99).
pub fn maintenance_table(corpus: &Corpus, feature: FeatureKind) -> Table {
    assert!(corpus.config.n_weeks >= 3, "need several weeks");
    let strategies = [
        ("retrain weekly (paper)", UpdateStrategy::RetrainWeekly),
        ("EWMA α=0.5", UpdateStrategy::Ewma { alpha: 0.5 }),
        ("EWMA α=0.25", UpdateStrategy::Ewma { alpha: 0.25 }),
        ("sliding 2-week window", UpdateStrategy::SlidingWindow { weeks: 2 }),
        ("sliding 4-week window", UpdateStrategy::SlidingWindow { weeks: 4 }),
    ];
    let mut t = Table::new(
        "Threshold maintenance — realized FP across weekly updates (target 0.01)",
        &["strategy", "q1", "median", "q3", "max", "|median−0.01|"],
    );
    for (label, strategy) in strategies {
        let mut all_fp = Vec::new();
        for user_weeks in &corpus.weeks {
            let weeks: Vec<Vec<u64>> = user_weeks.iter().map(|s| s.feature(feature)).collect();
            all_fp.extend(realized_fp_series(&weeks, strategy, ThresholdHeuristic::P99));
        }
        let s = FiveNumber::from_samples(&all_fp);
        t.row(vec![
            label.to_string(),
            format!("{:.4}", s.q1),
            format!("{:.4}", s.median),
            format!("{:.4}", s.q3),
            fnum(s.max),
            format!("{:.4}", (s.median - 0.01).abs()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            n_users: 60,
            n_weeks: 4,
            ..CorpusConfig::small()
        })
    }

    #[test]
    fn triage_is_harder_under_more_alarms() {
        let c = corpus();
        // A deliberately tiny team so ordering shows up in backlog/wait.
        let tight = TriageConfig {
            alarms_per_analyst_hour: 2.0,
            analysts: 1,
            shift_hours_per_day: 8.0,
            sla_hours: 8.0,
        };
        let t = triage_table(&c, FeatureKind::TcpConnections, &tight);
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        let col = |row: usize, col: usize| -> f64 {
            csv.lines()
                .nth(row + 1)
                .unwrap()
                .split(',')
                .nth(col)
                .unwrap()
                .parse()
                .unwrap()
        };
        for row in 0..3 {
            let arrived = col(row, 1);
            let handled = col(row, 2);
            let backlog = col(row, 3);
            assert!((handled + backlog - arrived).abs() < 1e-9, "conservation");
            assert!((0.0..=1.0).contains(&col(row, 5)));
        }
    }

    #[test]
    fn maintenance_strategies_all_reasonable() {
        let c = corpus();
        let t = maintenance_table(&c, FeatureKind::TcpConnections);
        assert_eq!(t.len(), 5);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let median: f64 = line.split(',').nth(2).unwrap().parse().unwrap();
            assert!(median <= 0.05, "median realized FP sane: {line}");
        }
    }
}
