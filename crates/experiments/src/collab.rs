//! Extension: collaborative (sentinel) detection — the paper's §7.
//!
//! "Those users with high detection rates can inform other users when
//! malicious events occur." Under diversity, the most sensitive users per
//! feature act as sentinels; an advisory fires when a quorum of them alarm
//! in the same window. This experiment sweeps sentinel-pool size and
//! quorum against the Storm replay, measuring the coverage the advisory
//! gives every user (including those whose own detectors missed) and the
//! advisory false-alarm rate on clean weeks.

use flowtab::FeatureKind;
use hids_core::{Grouping, Policy, ThresholdHeuristic};
use itconsole::{sentinel_consensus, SentinelConfig};
use synthgen::{storm_week_series, StormConfig};

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// One sentinel configuration's outcome.
#[derive(Debug, Clone, Copy)]
pub struct CollabRow {
    /// Sentinels enlisted.
    pub n_sentinels: usize,
    /// Quorum required.
    pub quorum: usize,
    /// Fraction of zombie-active windows covered by an advisory.
    pub coverage: f64,
    /// Fraction of clean windows that (wrongly) triggered an advisory.
    pub false_advisories: f64,
}

/// The collaborative-detection sweep.
#[derive(Debug, Clone)]
pub struct CollabResult {
    /// One row per (pool size, quorum) combination.
    pub rows: Vec<CollabRow>,
    /// Median per-user solo detection rate, for contrast.
    pub median_solo_detection: f64,
}

/// Build the per-user alarm matrix for a (possibly attacked) test week.
fn alarm_matrix(
    test_counts: &[Vec<u64>],
    thresholds: &[f64],
    overlay: Option<&[u64]>,
) -> Vec<Vec<bool>> {
    test_counts
        .iter()
        .zip(thresholds)
        .map(|(counts, &t)| {
            counts
                .iter()
                .enumerate()
                .map(|(w, &g)| {
                    let b = overlay.map_or(0, |z| z[w % z.len()]);
                    (g + b) as f64 > t
                })
                .collect()
        })
        .collect()
}

/// Run the sentinel sweep on the Storm replay (full-diversity thresholds,
/// `num-distinct-connections`).
pub fn run(corpus: &Corpus, train_week: usize, storm: &StormConfig) -> CollabResult {
    let feature = FeatureKind::DistinctConnections;
    let ds = corpus.dataset(feature, train_week);
    let thresholds = Policy {
        grouping: Grouping::FullDiversity,
        heuristic: ThresholdHeuristic::P99,
    }
    .configure(&ds.train)
    .thresholds;

    let zombie = storm_week_series(storm, corpus.config.windowing(), 0);
    let zombie_counts = zombie.feature(feature);
    let attack_windows: Vec<usize> = zombie_counts
        .iter()
        .enumerate()
        .filter(|(_, &b)| b > 0)
        .map(|(w, _)| w)
        .collect();

    let attacked = alarm_matrix(&ds.test_counts, &thresholds, Some(&zombie_counts));
    let clean = alarm_matrix(&ds.test_counts, &thresholds, None);
    let n_windows = ds.test_counts.first().map_or(0, |c| c.len());

    // Per-user solo detection for contrast.
    let mut solo: Vec<f64> = attacked
        .iter()
        .map(|row| {
            attack_windows
                .iter()
                .filter(|&&w| row.get(w).copied().unwrap_or(false))
                .count() as f64
                / attack_windows.len().max(1) as f64
        })
        .collect();
    solo.sort_by(|a, b| a.total_cmp(b));
    let median_solo_detection = solo[solo.len() / 2];

    let mut rows = Vec::new();
    for n_sentinels in [5usize, 10, 20] {
        for quorum in [1usize, 3, 5] {
            if quorum > n_sentinels {
                continue;
            }
            let config = SentinelConfig {
                n_sentinels,
                quorum,
            };
            let advisories = sentinel_consensus(&attacked, &thresholds, &config);
            let covered = advisories
                .iter()
                .filter(|w| attack_windows.contains(w))
                .count();
            let false_set = sentinel_consensus(&clean, &thresholds, &config);
            rows.push(CollabRow {
                n_sentinels,
                quorum,
                coverage: covered as f64 / attack_windows.len().max(1) as f64,
                false_advisories: false_set.len() as f64 / n_windows.max(1) as f64,
            });
        }
    }

    CollabResult {
        rows,
        median_solo_detection,
    }
}

/// Render the sweep.
pub fn table(r: &CollabResult) -> Table {
    let mut t = Table::new(
        &format!(
            "Collaborative sentinel detection (Storm replay; median solo detection {:.2})",
            r.median_solo_detection
        ),
        &["sentinels", "quorum", "advisory coverage", "false advisories"],
    );
    for row in &r.rows {
        t.row(vec![
            row.n_sentinels.to_string(),
            row.quorum.to_string(),
            fnum(row.coverage),
            fnum(row.false_advisories),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn result() -> CollabResult {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 60,
            n_weeks: 2,
            ..CorpusConfig::small()
        });
        run(&corpus, 0, &StormConfig::default())
    }

    #[test]
    fn advisories_beat_the_median_solo_detector() {
        let r = result();
        let best = r
            .rows
            .iter()
            .filter(|x| x.quorum >= 3)
            .map(|x| x.coverage)
            .fold(0.0f64, f64::max);
        assert!(
            best >= r.median_solo_detection,
            "quorum advisories ({best:.2}) cover at least the median user ({:.2})",
            r.median_solo_detection
        );
    }

    #[test]
    fn quorum_trades_coverage_for_false_advisories() {
        let r = result();
        let at = |s: usize, q: usize| {
            r.rows
                .iter()
                .find(|x| x.n_sentinels == s && x.quorum == q)
                .copied()
                .expect("row exists")
        };
        // Stricter quorum cannot increase either rate.
        assert!(at(10, 3).coverage <= at(10, 1).coverage + 1e-12);
        assert!(at(10, 3).false_advisories <= at(10, 1).false_advisories + 1e-12);
        assert!(at(10, 5).false_advisories <= at(10, 3).false_advisories + 1e-12);
        // More sentinels at fixed quorum cannot decrease coverage.
        assert!(at(20, 3).coverage >= at(5, 3).coverage - 1e-12);
    }

    #[test]
    fn false_advisory_rate_small_with_quorum() {
        let r = result();
        for row in r.rows.iter().filter(|x| x.quorum >= 3) {
            assert!(
                row.false_advisories < 0.25,
                "{row:?} false advisories bounded"
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let r = result();
        assert_eq!(table(&r).len(), r.rows.len());
        assert_eq!(r.rows.len(), 9);
    }
}
