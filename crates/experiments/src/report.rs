//! Plain-text and CSV rendering for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (header + rows, RFC-4180 quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Write a table's CSV to `dir/name.csv`, creating the directory.
pub fn write_csv(table: &Table, dir: &Path, name: &str) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.csv")), table.to_csv())
}

/// Format a float compactly (3 significant decimals, trailing zeros kept
/// short).
pub fn fnum(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e9 {
        format!("{}", x as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have equal length (alignment).
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("q", &["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("q", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(1594.0), "1594");
        assert_eq!(fnum(0.0123), "0.0123");
        assert_eq!(fnum(123.456), "123.5");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("mh-report-test");
        let mut t = Table::new("f", &["x"]);
        t.row(vec!["1".into()]);
        write_csv(&t, &dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(content.starts_with("x\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
