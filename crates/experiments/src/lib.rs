//! # experiments — regenerate every table and figure of the paper
//!
//! One module per artifact of the evaluation section, each exposing a
//! `run(&Corpus) -> *Result` function returning typed data plus an ASCII /
//! CSV renderer, so the `repro` binary (and the Criterion benches in
//! `crates/bench`) can regenerate any row of EXPERIMENTS.md:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1(a–f): sorted per-user 99th/99.9th-percentile thresholds |
//! | [`fig2`] | Fig. 2: per-user TCP vs UDP 99th-percentile scatter |
//! | [`tab2`] | Table 2: best-10 users per alarm type + overlap |
//! | [`fig3`] | Fig. 3(a,b): utility boxplots and mean utility vs `w` |
//! | [`tab3`] | Table 3: false alarms/week at the central console |
//! | [`fig4`] | Fig. 4(a,b): naive detection curves, mimicry hidden traffic |
//! | [`fig5`] | Fig. 5(a,b): Storm replay FP/detection scatter |
//! | [`drift`] | extension: week-over-week threshold drift |
//! | [`multifeat`] | extension: concurrent multi-feature monitoring trade-off |
//! | [`collab`] | extension: collaborative sentinel detection (§7) |
//! | [`seeds`] | extension: seed sensitivity of the headline conclusions |
//! | [`ops`] | extension: analyst triage cost & threshold maintenance |
//! | [`ablation`] | extension: group count / binning / heuristic ablations |
//! | [`chaos`] | extension: fault injection & degraded-mode behaviour |
//! | [`daemon`] | extension: crash-safe streaming evaluation daemon |
//! | [`ingest`] | extension: hardened syslog/CEF + DNS wire ingest plane |
//! | [`cluster`] | extension: fault-tolerant multi-node fleetd sharding |
//! | [`rollout`] | extension: drift-aware canary rollouts & rollback |
//! | [`controlplane`] | extension: operator control plane under crash injection |
//! | [`megafleet`] | extension: million-host sketch-backed fleet evaluation |
//! | [`sketchablate`] | extension: sketch-vs-exact error ablation at paper scale |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chaos;
pub mod cluster;
pub mod collab;
pub mod controlplane;
pub mod daemon;
pub mod data;
pub mod drift;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod ingest;
pub mod megafleet;
pub mod multifeat;
pub mod ops;
pub mod pipeline;
pub mod plot;
pub mod report;
pub mod rollout;
pub mod seeds;
pub mod sketchablate;
pub mod tab2;
pub mod tab3;

pub use data::{Corpus, CorpusConfig};
pub use report::{Table, write_csv};
