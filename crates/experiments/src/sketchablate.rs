//! sketchablate — sketch-vs-exact error ablation at paper scale.
//!
//! The megafleet path replaces exact per-host sample vectors with
//! [`tailstats::KllSketch`]es. This ablation quantifies what that
//! substitution costs on the paper's own population (350 users, train
//! week → test week): for every user it fits each threshold heuristic
//! twice — once on the exact [`tailstats::EmpiricalDist`], once on a
//! sketch fed the identical window counts — and reports the resulting
//! threshold, FP, FN and utility deviations, plus the observed rank
//! (CDF) deviation at the tail quantiles the paper reads off Fig. 1.
//!
//! The sketch's contract is a *rank* guarantee: for every value `v`,
//! `|rank_sketch(v) − rank_exact(v)| ≤ eps·n`. [`AblateResult::check`]
//! verifies the observed worst case against that bound (plus one
//! window's worth of discretisation slack), which is the acceptance
//! criterion CI enforces at reduced scale.

use flowtab::FeatureKind;
use hids_core::{par_map_range, score_source, AttackSweep, ThresholdHeuristic};
use tailstats::{EmpiricalDist, KllSketch, QuantileSource};

use crate::data::Corpus;
use crate::report::{fnum, Table};

/// Quantiles probed for rank deviation (the paper's Fig. 1 tail levels).
pub const PROBE_QS: [f64; 3] = [0.90, 0.95, 0.99];

/// Per-heuristic aggregate deviations between exact and sketch backends.
#[derive(Debug, Clone)]
pub struct HeuristicDelta {
    /// Display name.
    pub name: &'static str,
    /// Mean relative threshold deviation `|t_s − t_e| / max(t_e, 1)`.
    pub mean_rel_threshold_dev: f64,
    /// Worst absolute FP deviation across users.
    pub max_fp_dev: f64,
    /// Worst absolute mean-FN deviation across users.
    pub max_fn_dev: f64,
    /// Worst absolute utility deviation across users.
    pub max_utility_dev: f64,
}

/// Outcome of the ablation.
#[derive(Debug, Clone)]
pub struct AblateResult {
    /// Sketch rank-error budget used.
    pub eps: f64,
    /// Users evaluated.
    pub n_users: usize,
    /// Windows per user week (discretisation granularity of ranks).
    pub n_windows: usize,
    /// Worst observed `|cdf_sketch(v) − cdf_exact(v)|` at each probe
    /// quantile's sketch value, across all users (train week).
    pub max_rank_dev: [f64; PROBE_QS.len()],
    /// Worst observed rank deviation anywhere (max over probes).
    pub worst_rank_dev: f64,
    /// Per-heuristic threshold/score deviations.
    pub heuristics: Vec<HeuristicDelta>,
}

fn heuristics(sweep: &AttackSweep) -> Vec<(&'static str, ThresholdHeuristic)> {
    vec![
        ("percentile-99", ThresholdHeuristic::Percentile(0.99)),
        ("mean+3sigma", ThresholdHeuristic::MeanSigma(3.0)),
        (
            "utility-max",
            ThresholdHeuristic::UtilityMax {
                w: 0.4,
                sweep: sweep.clone(),
            },
        ),
        (
            "f-measure",
            ThresholdHeuristic::FMeasure {
                prevalence: 0.01,
                sweep: sweep.clone(),
            },
        ),
    ]
}

struct UserDev {
    rank_dev: [f64; PROBE_QS.len()],
    // per heuristic: (rel threshold dev, fp dev, fn dev, utility dev)
    per_h: Vec<(f64, f64, f64, f64)>,
}

/// Run the ablation on `corpus` (train week 0 → test week 1) at sketch
/// accuracy `eps`.
pub fn run(corpus: &Corpus, feature: FeatureKind, eps: f64) -> AblateResult {
    let ds = corpus.dataset(feature, 0);
    let n_users = ds.train.len();
    let sweep = ds.default_sweep();
    let hs = heuristics(&sweep);
    let w = 0.4;

    let devs: Vec<UserDev> = par_map_range(n_users, |u| {
        let train_counts = corpus.series(u, 0).feature(feature);
        let test_counts = corpus.series(u, 1).feature(feature);
        let exact_train = &ds.train[u];
        let exact_test = &ds.test[u];
        let mut sk_train = KllSketch::new(eps);
        sk_train.extend_from_counts(&train_counts);
        let mut sk_test = KllSketch::new(eps);
        sk_test.extend_from_counts(&test_counts);

        // Rank deviation: at each probe quantile, compare the exact CDF
        // of the sketch's answer with the sketch's own CDF of it.
        let mut rank_dev = [0.0; PROBE_QS.len()];
        for (i, &q) in PROBE_QS.iter().enumerate() {
            let v = sk_train.quantile_discrete(q);
            rank_dev[i] = (sk_train.cdf(v) - exact_train.cdf(v)).abs();
        }

        let src_train = QuantileSource::Sketch(sk_train);
        let src_test = QuantileSource::Sketch(sk_test);
        let per_h = hs
            .iter()
            .map(|(_, h)| {
                let te = h.threshold(exact_train);
                let ts = h.threshold_source(&src_train);
                let pe = score_exact(exact_test, te, &sweep, w);
                let ps = score_source(&src_test, ts, &sweep, w);
                (
                    (ts - te).abs() / te.max(1.0),
                    (ps.fp - pe.0).abs(),
                    (ps.fn_rate - pe.1).abs(),
                    (ps.utility - pe.2).abs(),
                )
            })
            .collect();
        UserDev { rank_dev, per_h }
    });

    let mut max_rank_dev = [0.0f64; PROBE_QS.len()];
    let mut agg: Vec<(f64, f64, f64, f64)> = vec![(0.0, 0.0, 0.0, 0.0); hs.len()];
    for d in &devs {
        for i in 0..PROBE_QS.len() {
            max_rank_dev[i] = max_rank_dev[i].max(d.rank_dev[i]);
        }
        for (a, p) in agg.iter_mut().zip(&d.per_h) {
            a.0 += p.0;
            a.1 = a.1.max(p.1);
            a.2 = a.2.max(p.2);
            a.3 = a.3.max(p.3);
        }
    }
    let heuristics = hs
        .iter()
        .zip(&agg)
        .map(|((name, _), a)| HeuristicDelta {
            name,
            mean_rel_threshold_dev: a.0 / n_users.max(1) as f64,
            max_fp_dev: a.1,
            max_fn_dev: a.2,
            max_utility_dev: a.3,
        })
        .collect();
    AblateResult {
        eps,
        n_users,
        n_windows: corpus.config.windowing().windows_per_week(),
        max_rank_dev,
        worst_rank_dev: max_rank_dev.iter().fold(0.0f64, |m, &d| m.max(d)),
        heuristics,
    }
}

/// Exact-backend (fp, fn, utility) at threshold `t` — the historical
/// float expressions, for a like-for-like comparison.
fn score_exact(test: &EmpiricalDist, t: f64, sweep: &AttackSweep, w: f64) -> (f64, f64, f64) {
    let fp = test.exceedance(t);
    let fn_rate = sweep.mean_fn(test, t);
    (fp, fn_rate, hids_core::utility_of(w, fp, fn_rate))
}

impl AblateResult {
    /// Rank-deviation bound the sketch guarantees: `eps` plus one
    /// window's worth of discretisation slack (exact CDF moves in steps
    /// of `1/n_windows`).
    pub fn rank_budget(&self) -> f64 {
        self.eps + 1.0 / self.n_windows.max(1) as f64
    }

    /// Verify the observed worst-case rank deviation is within budget.
    pub fn check(&self) -> Result<(), String> {
        let budget = self.rank_budget();
        if self.worst_rank_dev > budget + 1e-12 {
            return Err(format!(
                "observed rank deviation {:.6} exceeds budget {:.6} (eps {})",
                self.worst_rank_dev, budget, self.eps
            ));
        }
        if self.heuristics.is_empty() {
            return Err("no heuristics evaluated".into());
        }
        Ok(())
    }

    /// Rank-deviation table (one row per probe quantile).
    pub fn rank_table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "sketch rank error vs exact — {} users, eps {}",
                self.n_users, self.eps
            ),
            &["quantile", "max |cdf_s - cdf_e|", "budget"],
        );
        for (i, &q) in PROBE_QS.iter().enumerate() {
            t.row(vec![
                format!("q{:02.0}", q * 100.0),
                format!("{:.6}", self.max_rank_dev[i]),
                format!("{:.6}", self.rank_budget()),
            ]);
        }
        t
    }

    /// Per-heuristic deviation table.
    pub fn heuristic_table(&self) -> Table {
        let mut t = Table::new(
            "sketch-vs-exact threshold & score deviations",
            &[
                "heuristic",
                "mean rel dT",
                "max |dFP|",
                "max |dFN|",
                "max |dU|",
            ],
        );
        for h in &self.heuristics {
            t.row(vec![
                h.name.to_string(),
                fnum(h.mean_rel_threshold_dev),
                format!("{:.6}", h.max_fp_dev),
                format!("{:.6}", h.max_fn_dev),
                format!("{:.6}", h.max_utility_dev),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small())
    }

    #[test]
    fn tight_eps_is_exact_on_small_population() {
        // eps small enough that nothing compacts on a 672-window week:
        // thresholds and scores must match the exact backend bitwise.
        let r = run(&corpus(), FeatureKind::TcpConnections, 0.0005);
        r.check().expect("within budget");
        assert_eq!(r.worst_rank_dev, 0.0);
        for h in &r.heuristics {
            if h.name == "mean+3sigma" {
                // Moments come from the sketch's integer sum/sum_sq
                // rather than a float-sample pass: mathematically equal,
                // so only last-ulp accumulation-order noise remains.
                assert!(h.mean_rel_threshold_dev < 1e-12, "{} drifted", h.name);
                assert!(h.max_utility_dev < 1e-9, "{} utility drifted", h.name);
            } else {
                // Rank-based heuristics read identical values out of an
                // uncompacted sketch: bitwise equality.
                assert_eq!(h.mean_rel_threshold_dev, 0.0, "{} drifted", h.name);
                assert_eq!(h.max_utility_dev, 0.0, "{} utility drifted", h.name);
            }
        }
    }

    #[test]
    fn lossy_eps_stays_within_rank_budget() {
        let r = run(&corpus(), FeatureKind::TcpConnections, 0.05);
        r.check().expect("rank deviation within eps + 1/n");
        assert!(!r.rank_table().is_empty());
        assert_eq!(r.heuristics.len(), 4);
        assert!(!r.heuristic_table().is_empty());
    }
}
