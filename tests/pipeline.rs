//! Acceptance contract for the end-to-end measurement pipeline.
//!
//! `experiments::pipeline` drives synthetic weeks through every layer
//! this repo builds — pcap render, fault-tolerant capture decode, flow
//! extraction, per-window features, the hardened (sanitizing) syslog/CEF
//! wire, and the paper's grouping sweep. The contract:
//!
//! 1. a clean capture is loss-free and the packet-measured features are
//!    window-identical to the generated series;
//! 2. the wire leg survives a hostile ANSI-laced envelope byte-exactly;
//! 3. the sweep fits finite utilities for all three groupings, ordered
//!    the way the paper orders them (diversity beats homogeneous);
//! 4. counters replay exactly — the run is deterministic.

use std::sync::OnceLock;

use experiments::pipeline::{run, PipelineReport, PipelineScenario};

fn scenario() -> PipelineScenario {
    PipelineScenario {
        n_users: 4,
        n_windows: 12,
        ..PipelineScenario::default()
    }
}

/// One pair of identical runs, shared by every test in this binary (the
/// pipeline is the expensive part; the assertions are cheap).
fn runs() -> &'static (PipelineReport, PipelineReport) {
    static RUNS: OnceLock<(PipelineReport, PipelineReport)> = OnceLock::new();
    RUNS.get_or_init(|| {
        let a = run(&scenario()).expect("pipeline runs");
        let b = run(&scenario()).expect("pipeline runs");
        (a, b)
    })
}

#[test]
fn pipeline_holds_every_cross_stage_law() {
    let (r, _) = runs();
    r.check().expect("cross-stage invariants");
    assert!(r.frames_written > 0, "working-day span must carry traffic");
    assert_eq!(r.records_ok, r.frames_written, "clean capture must be loss-free");
    assert_eq!(r.feature_mismatches, 0, "packet path must add nothing");
    assert_eq!(r.wire_mismatches, 0, "sanitized wire must be exact");
    assert_eq!(r.wire_datagrams, 2 * 4, "one datagram per user-week");
    assert!(r.events_per_sec > 0.0, "throughput figure must be nonzero");
}

#[test]
fn pipeline_sweep_reproduces_the_papers_ordering() {
    let (r, _) = runs();
    let utility = |label: &str| -> f64 {
        r.sweep
            .iter()
            .find(|row| row.grouping == label)
            .unwrap_or_else(|| panic!("missing grouping {label}"))
            .mean_utility
    };
    // The paper's core claim, visible even in this small packet-measured
    // population: per-host thresholds beat one fleet-wide threshold.
    assert!(
        utility("Full Diversity") > utility("Homogeneous"),
        "diversity {} must beat homogeneous {}",
        utility("Full Diversity"),
        utility("Homogeneous")
    );
}

#[test]
fn pipeline_counters_replay_exactly() {
    let (a, b) = runs();
    assert_eq!(a.frames_written, b.frames_written);
    assert_eq!(a.flows_rendered, b.flows_rendered);
    assert_eq!(a.bytes_written, b.bytes_written);
    assert_eq!(a.records_ok, b.records_ok);
    assert_eq!(a.wire_bytes, b.wire_bytes);
    for (ra, rb) in a.sweep.iter().zip(&b.sweep) {
        assert_eq!(ra.grouping, rb.grouping);
        assert_eq!(ra.mean_utility.to_bits(), rb.mean_utility.to_bits());
    }
}
