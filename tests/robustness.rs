//! Fault-injection / robustness properties: the measurement pipeline must
//! never panic on hostile or corrupted input — a HIDS that crashes on a
//! malformed packet is itself a vulnerability.

use proptest::prelude::*;

use flowtab::{DnsTracker, Endpoint, FlowExtractor, FlowTableConfig};
use netpkt::dns::parse_answers;
use netpkt::{ArpPacket, DnsHeader, IcmpMessage, Ipv4Packet, PcapReader, TcpOptionIter, TcpSegment, UdpDatagram};
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every parser returns Ok or Err — never panics — on arbitrary bytes.
    #[test]
    fn parsers_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Ipv4Packet::parse(&bytes[..]);
        let _ = TcpSegment::parse(&bytes[..]);
        let _ = UdpDatagram::parse(&bytes[..]);
        let _ = IcmpMessage::parse(&bytes[..]);
        let _ = ArpPacket::parse(&bytes[..]);
        let _ = DnsHeader::parse(&bytes[..]);
        let _ = parse_answers(&bytes[..]);
        let _: Vec<_> = TcpOptionIter::new(&bytes[..]).take(1000).collect();
    }

    /// The flow extractor accepts any frame bytes without panicking and
    /// never fabricates flows from garbage it rejected.
    #[test]
    fn extractor_total_on_garbage(frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..50)) {
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        let mut accepted = 0u64;
        for (i, frame) in frames.iter().enumerate() {
            if ex.push_frame(i as f64, frame).is_ok() {
                accepted += 1;
            }
        }
        prop_assert_eq!(ex.stats().accepted, accepted);
        prop_assert!(ex.finish().len() as u64 <= accepted);
    }

    /// A valid frame corrupted at a random position either still parses
    /// (the flip hit the payload) or is cleanly rejected — never panics.
    #[test]
    fn corrupted_valid_frame_handled(pos in 0usize..100, bit in 0u8..8) {
        let mut frame = netpkt::testutil::sample_tcp_syn();
        if pos < frame.len() {
            frame[pos] ^= 1 << bit;
        }
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        let _ = ex.push_frame(0.0, &frame);
        let _ = ex.finish();
    }

    /// The pcap reader is total on arbitrary bytes: it either errors or
    /// yields records, and bounded memory is respected (no multi-GiB
    /// allocations from a forged length).
    #[test]
    fn pcap_reader_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(mut reader) = PcapReader::new(&bytes[..]) {
            for _ in 0..100 {
                match reader.next_packet() {
                    Ok(Some(pkt)) => prop_assert!(pkt.data.len() <= 0x0400_0000),
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    /// The DNS transaction tracker is total on arbitrary payloads.
    #[test]
    fn dns_tracker_total(payloads in proptest::collection::vec((any::<bool>(), proptest::collection::vec(any::<u8>(), 0..100)), 0..40)) {
        let client = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 5000);
        let mut tracker = DnsTracker::new(5.0);
        for (i, (from_client, payload)) in payloads.iter().enumerate() {
            tracker.observe(i as f64, client, *from_client, payload);
        }
        let (txs, stats) = tracker.finish();
        prop_assert!(stats.answered + stats.timed_out >= txs.iter().filter(|t| t.response_ts.is_some()).count() as u64);
        prop_assert!(stats.failure_rate() >= 0.0 && stats.failure_rate() <= 1.0);
    }

    /// A truncated pcap of valid frames loses at most the trailing record.
    #[test]
    fn truncated_pcap_degrades_gracefully(cut in 1usize..200) {
        use netpkt::{LinkType, PcapPacket, PcapWriter};
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        for i in 0..5u32 {
            w.write_packet(&PcapPacket {
                ts_sec: i,
                ts_usec: 0,
                data: netpkt::testutil::sample_tcp_syn(),
            })
            .unwrap();
        }
        let mut bytes = w.finish().unwrap();
        let record_len = 16 + netpkt::testutil::sample_tcp_syn().len();
        let cut = cut.min(bytes.len() - 24);
        bytes.truncate(bytes.len() - cut);
        let mut reader = PcapReader::new(&bytes[..]).unwrap();
        let mut ok = 0usize;
        while let Ok(Some(_)) = reader.next_packet() {
            ok += 1;
        }
        let lost_at_most = cut.div_ceil(record_len);
        prop_assert!(
            ok + lost_at_most >= 5,
            "only truncated records lost: kept {ok}, cut {cut} (record {record_len})"
        );
    }
}
