//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;

use flowtab::{FeatureKind, Windowing};
use hids_core::{AttackSweep, Grouping, PartialMethod, Policy, ThresholdHeuristic};
use netpkt::testutil::{build_tcp_frame, build_udp_frame, FrameSpec};
use netpkt::{EthernetFrame, Ipv4Packet, TcpFlags, TcpSegment, UdpDatagram};
use synthgen::{invariants_hold, user_week_series, Population, PopulationConfig};
use tailstats::EmpiricalDist;

fn arb_spec() -> impl Strategy<Value = FrameSpec> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        1024u16..65535,
        1u16..65535,
        any::<u16>(),
    )
        .prop_map(|(src, dst, sport, dport, ip_id)| FrameSpec {
            src_ip: src.into(),
            dst_ip: dst.into(),
            src_port: sport,
            dst_port: dport,
            ip_id,
            ..FrameSpec::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any TCP frame we build parses back to the same header fields with
    /// valid checksums at both layers.
    #[test]
    fn tcp_frame_roundtrip(spec in arb_spec(), seq in any::<u32>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let frame = build_tcp_frame(&spec, TcpFlags::syn_only(), seq, &payload);
        let eth = EthernetFrame::parse(&frame[..]).unwrap();
        let ip = Ipv4Packet::parse(eth.payload()).unwrap();
        prop_assert!(ip.verify_checksum());
        prop_assert_eq!(ip.src(), spec.src_ip);
        prop_assert_eq!(ip.dst(), spec.dst_ip);
        let tcp = TcpSegment::parse(ip.payload()).unwrap();
        prop_assert!(tcp.verify_checksum(ip.src(), ip.dst()));
        prop_assert_eq!(tcp.src_port(), spec.src_port);
        prop_assert_eq!(tcp.dst_port(), spec.dst_port);
        prop_assert_eq!(tcp.seq(), seq);
        prop_assert_eq!(tcp.payload(), &payload[..]);
    }

    /// Same for UDP frames.
    #[test]
    fn udp_frame_roundtrip(spec in arb_spec(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let frame = build_udp_frame(&spec, &payload);
        let eth = EthernetFrame::parse(&frame[..]).unwrap();
        let ip = Ipv4Packet::parse(eth.payload()).unwrap();
        prop_assert!(ip.verify_checksum());
        let udp = UdpDatagram::parse(ip.payload()).unwrap();
        prop_assert!(udp.verify_checksum(ip.src(), ip.dst()));
        prop_assert_eq!(udp.payload(), &payload[..]);
    }

    /// Corrupting any single byte of an IPv4 header is detected by the
    /// header checksum.
    #[test]
    fn ip_header_corruption_detected(spec in arb_spec(), byte in 14usize..34, bit in 0u8..8) {
        let mut frame = build_tcp_frame(&spec, TcpFlags::syn_only(), 1, &[]);
        frame[byte] ^= 1 << bit;
        let eth = EthernetFrame::parse(&frame[..]).unwrap();
        if let Ok(ip) = Ipv4Packet::parse(eth.payload()) {
            prop_assert!(!ip.verify_checksum());
        }
        // A parse error is also an acceptable detection.
    }

    /// Empirical-distribution laws: quantiles are monotone and bounded;
    /// CDF/exceedance are complementary; `max_shift_below` honours its
    /// contract.
    #[test]
    fn empirical_dist_laws(mut samples in proptest::collection::vec(0u64..100_000, 1..300), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        samples.sort_unstable();
        let d = EmpiricalDist::from_counts(&samples);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        prop_assert!(d.quantile(lo) <= d.quantile(hi));
        prop_assert!(d.quantile(0.0) >= d.min());
        prop_assert!(d.quantile(1.0) <= d.max());
        prop_assert!(d.quantile_discrete(lo) <= d.quantile_discrete(hi));

        let x = d.quantile(q1);
        prop_assert!((d.cdf(x) + d.exceedance(x) - 1.0).abs() < 1e-12);
        prop_assert!(d.below(x) <= d.cdf(x) + 1e-12);

        // Mimicry budget: the returned supremum, reduced to the lattice,
        // satisfies P(g + b < t) >= prob.
        let t = d.max() + 10.0;
        let sup = d.max_shift_below(t, 0.9);
        let b = if sup <= 0.0 { 0.0 } else { (sup - 1.0).max(0.0).floor() };
        prop_assert!(d.below(t - b) >= 0.9);
    }

    /// Generated windows always satisfy the structural invariants, for any
    /// seed and any user.
    #[test]
    fn generated_counts_satisfy_invariants(seed in any::<u64>(), user in 0u32..20) {
        let pop = Population::sample(PopulationConfig { n_users: 20, seed, ..Default::default() });
        let s = user_week_series(&pop.users[user as usize], seed, 0, Windowing::FIFTEEN_MIN);
        for c in &s.windows {
            prop_assert!(invariants_hold(c), "{c:?}");
        }
    }

    /// Percentile thresholds are monotone in the percentile, and every
    /// grouping policy assigns every user a finite threshold within the
    /// population's observed range (plus one step).
    #[test]
    fn policy_thresholds_well_formed(seed in any::<u64>(), qa in 0.5f64..0.999, qb in 0.5f64..0.999) {
        let pop = Population::sample(PopulationConfig { n_users: 12, seed, ..Default::default() });
        let train: Vec<EmpiricalDist> = pop
            .users
            .iter()
            .map(|u| {
                let s = user_week_series(u, seed, 0, Windowing::FIFTEEN_MIN);
                EmpiricalDist::from_counts(&s.feature(FeatureKind::TcpConnections))
            })
            .collect();
        let (lo_q, hi_q) = (qa.min(qb), qa.max(qb));
        let global_max = train.iter().map(|d| d.max()).fold(0.0f64, f64::max);

        for grouping in [
            Grouping::Homogeneous,
            Grouping::FullDiversity,
            Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            Grouping::Partial(PartialMethod::KMeans { k: 3 }),
            Grouping::Partial(PartialMethod::QuantileBands { k: 4 }),
        ] {
            let out_lo = Policy { grouping, heuristic: ThresholdHeuristic::Percentile(lo_q) }.configure(&train);
            let out_hi = Policy { grouping, heuristic: ThresholdHeuristic::Percentile(hi_q) }.configure(&train);
            for (a, b) in out_lo.thresholds.iter().zip(&out_hi.thresholds) {
                prop_assert!(a.is_finite() && b.is_finite());
                prop_assert!(b >= a, "percentile monotone: {b} >= {a}");
                prop_assert!(*b <= global_max);
                prop_assert!(*a >= 0.0);
            }
        }
    }

    /// The attack sweep's mean FN is monotone in the threshold and within
    /// [0, 1] for arbitrary data.
    #[test]
    fn mean_fn_monotone(samples in proptest::collection::vec(0u64..10_000, 2..200), t1 in 0.0f64..20_000.0, t2 in 0.0f64..20_000.0) {
        let d = EmpiricalDist::from_counts(&samples);
        let sweep = AttackSweep::up_to(d.max() * 2.0 + 10.0);
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let f_lo = sweep.mean_fn(&d, lo);
        let f_hi = sweep.mean_fn(&d, hi);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!((0.0..=1.0).contains(&f_hi));
        prop_assert!(f_hi >= f_lo);
    }
}
