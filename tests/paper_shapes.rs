//! The reproduction certificate: every table and figure's *shape* claims,
//! checked on one mid-sized corpus (kept below the paper's 350×5 for test
//! runtime; the `repro` binary regenerates the full-scale numbers recorded
//! in EXPERIMENTS.md).

use std::sync::OnceLock;

use experiments::{ablation, drift, fig1, fig2, fig3, fig4, fig5, tab2, tab3, Corpus, CorpusConfig};
use flowtab::FeatureKind;
use synthgen::StormConfig;

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        Corpus::generate(CorpusConfig {
            n_users: 150,
            n_weeks: 4,
            ..Default::default()
        })
    })
}

/// Fig. 1: thresholds span decades; DNS varies least; 99.9th a small
/// factor above the 99th; a heavy-user knee at the top.
#[test]
fn fig1_tail_diversity() {
    let r = fig1::run(corpus(), 0);
    let span_of = |k: FeatureKind| {
        r.curves
            .iter()
            .find(|c| c.feature == k)
            .expect("curve exists")
            .span_decades()
    };
    for k in [
        FeatureKind::TcpConnections,
        FeatureKind::TcpSyn,
        FeatureKind::UdpConnections,
        FeatureKind::DistinctConnections,
        FeatureKind::HttpConnections,
    ] {
        assert!(span_of(k) >= 1.8, "{k}: span {:.2} decades", span_of(k));
        assert!(span_of(k) >= span_of(FeatureKind::DnsConnections) - 0.3,
            "{k} at least as dispersed as DNS");
    }
    for c in &r.curves {
        let ratio = c.median_tail_ratio();
        assert!((1.05..8.0).contains(&ratio), "{}: q999/q99 {ratio:.2}", c.feature);
        // Knee: the top 10% of users sit far above the median user.
        let n = c.points.len();
        let median = c.points[n / 2].1.max(1.0);
        let p90 = c.points[(n * 9) / 10].1.max(1.0);
        assert!(p90 / median >= 2.0, "{}: knee ratio {:.1}", c.feature, p90 / median);
    }
}

/// Fig. 2: users occupy opposite orientation corners.
#[test]
fn fig2_orientation_corners() {
    let r = fig2::run(corpus(), 0);
    assert!(!r.tcp_heavy_udp_light.is_empty());
    assert!(!r.udp_heavy_tcp_light.is_empty());
    assert!(r.log_correlation < 0.9, "features are not interchangeable");
}

/// Table 2: the best TCP detectors and best UDP detectors barely overlap.
#[test]
fn tab2_best_users_differ_by_alarm_type() {
    let r = tab2::run(corpus(), 0, 10);
    assert!(r.full.common() <= 6, "full-diversity overlap {}", r.full.common());
    assert!(r.partial.common() <= 8, "partial overlap {}", r.partial.common());
}

/// Fig. 3(a): diversity dominates the monoculture for most users;
/// 8-partial lands close to full diversity.
#[test]
fn fig3a_utility_ordering() {
    let r = fig3::run_a(corpus(), FeatureKind::TcpConnections, 0.4);
    let (homog, full, partial) = (
        r.boxes[0].summary.mean,
        r.boxes[1].summary.mean,
        r.boxes[2].summary.mean,
    );
    assert!(full > homog, "full {full:.4} > homog {homog:.4}");
    assert!(partial > homog, "partial {partial:.4} > homog {homog:.4}");
    assert!(
        (full - partial).abs() < (full - homog),
        "partial closer to full than to the monoculture"
    );
    // Majority of individual users improve.
    let improved = r.boxes[0]
        .utilities
        .iter()
        .zip(&r.boxes[1].utilities)
        .filter(|(h, f)| f > h)
        .count();
    assert!(improved * 3 > corpus().n_users() * 2, "improved {improved}");
}

/// Fig. 3(b): the diversity gain grows monotonically with the FN weight.
#[test]
fn fig3b_gap_grows_with_w() {
    let r = fig3::run_b(corpus(), FeatureKind::TcpConnections, &fig3::paper_weights());
    let gaps: Vec<f64> = (0..r.weights.len())
        .map(|i| r.means[1][i] - r.means[0][i])
        .collect();
    for pair in gaps.windows(2) {
        assert!(pair[1] >= pair[0] - 1e-9, "gap non-decreasing: {gaps:?}");
    }
    assert!(gaps[8] > gaps[0] * 3.0, "gap at w=0.9 several times w=0.1");
    // All three curves decline with w (fixed p99 thresholds pay more FN).
    for means in &r.means {
        assert!(means[8] < means[0]);
    }
}

/// Table 3: diversity policies cut the console's weekly alarm load — the
/// dramatic effect shows under the utility heuristic (the paper's 3536 vs
/// 1194/2328); under the p99 heuristic every policy targets the same 1%
/// rate and our near-stationary population lands at parity (the paper's
/// data drifted in diversity's favour; see EXPERIMENTS.md).
#[test]
fn tab3_console_alarms() {
    let r = tab3::run(corpus(), FeatureKind::TcpConnections);
    let util = &r.rows[1];
    assert!(util.full_diversity * 2 < util.homogeneous,
        "utility row: {} vs {}", util.full_diversity, util.homogeneous);
    assert!(util.partial * 2 < util.homogeneous);
    let p99 = &r.rows[0];
    assert!(p99.full_diversity < p99.homogeneous * 3 / 2);
    // Nominal rate is 1% of windows; everything stays the same order.
    let nominal = (0.01 * 672.0 * corpus().n_users() as f64) as u64;
    assert!(p99.homogeneous < nominal * 3);
    assert!(p99.full_diversity > nominal / 10);
}

/// Fig. 4(a): diversity detects stealthy attacks the monoculture misses;
/// every policy detects the maximal attack.
#[test]
fn fig4a_stealth_detection() {
    let r = fig4::run_a(corpus(), FeatureKind::TcpConnections, 0, 64);
    let stealth = r.sizes.len() / 10;
    let mean = |c: &[f64]| c[1..=stealth].iter().sum::<f64>() / stealth as f64;
    assert!(mean(&r.curves[1]) > mean(&r.curves[0]) + 0.05,
        "full diversity leads on stealthy attacks: {:.3} vs {:.3}",
        mean(&r.curves[1]), mean(&r.curves[0]));
    assert!(mean(&r.curves[2]) > mean(&r.curves[0]),
        "partial also leads the monoculture");
    for c in &r.curves {
        assert!(*c.last().expect("non-empty") >= 0.99);
    }
}

/// Fig. 4(b): the mimicry attacker's median hidden traffic collapses under
/// diversity (the paper reports roughly a 3x reduction).
#[test]
fn fig4b_hidden_traffic() {
    let r = fig4::run_b(corpus(), FeatureKind::TcpConnections, 0, 0.9);
    let medians: Vec<f64> = r.summaries.iter().map(|s| s.median).collect();
    assert!(
        medians[1] <= medians[0] / 2.0,
        "full diversity at most half the homogeneous median ({} vs {})",
        medians[1],
        medians[0]
    );
    assert!(
        medians[2] <= medians[0] / 2.0,
        "8-partial too ({} vs {})",
        medians[2],
        medians[0]
    );
}

/// Fig. 5: under the Storm replay, diversity pins FP near 1% with scattered
/// detection; the monoculture scatters FP over orders of magnitude with
/// detection pinned near the campaign duty cycle.
#[test]
fn fig5_storm_replay_shapes() {
    let r = fig5::run(corpus(), 0, &StormConfig::default());
    let wpw = corpus().config.windowing().windows_per_week() as f64;
    let homog = &r.scatters[0];
    let full = &r.scatters[1];
    let partial = &r.scatters[2];

    assert!(homog.fp_span_decades(wpw) > full.fp_span_decades(wpw) - 0.3);
    assert!(full.median_fp() <= 0.02, "diversity FP near 1%: {}", full.median_fp());
    assert!((0.25..=0.75).contains(&homog.median_detection()),
        "homogeneous detection near the campaign duty cycle: {}", homog.median_detection());
    // Diversity spreads detection rates.
    let dets: Vec<f64> = full.points.iter().map(|p| p.detection).collect();
    let hi = dets.iter().cloned().fold(0.0f64, f64::max);
    let lo = dets.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(hi - lo > 0.3, "diverse detection spread {lo:.2}..{hi:.2}");
    // Partial bounds FP at least as well as the monoculture (Fig. 5(b)).
    assert!(partial.fp_span_decades(wpw) <= homog.fp_span_decades(wpw) + 1e-9);
}

/// §6.1 drift note: 99th-percentile thresholds do not deliver exactly 1%
/// the following week.
#[test]
fn drift_off_nominal() {
    let r = drift::run(corpus(), FeatureKind::TcpConnections);
    let off = r
        .realized_fp
        .iter()
        .filter(|&&fp| (fp - 0.01).abs() > 0.003)
        .count();
    assert!(off * 2 > r.realized_fp.len(), "most users drift off 1%: {off}");
}

/// §5 grouping note: k-means finds no natural clusters in the population,
/// while synthetic blobs in the same space score near 1.
#[test]
fn no_natural_clusters() {
    let probe = ablation::kmeans_probe(corpus(), FeatureKind::TcpConnections);
    let baseline = ablation::blob_baseline();
    assert!(baseline > 0.9);
    for (k, score) in probe {
        assert!(score < baseline - 0.1, "k={k}: {score:.3} vs blob {baseline:.3}");
    }
}
