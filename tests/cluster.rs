//! Fault-tolerance contract for the sharded `fleetd` cluster.
//!
//! The headline property extends the single-daemon crash-recovery
//! contract across a wire boundary: run the same corpus stream through
//! 1, 2, or 4 worker nodes — under seeded silent node kills, process
//! kills, torn WAL/journal writes, and lossy links — and the merged
//! per-host CSV plus the evaluation metrics snapshot are byte-identical
//! to an uninterrupted single-node run. Alongside it, the satellites:
//! the `CLW1` wire decoder is a total function with bounded allocation
//! under adversarial length prefixes (property-tested), the delivery
//! retry path survives attempt counts past the shift width (the PR 5
//! saturating-shift regression, now on the wire path), and a cluster
//! whose newest snapshot *and* journal tail are both torn mid-handoff
//! recovers to the pre-handoff assignment with no half-moved host.

use experiments::cluster::{
    determinism_snapshot, hosts_csv, run, ClusterRun, ClusterScenario,
};
use experiments::daemon::{build_batches_for, unique_run_dir};
use experiments::{Corpus, CorpusConfig};
use faultsim::{cluster_kill_points, ClusterKillPoint, KillPoint, LinkFaults};
use fleetd::cluster::list_cluster_snapshots;
use fleetd::wal::frame_raw;
use fleetd::wire::{frame_msg, ClusterMsg, WireDecoder, MAX_WIRE_PAYLOAD, WIRE_HEADER_LEN};
use fleetd::{
    AssignEvent, Cluster, ClusterKillSwitch, Disposition, Week, WindowBatch,
};
use hids_core::degraded::HostStatus;
use itconsole::{DeliveryConfig, DeliveryQueue};
use proptest::prelude::*;

const BATCH_WINDOWS: usize = 112; // 6 batches per week, 12 per host
const N_USERS: usize = 8;

fn small_corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        n_users: N_USERS,
        n_weeks: 2,
        ..CorpusConfig::small()
    })
}

fn scenario(n_nodes: u32) -> ClusterScenario {
    let mut s = ClusterScenario {
        batch_windows: BATCH_WINDOWS,
        ..ClusterScenario::default()
    };
    s.cluster.n_nodes = n_nodes;
    s
}

fn batches_for(corpus: &Corpus, s: &ClusterScenario) -> Vec<WindowBatch> {
    build_batches_for(corpus, s.feature, s.batch_windows, &s.poison_hosts)
}

fn run_in_fresh_dir(
    tag: &str,
    s: &ClusterScenario,
    batches: &[WindowBatch],
    kills: &[ClusterKillPoint],
) -> ClusterRun {
    let dir = unique_run_dir(tag);
    let result = run(&dir, s, batches, kills).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    result
}

// ---------------------------------------------------------------------
// Headline property 1: node-count transparency.
// ---------------------------------------------------------------------

#[test]
fn hosts_csv_is_byte_identical_across_one_two_and_four_nodes() {
    let corpus = small_corpus();
    let s1 = scenario(1);
    let batches = batches_for(&corpus, &s1);
    assert_eq!(batches.len(), N_USERS * 12);

    let one = run_in_fresh_dir("nid-1", &s1, &batches, &[]);
    one.check().unwrap();
    assert_eq!(one.lost_batches, 0);
    assert_eq!(one.total_applied, batches.len() as u64);
    let ref_csv = hosts_csv(&one);
    let ref_metrics = determinism_snapshot(&one);
    assert!(ref_metrics.contains("hids_degraded"), "evaluation families present");

    for n in [2u32, 4] {
        let multi = run_in_fresh_dir(&format!("nid-{n}"), &scenario(n), &batches, &[]);
        multi.check().unwrap();
        assert_eq!(multi.lost_batches, 0, "{n}-node run lost batches");
        assert_eq!(hosts_csv(&multi), ref_csv, "{n}-node hosts CSV diverged");
        assert_eq!(
            determinism_snapshot(&multi),
            ref_metrics,
            "{n}-node metrics snapshot diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Headline property 2: byte-identical output across a seeded kill sweep
// (silent node deaths by heartbeat expiry, batch-boundary process kills,
// and torn mid-record WAL/journal writes).
// ---------------------------------------------------------------------

#[test]
fn kill_sweep_is_byte_identical_at_twelve_seeded_points() {
    let corpus = small_corpus();
    let s = scenario(2);
    let batches = batches_for(&corpus, &s);

    let reference = run_in_fresh_dir("sweep-ref", &s, &batches, &[]);
    reference.check().unwrap();
    assert_eq!(reference.lost_batches, 0);
    let ref_csv = hosts_csv(&reference);
    let ref_metrics = determinism_snapshot(&reference);

    let mut points: Vec<Vec<ClusterKillPoint>> = cluster_kill_points(
        0xD15C_0BA1,
        12,
        s.cluster.n_nodes,
        reference.total_applied,
        reference.total_wal_bytes,
        reference.total_ticks,
    )
    .into_iter()
    .map(|p| vec![p])
    .collect();
    // Handcrafted schedules on top of the seeded ones: a node death
    // followed by a process kill inside the resulting dark window /
    // handoff (mid-handoff recovery), and a torn journal write landing
    // while a host is mid-stream (mid-batch).
    points.push(vec![
        ClusterKillPoint::Node { node: 1, at_tick: 5 },
        ClusterKillPoint::Process(KillPoint::AfterBatches(reference.total_applied / 2)),
    ]);
    points.push(vec![
        ClusterKillPoint::Node { node: 1, at_tick: 8 },
        ClusterKillPoint::Process(KillPoint::AtWalByte {
            offset: reference.total_wal_bytes / 2,
            torn: 9,
        }),
    ]);
    points.push(vec![ClusterKillPoint::Process(KillPoint::AtWalByte {
        offset: reference.total_wal_bytes / 3,
        torn: 31,
    })]);
    assert!(points.len() >= 12);

    let mut node_deaths = 0u64;
    let mut process_kills = 0u32;
    let mut dark_windows = 0usize;
    for (i, schedule) in points.iter().enumerate() {
        let killed = run_in_fresh_dir(&format!("sweep-{i}"), &s, &batches, schedule);
        killed.check().unwrap();
        assert_eq!(killed.lost_batches, 0, "sweep point {i} ({schedule:?})");
        assert_eq!(
            hosts_csv(&killed),
            ref_csv,
            "hosts CSV diverged at sweep point {i} ({schedule:?})"
        );
        assert_eq!(
            determinism_snapshot(&killed),
            ref_metrics,
            "metrics snapshot diverged at sweep point {i} ({schedule:?})"
        );
        if killed.node_deaths_total > 0 {
            // A silently-killed node must be detected by heartbeat
            // expiry and its hosts surfaced as a dark window before the
            // rebalance brings them back.
            assert!(
                !killed.dark_episodes.is_empty(),
                "node death without a dark window at sweep point {i}"
            );
            dark_windows += killed.dark_episodes.len();
        }
        node_deaths += killed.node_deaths_total;
        process_kills += killed.recovery.kills;
    }
    assert!(node_deaths >= 3, "sweep never exercised heartbeat expiry");
    assert!(process_kills >= 3, "sweep never exercised process kills");
    assert!(dark_windows >= 3, "sweep never observed dark windows");
}

// ---------------------------------------------------------------------
// Dark accounting: a dead node's hosts read as Dark through the
// degraded coverage accounting until the rebalance completes.
// ---------------------------------------------------------------------

#[test]
fn dead_node_hosts_are_dark_until_rebalance_completes() {
    let corpus = small_corpus();
    let s = scenario(2);
    let batches = batches_for(&corpus, &s);
    let killed = run_in_fresh_dir(
        "dark",
        &s,
        &batches,
        &[ClusterKillPoint::Node { node: 1, at_tick: 6 }],
    );
    killed.check().unwrap();
    assert_eq!(killed.node_deaths_total, 1);
    assert!(killed.rebalances_total >= 1);
    assert!(!killed.dark_episodes.is_empty());
    let dark_hosts: Vec<u32> = killed
        .dark_episodes
        .iter()
        .flat_map(|e| e.hosts.iter().copied())
        .collect();
    assert!(!dark_hosts.is_empty(), "the dead node owned no hosts");
    let (_, mid_eval) = killed.dark_evaluation.as_ref().expect("mid-window evaluation");
    for (i, (host, _)) in killed.hosts.iter().enumerate() {
        if dark_hosts.contains(host) {
            assert_eq!(
                mid_eval.users[i].status,
                HostStatus::Dark,
                "host {host} not Dark during the window"
            );
        }
    }
    // After the rebalance the final evaluation has no dark hosts left.
    let final_eval = killed.evaluation.as_ref().expect("final evaluation");
    assert!(
        final_eval.users.iter().all(|u| u.status != HostStatus::Dark),
        "hosts still dark after rebalance completed"
    );
}

// ---------------------------------------------------------------------
// Lossy links: drops, duplicates, reorders, and bit corruption on every
// link — the ARQ plus resynchronizing decoder must still converge to the
// identical table.
// ---------------------------------------------------------------------

#[test]
fn lossy_links_preserve_the_hosts_csv() {
    let corpus = small_corpus();
    let clean = scenario(2);
    let batches = batches_for(&corpus, &clean);
    let reference = run_in_fresh_dir("link-ref", &clean, &batches, &[]);

    let mut lossy = scenario(2);
    lossy.cluster.link = LinkFaults::with_severity(1.0);
    // At full severity ~13% of frames die per direction; with the default
    // 4-interval timeout a long run will eventually miss enough
    // consecutive heartbeats to declare a healthy node dead — and a
    // second spurious death would leave no survivor to rebalance onto.
    // 16 intervals makes spurious death (p ≈ 0.13^16) unreachable while
    // still exercising every fault class on the data path.
    lossy.cluster.heartbeat_timeout = 64;
    let faulted = run_in_fresh_dir("link-lossy", &lossy, &batches, &[]);
    faulted.check().unwrap();
    assert_eq!(faulted.lost_batches, 0, "retry budget exhausted under link faults");
    let log = &faulted.links;
    assert!(
        log.dropped > 0 && log.duplicated > 0 && log.reordered > 0 && log.corrupted > 0,
        "fault mix not exercised: {log:?}"
    );
    assert!(
        faulted.wire.resyncs > 0,
        "corrupted frames never forced a decoder resync"
    );
    assert_eq!(hosts_csv(&faulted), hosts_csv(&reference));
    assert_eq!(
        determinism_snapshot(&faulted),
        determinism_snapshot(&reference)
    );
}

// ---------------------------------------------------------------------
// Satellite: double-torn mid-handoff recovery, end to end on real files.
// The newest cluster snapshot is corrupted AND the journal tail is a
// torn Rebalance record; recovery must fall back to the older snapshot,
// replay the journal prefix, and land on the pre-handoff assignment —
// never a half-moved host.
// ---------------------------------------------------------------------

#[test]
fn torn_snapshot_and_torn_journal_recover_to_pre_handoff_assignment() {
    let corpus = small_corpus();
    let s = scenario(4);
    let batches = batches_for(&corpus, &s);
    let dir = unique_run_dir("double-torn");

    // Drive a real run through one full death + rebalance so the
    // directory holds genuine node WALs, a journal with a completed
    // handoff, and the keep-two snapshot set.
    let first = run(
        &dir,
        &s,
        &batches,
        &[ClusterKillPoint::Node { node: 1, at_tick: 6 }],
    )
    .unwrap();
    assert!(first.rebalances_total >= 1);

    // Read the post-run assignment (epoch E) through a clean reopen.
    let universe: Vec<u32> = (0..N_USERS as u32).collect();
    let mut kill = ClusterKillSwitch::none();
    let (cluster, _) = Cluster::open(&dir, s.cluster, &universe, &mut kill).unwrap();
    let epoch = cluster.assign().epoch;
    let pre_live = cluster.assign().live.clone();
    let pre_overrides = cluster.assign().overrides.clone();
    let node2_hosts: Vec<u32> = universe
        .iter()
        .copied()
        .filter(|&h| cluster.assign().owner(h) == 2)
        .collect();
    assert!(epoch >= 2, "death + rebalance must have advanced the epoch");
    drop(cluster);

    // Now fake the next failure sequence dying mid-handoff: a durable
    // NodeDead(E+1) for node 2, then a Rebalance(E+2) torn mid-frame.
    let moved: Vec<(u32, u32)> = universe.iter().map(|&h| (h, 0)).collect();
    let mut dead = Vec::new();
    AssignEvent::NodeDead {
        epoch: epoch + 1,
        node: 2,
    }
    .encode(&mut dead);
    let mut rebalance = Vec::new();
    AssignEvent::Rebalance {
        epoch: epoch + 2,
        from: 2,
        moved,
    }
    .encode(&mut rebalance);
    let torn_frame = frame_raw(&rebalance);
    let mut tail = frame_raw(&dead);
    tail.extend_from_slice(&torn_frame[..torn_frame.len() / 2]);
    let journal = dir.join("cluster.wal");
    let mut bytes = std::fs::read(&journal).unwrap();
    bytes.extend_from_slice(&tail);
    std::fs::write(&journal, &bytes).unwrap();

    // And corrupt the newest snapshot's payload.
    let snaps = list_cluster_snapshots(&dir).unwrap();
    let (_, newest) = snaps.last().unwrap();
    let mut snap_bytes = std::fs::read(newest).unwrap();
    let last = snap_bytes.len() - 1;
    snap_bytes[last] ^= 0xFF;
    std::fs::write(newest, &snap_bytes).unwrap();

    // Recovery: older snapshot + full journal replay, torn tail dropped.
    let mut kill = ClusterKillSwitch::none();
    let (mut cluster, rec) = Cluster::open(&dir, s.cluster, &universe, &mut kill).unwrap();
    assert!(rec.snapshots_discarded >= 1, "corrupt snapshot not discarded");
    assert!(rec.journal_torn_bytes > 0, "torn journal tail not detected");
    let assign = cluster.assign();
    // The durable NodeDead applied; the torn Rebalance must not have.
    assert_eq!(assign.epoch, epoch + 1);
    assert!(assign.pending_dead.contains(&2));
    assert!(!assign.live.contains(&2));
    for &n in &pre_live {
        assert_eq!(assign.live.contains(&n), n != 2);
    }
    // No half-moved host: every override predates the torn handoff.
    assert_eq!(&assign.overrides, &pre_overrides, "a host half-moved");
    for &(_, e) in assign.overrides.values() {
        assert!(e <= epoch, "override from the torn epoch survived");
    }
    // The pending death is visible as darkness — exactly node 2's hosts
    // — then one tick completes the interrupted handoff with a fresh
    // journaled Rebalance.
    let mut dark = cluster.dark_hosts();
    dark.sort_unstable();
    assert_eq!(dark, node2_hosts, "dark set must be the dead node's hosts");
    cluster.tick(&mut kill).unwrap();
    assert!(cluster.assign().pending_dead.is_empty(), "handoff did not resume");
    assert_eq!(cluster.assign().epoch, epoch + 2);

    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Satellite: decorrelated-jitter retry on the wire path survives attempt
// counts far past the u64 shift width (the PR 5 saturating-shift fix).
// ---------------------------------------------------------------------

#[test]
fn wire_path_retry_survives_huge_attempt_budgets() {
    let dir = unique_run_dir("arq-sat");
    let mut cfg = ClusterScenario::default().cluster;
    cfg.n_nodes = 1;
    // Every frame is dropped: the batch can never be delivered, so the
    // queue must walk the full 96-attempt backoff schedule — the cap
    // computation shifts by attempts-1 = 95, which overflowed before the
    // saturating fix.
    cfg.link = LinkFaults {
        drop_rate: 1.0,
        dup_rate: 0.0,
        reorder_rate: 0.0,
        corrupt_rate: 0.0,
    };
    // Keep the single node alive despite its heartbeats being dropped.
    cfg.heartbeat_timeout = 1 << 40;
    let mut kill = ClusterKillSwitch::none();
    let (mut cluster, _) = Cluster::open(&dir, cfg, &[0], &mut kill).unwrap();

    let mut queue: DeliveryQueue<WindowBatch> = DeliveryQueue::new(DeliveryConfig {
        capacity: 4,
        max_attempts: 96,
        backoff_base: 1,
        jitter_seed: Some(0xA77E_3575),
    });
    assert!(queue.offer(WindowBatch {
        host: 0,
        seq: 1,
        week: Week::Train,
        start: 0,
        counts: vec![1, 2, 3],
        poison: false,
    }));

    let mut transmissions = 0u64;
    for _ in 0..400 {
        queue.pump(|b| {
            transmissions += 1;
            let _ = cluster.transmit(b);
            false
        });
        if queue.is_empty() {
            break;
        }
        cluster.tick(&mut kill).unwrap();
        // Huge time jumps: saturated backoff deadlines must still fire
        // instead of overflowing into the past or panicking.
        queue.tick(1 << 40);
    }
    assert!(queue.is_empty(), "batch neither delivered nor expired");
    let stats = queue.stats();
    assert_eq!(stats.expired_batches, 1);
    assert_eq!(transmissions, 96, "full attempt budget must be walked");
    assert!(cluster.stats().batches_sent >= 96);

    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Satellite: the wire decoder is a total function with bounded buffering
// under adversarial input.
// ---------------------------------------------------------------------

/// The decoder may buffer at most one maximal frame plus one header's
/// worth of scan slack.
const BUFFER_BOUND: usize = MAX_WIRE_PAYLOAD as usize + 2 * WIRE_HEADER_LEN;

#[test]
fn implausible_length_prefix_is_skipped_without_allocation() {
    let msg = ClusterMsg::Heartbeat { node: 3, ticks: 9 };
    let mut attack = frame_msg(&msg);
    // Forge the length field to u32::MAX: a trusting decoder would try
    // to allocate 4 GiB; ours must reject the header and resync.
    attack[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut dec = WireDecoder::new();
    dec.push(&attack);
    dec.push(&frame_msg(&msg));
    let mut decoded = Vec::new();
    while let Some(m) = dec.next() {
        decoded.push(m);
    }
    assert_eq!(decoded, vec![msg]);
    assert!(dec.stats().resyncs >= 1);
    assert!(dec.buffered() <= BUFFER_BOUND);
}

#[test]
fn hungry_plausible_length_prefix_cannot_swallow_later_frames_forever() {
    let msg = ClusterMsg::Ack {
        node: 1,
        epoch: 2,
        host: 3,
        seq: 4,
        disposition: Disposition::Applied,
    };
    // A plausible-but-bogus header: declares a near-maximal payload, so
    // the decoder legitimately waits for bytes — but once they arrive
    // and the CRC fails, it must resync and recover the real frame.
    let mut stream = Vec::new();
    stream.extend_from_slice(b"CLW1");
    stream.extend_from_slice(&(MAX_WIRE_PAYLOAD - 1).to_le_bytes());
    stream.extend_from_slice(&0xBAD0_C4C0u32.to_le_bytes());
    stream.extend_from_slice(&frame_msg(&msg));
    stream.resize(stream.len() + MAX_WIRE_PAYLOAD as usize, 0);
    let mut dec = WireDecoder::new();
    let mut decoded = Vec::new();
    for chunk in stream.chunks(4096) {
        dec.push(chunk);
        while let Some(m) = dec.next() {
            decoded.push(m);
        }
        assert!(dec.buffered() <= BUFFER_BOUND);
    }
    assert_eq!(decoded, vec![msg]);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Arbitrary junk, arbitrarily chunked: the decoder never panics and
    /// never buffers more than one maximal frame.
    #[test]
    fn decoder_is_total_on_arbitrary_junk(
        junk in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..257,
    ) {
        let mut dec = WireDecoder::new();
        for c in junk.chunks(chunk) {
            dec.push(c);
            while dec.next().is_some() {}
            prop_assert!(dec.buffered() <= BUFFER_BOUND);
        }
    }

    /// Valid frames survive an arbitrary corrupted prefix: after the junk
    /// (padded so any trailing hungry header starves out), every clean
    /// frame decodes in order.
    #[test]
    fn decoder_resyncs_through_corruption_to_valid_frames(
        junk in proptest::collection::vec(any::<u8>(), 1..512),
        node in 0u32..16,
        ticks in 0u64..1_000_000,
        chunk in 1usize..129,
    ) {
        let msgs = [
            ClusterMsg::Heartbeat { node, ticks },
            ClusterMsg::Ack {
                node,
                epoch: 7,
                host: 11,
                seq: ticks,
                disposition: Disposition::Duplicate,
            },
        ];
        let mut stream = junk.clone();
        // Flush slack: any partial header at the junk tail can declare up
        // to MAX_WIRE_PAYLOAD pending bytes; feeding that many zeros
        // forces its CRC check to fail and the scanner to move on.
        stream.resize(stream.len() + MAX_WIRE_PAYLOAD as usize + WIRE_HEADER_LEN, 0);
        for m in &msgs {
            stream.extend_from_slice(&frame_msg(m));
        }
        let mut dec = WireDecoder::new();
        let mut decoded = Vec::new();
        for c in stream.chunks(chunk) {
            dec.push(c);
            while let Some(m) = dec.next() {
                decoded.push(m);
            }
            prop_assert!(dec.buffered() <= BUFFER_BOUND);
        }
        // Junk may accidentally contain decodable frames; the real ones
        // must be the final two, in order.
        prop_assert!(decoded.len() >= msgs.len());
        prop_assert_eq!(&decoded[decoded.len() - msgs.len()..], &msgs[..]);
    }
}
