//! Acceptance suite for the drift-aware threshold lifecycle: canary
//! rollouts, automatic rollback, and poisoning-resistant refit.
//!
//! The contracts under test:
//!
//! * **benign drift** → the planner refits every host, the canary soak
//!   passes the health gates, the epoch promotes, and the promoted
//!   thresholds catch attacks the stale incumbent misses;
//! * **poisoned drift** → the alarm-drop gate fails the soak, the epoch
//!   rolls back, and the fleet's per-host CSV is byte-identical to a run
//!   that never attempted a rollout;
//! * **crash safety** → a daemon killed at the canary-start boundary,
//!   mid-soak, at the decision boundary, or at seeded batch/WAL-byte
//!   points recovers to the same byte-identical CSV as an uninterrupted
//!   run.

use experiments::rollout::{
    build_input, hosts_csv, run, RolloutInput, RolloutRun, RolloutScenario,
};
use faultsim::{rollout_kill_points, KillPoint};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("rollout-accept-{}-{}-{}", tag, std::process::id(), n))
}

fn drive(s: &RolloutScenario, input: &RolloutInput, tag: &str, kills: &[KillPoint]) -> RolloutRun {
    let dir = unique_dir(tag);
    let out = run(&dir, s, input, kills).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    out
}

#[test]
fn benign_promotion_improves_detection_over_stale_incumbent() {
    let s = RolloutScenario::default();
    let input = build_input(&s);
    let r = drive(&s, &input, "benign", &[]);
    r.check(&s).unwrap();
    assert!(r.n_attacks > 0, "scenario must inject attacks");
    assert_eq!(
        r.fn_stale, r.n_attacks,
        "attacks are sized to hide under the stale incumbent"
    );
    assert_eq!(
        r.fn_effective, 0,
        "every attack clears the promoted refit thresholds"
    );
    // Promotion is observable online, not just counterfactually: the
    // post-promotion attacks raised live alarms.
    let alarms: u64 = r.hosts.iter().map(|(_, st)| st.live_alarms).sum();
    assert_eq!(alarms, r.n_attacks, "one live alarm per injected attack");
}

#[test]
fn poisoned_rollback_restores_incumbent_fleet_byte_for_byte() {
    let s = RolloutScenario {
        poison: true,
        ..RolloutScenario::default()
    };
    let input = build_input(&s);
    let rolled = drive(&s, &input, "poisoned", &[]);
    rolled.check(&s).unwrap();

    let untouched_s = RolloutScenario {
        attempt_rollout: false,
        ..s.clone()
    };
    let untouched = drive(&untouched_s, &input, "untouched", &[]);
    untouched.check(&untouched_s).unwrap();
    assert_eq!(
        hosts_csv(&rolled),
        hosts_csv(&untouched),
        "a rolled-back epoch must leave no trace in the fleet state"
    );
    // The rollout genuinely happened before being discarded.
    assert_eq!(rolled.epoch.history.len(), 1);
    assert_eq!(rolled.total_rollout_events, 2, "begin + rollback journaled");
}

#[test]
fn kills_at_canary_start_mid_soak_and_decision_recover_identically() {
    let s = RolloutScenario::default();
    let input = build_input(&s);
    let reference = drive(&s, &input, "kill-ref", &[]);
    let ref_csv = hosts_csv(&reference);
    assert_eq!(reference.total_rollout_events, 2);

    // Mid-soak: between the canary-start record and the decision record.
    let mid_soak = reference.total_applied - input.batches.len() as u64 / 4;
    let points = [
        ("canary-start", KillPoint::AfterRolloutEvents(1)),
        ("mid-soak", KillPoint::AfterBatches(mid_soak)),
        ("decision", KillPoint::AfterRolloutEvents(2)),
    ];
    for (name, point) in points {
        let killed = drive(&s, &input, name, &[point]);
        assert_eq!(killed.recovery.kills, 1, "{name}: kill never fired");
        killed.check(&s).unwrap();
        assert_eq!(hosts_csv(&killed), ref_csv, "{name}");
    }
}

#[test]
fn seeded_kill_schedule_sweep_recovers_identically() {
    let s = RolloutScenario::default();
    let input = build_input(&s);
    let reference = drive(&s, &input, "sweep-ref", &[]);
    let ref_csv = hosts_csv(&reference);

    let kills = rollout_kill_points(
        s.seed,
        6,
        reference.total_applied,
        reference.total_wal_bytes,
        reference.total_rollout_events as u32,
    );
    let killed = drive(&s, &input, "sweep", &kills);
    assert!(killed.recovery.kills >= 1, "schedule must fire at least once");
    killed.check(&s).unwrap();
    assert_eq!(hosts_csv(&killed), ref_csv);
}

#[test]
fn kill_during_poisoned_rollback_still_restores_incumbent() {
    let s = RolloutScenario {
        poison: true,
        ..RolloutScenario::default()
    };
    let input = build_input(&s);
    let untouched_s = RolloutScenario {
        attempt_rollout: false,
        ..s.clone()
    };
    let untouched = drive(&untouched_s, &input, "rb-untouched", &[]);

    // Die right after the rollback record is durable but before the
    // in-memory state machine observes it: recovery must replay the
    // rollback and still converge to the untouched fleet.
    let killed = drive(&s, &input, "rb-kill", &[KillPoint::AfterRolloutEvents(2)]);
    assert_eq!(killed.recovery.kills, 1);
    killed.check(&s).unwrap();
    assert_eq!(hosts_csv(&killed), hosts_csv(&untouched));
}
