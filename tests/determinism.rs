//! Reproducibility guarantees: everything is a pure function of the seed.

use experiments::{fig1, fig4, tab3, Corpus, CorpusConfig};
use flowtab::FeatureKind;

fn cfg(seed: u64) -> CorpusConfig {
    CorpusConfig {
        n_users: 30,
        n_weeks: 2,
        seed,
        ..Default::default()
    }
}

#[test]
fn identical_seeds_identical_corpora() {
    let a = Corpus::generate(cfg(42));
    let b = Corpus::generate(cfg(42));
    for (ua, ub) in a.weeks.iter().zip(&b.weeks) {
        assert_eq!(ua, ub);
    }
}

#[test]
fn different_seeds_differ() {
    let a = Corpus::generate(cfg(42));
    let b = Corpus::generate(cfg(43));
    assert_ne!(a.weeks, b.weeks);
}

#[test]
fn experiments_are_reproducible() {
    let a = Corpus::generate(cfg(7));
    let b = Corpus::generate(cfg(7));

    let f1a = fig1::run(&a, 0);
    let f1b = fig1::run(&b, 0);
    for (ca, cb) in f1a.curves.iter().zip(&f1b.curves) {
        assert_eq!(ca.points, cb.points);
    }

    let t3a = tab3::run(&a, FeatureKind::TcpConnections);
    let t3b = tab3::run(&b, FeatureKind::TcpConnections);
    for (ra, rb) in t3a.rows.iter().zip(&t3b.rows) {
        assert_eq!(ra.homogeneous, rb.homogeneous);
        assert_eq!(ra.full_diversity, rb.full_diversity);
        assert_eq!(ra.partial, rb.partial);
    }

    let f4a = fig4::run_b(&a, FeatureKind::TcpConnections, 0, 0.9);
    let f4b = fig4::run_b(&b, FeatureKind::TcpConnections, 0, 0.9);
    assert_eq!(f4a.budgets, f4b.budgets);
}

#[test]
fn corpora_independent_of_thread_count() {
    // Corpus::generate parallelises across users; the result must not
    // depend on how the chunks were scheduled. Compare against the direct
    // sequential generator.
    let c = Corpus::generate(cfg(123));
    for (u, profile) in c.population.users.iter().enumerate() {
        for w in 0..2 {
            let expect = synthgen::user_week_series_trended(
                profile,
                c.population.config.seed,
                w,
                c.config.windowing(),
                c.population.config.weekly_trend,
            );
            assert_eq!(*c.series(u, w), expect, "user {u} week {w}");
        }
    }
}
