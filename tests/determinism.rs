//! Reproducibility guarantees: everything is a pure function of the seed.

use experiments::{fig1, fig4, tab3, Corpus, CorpusConfig};
use flowtab::FeatureKind;

fn cfg(seed: u64) -> CorpusConfig {
    CorpusConfig {
        n_users: 30,
        n_weeks: 2,
        seed,
        ..Default::default()
    }
}

#[test]
fn identical_seeds_identical_corpora() {
    let a = Corpus::generate(cfg(42));
    let b = Corpus::generate(cfg(42));
    for (ua, ub) in a.weeks.iter().zip(&b.weeks) {
        assert_eq!(ua, ub);
    }
}

#[test]
fn different_seeds_differ() {
    let a = Corpus::generate(cfg(42));
    let b = Corpus::generate(cfg(43));
    assert_ne!(a.weeks, b.weeks);
}

#[test]
fn experiments_are_reproducible() {
    let a = Corpus::generate(cfg(7));
    let b = Corpus::generate(cfg(7));

    let f1a = fig1::run(&a, 0);
    let f1b = fig1::run(&b, 0);
    for (ca, cb) in f1a.curves.iter().zip(&f1b.curves) {
        assert_eq!(ca.points, cb.points);
    }

    let t3a = tab3::run(&a, FeatureKind::TcpConnections);
    let t3b = tab3::run(&b, FeatureKind::TcpConnections);
    for (ra, rb) in t3a.rows.iter().zip(&t3b.rows) {
        assert_eq!(ra.homogeneous, rb.homogeneous);
        assert_eq!(ra.full_diversity, rb.full_diversity);
        assert_eq!(ra.partial, rb.partial);
    }

    let f4a = fig4::run_b(&a, FeatureKind::TcpConnections, 0, 0.9);
    let f4b = fig4::run_b(&b, FeatureKind::TcpConnections, 0, 0.9);
    assert_eq!(f4a.budgets, f4b.budgets);
}

/// The parallel evaluation engine must be invisible in the output: every
/// experiment's rendered CSV is byte-identical at 1 worker thread and at
/// 8. (Runs the thread-count comparison in one process via
/// `hids_core::set_threads`; the engine chunks work contiguously and
/// joins in order, so scheduling can never reorder results.)
#[test]
fn experiment_csvs_identical_across_thread_counts() {
    let run_all = |threads: usize| -> Vec<String> {
        hids_core::set_threads(threads);
        let corpus = Corpus::generate(cfg(99));
        let tcp = FeatureKind::TcpConnections;
        let out = vec![
            fig1::summary_table(&fig1::run(&corpus, 0)).to_csv(),
            tab3::table(&tab3::run(&corpus, tcp)).to_csv(),
            fig4::table_b(&fig4::run_b(&corpus, tcp, 0, 0.9)).to_csv(),
            experiments::fig5::summary_table(
                &experiments::fig5::run(&corpus, 0, &synthgen::StormConfig::default()),
                corpus.config.windowing().windows_per_week() as f64,
            )
            .to_csv(),
            experiments::ablation::roc_headroom(&corpus, tcp).to_csv(),
        ];
        out
    };
    let single = run_all(1);
    let eight = run_all(8);
    hids_core::set_threads(0); // restore auto-detection for other tests
    for (i, (a, b)) in single.iter().zip(&eight).enumerate() {
        assert_eq!(a.as_bytes(), b.as_bytes(), "artifact {i} differs across thread counts");
    }
}

#[test]
fn corpora_independent_of_thread_count() {
    // Corpus::generate parallelises across users; the result must not
    // depend on how the chunks were scheduled. Compare against the direct
    // sequential generator.
    let c = Corpus::generate(cfg(123));
    for (u, profile) in c.population.users.iter().enumerate() {
        for w in 0..2 {
            let expect = synthgen::user_week_series_trended(
                profile,
                c.population.config.seed,
                w,
                c.config.windowing(),
                c.population.config.weekly_trend,
            );
            assert_eq!(*c.series(u, w), expect, "user {u} week {w}");
        }
    }
}
