//! Interop-format integration: pcap export ↔ flow reconstruction ↔
//! conn.log text, and the console-side alert processing chain.

use flowtab::{connlog, extract_features, FlowExtractor, FlowTableConfig, Windowing};
use hids_core::{evaluate_multi, Grouping, MultiPolicy, Policy, ThresholdHeuristic};
use itconsole::{coalesce, RateLimiter};
use monoculture_hids::prelude::*;
use netpkt::PcapReader;
use synthgen::export_user_windows;

/// pcap export → reparse → conn.log → parse back: the flow-level facts
/// survive both serialisations.
#[test]
fn pcap_to_connlog_round_trip() {
    let pop = Population::sample(PopulationConfig {
        n_users: 2,
        ..Default::default()
    });
    let mut profile = pop.users[1].clone();
    profile.levels = synthgen::TailLevels {
        tcp: 80.0,
        udp: 30.0,
        dns: 20.0,
    };

    // Export a Tuesday morning.
    let mut capture = Vec::new();
    let windowing = Windowing::FIFTEEN_MIN;
    let first = windowing.window_of(1.0 * 86_400.0 + 9.0 * 3600.0);
    let stats = export_user_windows(
        &mut capture,
        &profile,
        pop.config.seed,
        0,
        pop.config.weekly_trend,
        windowing,
        first,
        8,
    )
    .expect("export");
    assert!(stats.frames > 0);

    // Reparse to flow records.
    let mut reader = PcapReader::new(&capture[..]).expect("pcap");
    let mut ex = FlowExtractor::new(FlowTableConfig::default());
    while let Some(pkt) = reader.next_packet().expect("read") {
        ex.push_pcap(&pkt).expect("parse");
    }
    let records = ex.finish();
    assert_eq!(records.len() as u64, stats.flows);

    // Serialise to conn.log text and parse back.
    let log = connlog::to_log(&records);
    let parsed = connlog::from_log(&log);
    assert_eq!(parsed.len(), records.len());

    // The re-parsed records produce the same per-window features (the
    // conn.log format carries everything the extractor needs except
    // SYN-retransmission counts, so compare with syn normalised).
    let n_windows = first + 8;
    let direct = extract_features(&records, profile.addr, windowing, n_windows);
    let via_log = extract_features(&parsed, profile.addr, windowing, n_windows);
    for (w, (a, b)) in direct.windows.iter().zip(&via_log.windows).enumerate() {
        for k in [
            FeatureKind::TcpConnections,
            FeatureKind::HttpConnections,
            FeatureKind::UdpConnections,
            FeatureKind::DnsConnections,
            FeatureKind::DistinctConnections,
        ] {
            assert_eq!(a.get(k), b.get(k), "window {w} feature {k}");
        }
    }
}

/// Detector alerts → coalescing → rate limiting → console accounting:
/// the console-side chain conserves alerts.
#[test]
fn alert_processing_chain_conserves_counts() {
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 20,
        n_weeks: 2,
        ..Default::default()
    });
    let train: Vec<_> = corpus.weeks.iter().map(|w| w[0].clone()).collect();
    let test: Vec<_> = corpus.weeks.iter().map(|w| w[1].clone()).collect();
    let multi = MultiPolicy::uniform(Policy {
        grouping: Grouping::FullDiversity,
        heuristic: ThresholdHeuristic::P99,
    });
    let eval = evaluate_multi(&train, &test, &multi);

    let mut all_alerts = Vec::new();
    for (det, series) in eval.detectors.iter().zip(&test) {
        for (w, counts) in series.windows.iter().enumerate() {
            all_alerts.extend(det.evaluate(w, counts));
        }
    }
    assert!(!all_alerts.is_empty(), "a 20-user week produces some alerts");

    // Coalescing preserves the total alert count in its `count` fields.
    let lines = coalesce(&all_alerts, 1);
    let coalesced_total: u64 = lines.iter().map(|l| l.count).sum();
    assert_eq!(coalesced_total, all_alerts.len() as u64);
    assert!(lines.len() as u64 <= coalesced_total);

    // Rate limiting admits at most the token budget per user...
    let mut rl = RateLimiter::new(10.0, 0.1);
    let admitted = lines
        .iter()
        .filter(|l| rl.admit(l.user, l.first_window))
        .count();
    assert_eq!(admitted as u64 + rl.suppressed(), lines.len() as u64);

    // ...and the console accounts exactly what was admitted.
    let console = CentralConsole::new(672);
    let mut shipped = 0u64;
    let mut rl2 = RateLimiter::new(10.0, 0.1);
    for line in &lines {
        if rl2.admit(line.user, line.first_window) {
            // One representative alert per coalesced line reaches the queue.
            console.ingest_batch(&all_alerts[..1]);
            shipped += 1;
        }
    }
    assert_eq!(console.stats().total_alerts, shipped);
}

/// The multi-feature detector raises the union FP above the best single
/// feature but stays far below the sum of six independent 1% rates.
#[test]
fn multi_feature_union_bounds() {
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 30,
        n_weeks: 2,
        ..Default::default()
    });
    let train: Vec<_> = corpus.weeks.iter().map(|w| w[0].clone()).collect();
    let test: Vec<_> = corpus.weeks.iter().map(|w| w[1].clone()).collect();
    let policy = Policy {
        grouping: Grouping::FullDiversity,
        heuristic: ThresholdHeuristic::P99,
    };

    let single = evaluate_multi(
        &train,
        &test,
        &MultiPolicy::on(&[FeatureKind::TcpConnections], policy.clone()),
    );
    let all = evaluate_multi(&train, &test, &MultiPolicy::uniform(policy));
    assert!(all.mean_fp_any() >= single.mean_fp_any() - 1e-12);
    assert!(
        all.mean_fp_any() < 6.0 * 0.02,
        "union far below naive 6-feature bound: {}",
        all.mean_fp_any()
    );
    assert!(all.mean_fp_corroborated() <= all.mean_fp_any());
}
