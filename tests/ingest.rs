//! Acceptance contract for the hardened telemetry ingest plane.
//!
//! Four properties, end to end:
//!
//! 1. **Identity at severity zero** — re-encoding the synthetic batch
//!    stream as syslog/CEF datagrams and decoding it back through
//!    `fleetd::ingest` yields a hosts CSV byte-identical to the
//!    synthetic-batch daemon path, at any worker thread count.
//! 2. **Zero panics, conserved accounting at any severity** — a faulted
//!    wire (drops, duplicates, corruption, truncation) may shrink what
//!    survives, but `received = accepted + shed + malformed` always
//!    holds and nothing ever panics, across the full severity sweep.
//! 3. **Floods degrade, never distort** — an over-limit source is shed
//!    deterministically and surfaces as `LowCoverage`/`Dark` in the
//!    degraded evaluation; honest hosts are untouched.
//! 4. **Totality under hostile bytes** — a pinned corpus of adversarial
//!    datagrams plus property suites pin the parsers as total functions
//!    and `sanitize` as idempotent.

use experiments::daemon::{self, unique_run_dir};
use experiments::ingest::{self, IngestScenario, DNS_NAME_POOL};
use experiments::{Corpus, CorpusConfig};
use fleetd::{
    decode_batch_datagram, encode_batch_datagram, encode_dns_datagram, sanitize, IngestConfig,
    IngestOutcome, Ingestor, Lane, Week, WindowBatch,
};
use hids_core::degraded::HostStatus;
use netpkt::Layer;
use proptest::prelude::*;

fn small_corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        n_users: 6,
        n_weeks: 2,
        seed: 0x1257_BEEF,
        ..CorpusConfig::small()
    })
}

fn run_ingest(tag: &str, corpus: &Corpus, scenario: &IngestScenario) -> ingest::IngestRun {
    let dir = unique_run_dir(tag);
    let r = ingest::run(&dir, corpus, scenario).expect("ingest run");
    let _ = std::fs::remove_dir_all(&dir);
    r
}

// ---------------------------------------------------------------------
// 1. Identity at severity zero, across thread counts
// ---------------------------------------------------------------------

/// The wire format, parser, and rate limiter must be invisible on a
/// clean wire: the downstream hosts CSV is byte-identical to the
/// synthetic-batch path, and identical again at 1, 4, and 32 worker
/// threads (the evaluation engine is the only parallel stage).
#[test]
fn severity_zero_csv_identical_to_synthetic_path_across_threads() {
    let csv_at = |threads: usize| -> (String, String) {
        hids_core::set_threads(threads);
        let corpus = small_corpus();
        let scenario = IngestScenario::default();
        let r = run_ingest("ingest-threads", &corpus, &scenario);
        r.check().expect("invariants");
        assert_eq!(r.stats.shed, 0, "honest stream must never shed");
        assert_eq!(r.stats.malformed, 0, "clean wire must never malform");

        let batches = daemon::build_batches(&corpus, &scenario.daemon);
        let ref_dir = unique_run_dir("ingest-threads-ref");
        let reference =
            daemon::run(&ref_dir, &scenario.daemon, &batches, &[]).expect("reference run");
        let _ = std::fs::remove_dir_all(&ref_dir);
        (r.hosts_csv(), daemon::hosts_csv(&reference))
    };

    let (one, one_ref) = csv_at(1);
    let (four, _) = csv_at(4);
    let (thirty_two, _) = csv_at(32);
    hids_core::set_threads(0); // restore auto-detection for other tests

    assert_eq!(
        one.as_bytes(),
        one_ref.as_bytes(),
        "severity-0 ingest differs from the synthetic path"
    );
    assert_eq!(one.as_bytes(), four.as_bytes(), "CSV differs at 4 threads");
    assert_eq!(one.as_bytes(), thirty_two.as_bytes(), "CSV differs at 32 threads");
}

// ---------------------------------------------------------------------
// 2. Severity sweep: zero panics, conserved accounting
// ---------------------------------------------------------------------

/// The acceptance sweep from the issue: severities {0, 0.05, 0.2, 1.0}
/// through the full encode → fault → ingest → daemon → evaluate
/// pipeline. No panics (the test completing is the witness), and the
/// checked conservation law plus the daemon's own invariants hold at
/// every point. Re-running a severity with the same seed must reproduce
/// the exact counter state — the sweep is replayable, not sampled.
#[test]
fn severity_sweep_never_panics_and_conserves() {
    let corpus = small_corpus();
    for &severity in &[0.0, 0.05, 0.2, 1.0] {
        let scenario = IngestScenario {
            severity,
            ..IngestScenario::default()
        };
        let r = run_ingest("ingest-sweep", &corpus, &scenario);
        r.check()
            .unwrap_or_else(|e| panic!("severity {severity}: {e}"));
        assert_eq!(
            r.stats.received,
            r.stats.accepted + r.stats.shed + r.stats.malformed,
            "severity {severity}: conservation must hold exactly"
        );
        let by_layer: u64 = Layer::ALL.iter().map(|&l| r.stats.malformed_at(l)).sum();
        assert_eq!(
            by_layer, r.stats.malformed,
            "severity {severity}: per-layer malformed counts must sum to the total"
        );

        let replay = run_ingest("ingest-sweep-replay", &corpus, &scenario);
        assert_eq!(replay.stats, r.stats, "severity {severity}: sweep must replay exactly");
        assert_eq!(replay.accepted_batches, r.accepted_batches);
    }
}

// ---------------------------------------------------------------------
// 3. Flood control: degraded, not distorted
// ---------------------------------------------------------------------

/// A flooding source exhausts its own token bucket, its real telemetry
/// is shed, and the host lands in LowCoverage/Dark — while every honest
/// host still evaluates cleanly. The flood must also latch (one event,
/// not one per shed datagram).
#[test]
fn flooded_source_degrades_without_touching_honest_hosts() {
    let corpus = small_corpus();
    let flooded: u32 = 4;
    let scenario = IngestScenario {
        flood_hosts: vec![flooded],
        ..IngestScenario::default()
    };
    let r = run_ingest("ingest-flood", &corpus, &scenario);
    r.check().expect("invariants");

    assert!(r.stats.shed > 0, "flood must shed");
    assert_eq!(r.stats.flood_latched, 1, "exactly one source must latch");
    let status = r.host_status(flooded).expect("flooded host must stay in the host table");
    assert!(
        matches!(status, HostStatus::LowCoverage | HostStatus::Dark),
        "flooded host must degrade, got {status:?}"
    );
    for host in 0..corpus.n_users() as u32 {
        if host == flooded {
            continue;
        }
        assert_eq!(
            r.host_status(host),
            Some(HostStatus::Evaluated),
            "honest host {host} must be unaffected by another source's flood"
        );
    }
}

// ---------------------------------------------------------------------
// 4a. DNS case-fold regression (pinned)
// ---------------------------------------------------------------------

/// Pinned regression: the same name under different letter case must
/// count as ONE distinct contact. Before the ingest boundary folded
/// names, `NTP.Example.COM` and `ntp.example.com` double-counted.
#[test]
fn dns_case_spellings_count_as_one_contact() {
    let mut ing = Ingestor::new(IngestConfig::default());
    let spellings = ["ntp.example.com", "NTP.EXAMPLE.COM", "Ntp.Example.Com"];
    let mut novel = 0u64;
    for (i, name) in spellings.iter().enumerate() {
        let wire = encode_dns_datagram(i as u16, name).expect("valid query");
        match ing.ingest(0, 7, Lane::Dns, &wire) {
            IngestOutcome::Dns { novel: n, .. } => novel += u64::from(n),
            other => panic!("query {name:?} rejected: {other:?}"),
        }
    }
    assert_eq!(novel, 1, "three case spellings of one name must be one contact");
    let distinct: u64 = ing.dns_distinct(7).iter().map(|(_, n)| n).sum();
    assert_eq!(distinct, 1);
    assert_eq!(ing.stats().dns_queries, 3);

    // And end-to-end: the mixed-case pool in the experiment harness must
    // produce the same distinct totals as an all-lowercase fleet would.
    let corpus = small_corpus();
    let r = run_ingest("ingest-fold", &corpus, &IngestScenario::default());
    assert!(r.stats.dns_novel < r.stats.dns_queries);
    assert!(r.dns_distinct_total <= (corpus.n_users() * DNS_NAME_POOL.len()) as u64 * 2);
}

// ---------------------------------------------------------------------
// 4b. Pinned hostile datagram corpus
// ---------------------------------------------------------------------

/// Adversarial datagrams that previously crashed naive parsers, each
/// pinned so a regression names the exact input. Every one must come
/// back `Malformed` (never a batch, never a panic) and the accounting
/// must absorb all of them.
#[test]
fn hostile_datagram_corpus_is_rejected_not_fatal() {
    let hostile: Vec<(&str, Vec<u8>)> = vec![
        ("empty", vec![]),
        ("single-nul", vec![0]),
        ("all-0xff", vec![0xFF; 64]),
        ("invalid-utf8", vec![0xC3, 0x28, 0xE2, 0x82, 0x28, 0xF0, 0x90, 0x28]),
        ("bare-pri", b"<134>".to_vec()),
        ("pri-overflow", b"<99999>1 - h a - - - CEF:0|v|p|1|s|n|3|".to_vec()),
        ("pri-leading-zero", b"<013>1 - h a - - - msg".to_vec()),
        ("unterminated-pri", b"<134 1 - h a - - - msg".to_vec()),
        ("missing-msg", b"<134>1 - host app - - -".to_vec()),
        ("cef-too-few-pipes", b"<134>1 - h a - - - CEF:0|vendor|product".to_vec()),
        ("cef-bad-version", b"<134>1 - h a - - - CEF:X|v|p|1|s|n|3|k=v".to_vec()),
        (
            "cef-trailing-escape",
            b"<134>1 - h a - - - CEF:0|v|p|1|s|n|3|key=value\\".to_vec(),
        ),
        (
            "cef-counts-not-numeric",
            b"<134>1 - h a - - - CEF:0|hids|fleetd|1|batch|b|3|host=1 seq=1 week=train start=0 counts=a,b"
                .to_vec(),
        ),
        (
            "cef-week-unknown",
            b"<134>1 - h a - - - CEF:0|hids|fleetd|1|batch|b|3|host=1 seq=1 week=lunar start=0 counts=1"
                .to_vec(),
        ),
        (
            "cef-host-overflow",
            b"<134>1 - h a - - - CEF:0|hids|fleetd|1|batch|b|3|host=99999999999999999999 seq=1 week=train start=0 counts=1"
                .to_vec(),
        ),
        (
            "ansi-injection",
            b"<134>1 - h a - - - \x1b[2J\x1b[31mCEF:0|v|p|1|s|n|3|k=\x1b[0mv\x07".to_vec(),
        ),
        ("control-soup", (0u8..32).chain(0u8..32).collect()),
        ("giant-field", {
            let mut v = b"<134>1 - ".to_vec();
            v.extend(std::iter::repeat(b'h').take(10_000));
            v.extend(b" a - - - msg");
            v
        }),
        ("extension-bomb", {
            let mut v = b"<134>1 - h a - - - CEF:0|v|p|1|s|n|3|".to_vec();
            for i in 0..500 {
                v.extend(format!("k{i}=v{i} ").into_bytes());
            }
            v
        }),
        ("nul-in-extensions", {
            let mut v = b"<134>1 - h a - - - CEF:0|v|p|1|s|n|3|k=".to_vec();
            v.push(0);
            v.extend(b"v");
            v
        }),
    ];

    let mut ing = Ingestor::new(IngestConfig::default());
    for (i, (name, payload)) in hostile.iter().enumerate() {
        let outcome = ing.ingest(i as u64, i as u32, Lane::Syslog, payload);
        assert!(
            matches!(outcome, IngestOutcome::Malformed(_)),
            "hostile datagram {name:?} must be Malformed, got {outcome:?}"
        );
        // The same bytes on the DNS lane must also be rejected cleanly.
        let dns = ing.ingest(i as u64, i as u32, Lane::Dns, payload);
        assert!(
            !matches!(dns, IngestOutcome::Batch(_)),
            "hostile datagram {name:?} decoded as a batch on the DNS lane"
        );
    }
    let stats = ing.stats();
    assert!(stats.conservation_holds(), "hostile corpus broke accounting");
    assert_eq!(stats.received, 2 * hostile.len() as u64);
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.malformed, stats.received);
    // Layer attribution: some fail at the syslog frame, some inside CEF.
    assert!(stats.malformed_at(Layer::Syslog) > 0);
    assert!(stats.malformed_at(Layer::Cef) > 0);
}

// ---------------------------------------------------------------------
// 4c. Property suites: totality, idempotence, round-trip
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Both ingest lanes are total over arbitrary bytes: no input may
    /// panic, and the conservation law survives any interleaving.
    #[test]
    fn ingest_total_on_garbage(
        datagrams in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..300)),
            0..40,
        )
    ) {
        let mut ing = Ingestor::new(IngestConfig::default());
        for (i, (dns, payload)) in datagrams.iter().enumerate() {
            let lane = if *dns { Lane::Dns } else { Lane::Syslog };
            let _ = ing.ingest(i as u64, (i % 5) as u32, lane, payload);
        }
        prop_assert!(ing.stats().conservation_holds());
    }

    /// `decode_batch_datagram` is a total function of the payload.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = decode_batch_datagram(&bytes, &IngestConfig::default());
    }

    /// Sanitization is idempotent — running it twice changes nothing —
    /// and its output carries no control bytes and respects the bound.
    #[test]
    fn sanitize_is_idempotent_and_clean(
        input in "\\PC*",
        max_len in 1usize..512,
    ) {
        let once = sanitize(&input, max_len);
        let twice = sanitize(&once, max_len);
        prop_assert_eq!(&once, &twice, "sanitize must be idempotent");
        prop_assert!(once.chars().all(|c| !c.is_control()));
        prop_assert!(once.len() <= max_len);
    }

    /// Sanitization stays idempotent on raw (possibly invalid) bytes fed
    /// through the same lossy-UTF-8 door the ingest path uses.
    #[test]
    fn sanitize_idempotent_on_lossy_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
        max_len in 1usize..512,
    ) {
        let input = String::from_utf8_lossy(&bytes);
        let once = sanitize(&input, max_len);
        prop_assert_eq!(sanitize(&once, max_len), once);
    }

    /// Every well-formed batch survives the wire round-trip exactly.
    #[test]
    fn batch_roundtrips_through_wire_encoding(
        host in 0u32..100_000,
        seq in 1u64..1_000_000,
        test_week in any::<bool>(),
        start in 0u32..1_000_000,
        counts in proptest::collection::vec(0u64..1_000_000, 1..128),
        poison in any::<bool>(),
    ) {
        let batch = WindowBatch {
            host,
            seq,
            week: if test_week { Week::Test } else { Week::Train },
            start,
            counts,
            poison,
        };
        let wire = encode_batch_datagram(&batch, "hostX", "hids-agent");
        let decoded = decode_batch_datagram(&wire, &IngestConfig::default());
        prop_assert_eq!(decoded.as_ref().ok(), Some(&batch));
    }
}

// ---------------------------------------------------------------------
// 4d. SWAR hot path vs scalar oracle (differential)
// ---------------------------------------------------------------------
//
// The word-at-a-time sanitizer must be indistinguishable from the
// retained per-character implementation (`fleetd::ingest::oracle`) on
// every input — content, the `Cow` borrow/own decision, and idempotence.
// The crate-internal suites pin each primitive; these acceptance suites
// pin the public surface, on text skewed toward the bytes that matter
// (ESC, CSI/OSC openers and terminators, C0/C1 controls, multi-byte).

/// Generation weighted toward sanitizer-relevant bytes: escapes,
/// brackets, terminators, controls, DEL, a C1, and multi-byte chars.
const SANITIZER_HOSTILE: &str = "[\u{0}-\u{9f}\u{1b}\u{1b}\u{1b}\u{7}\u{7}\
     \\[\\[\\]\\]\\\\09AZaz;=|\u{7f}\u{9b}\u{e9}\u{4e16}]{0,64}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SWAR sanitize ≡ scalar oracle: same bytes out, same borrow/own
    /// decision, and both idempotent, on hostile-skewed text.
    #[test]
    fn swar_sanitize_matches_scalar_oracle(
        input in SANITIZER_HOSTILE,
        max_len in 1usize..96,
    ) {
        let fast = sanitize(&input, max_len);
        let slow = fleetd::ingest::oracle::sanitize(&input, max_len);
        prop_assert_eq!(fast.as_ref(), slow.as_ref(), "content diverged on {:?}", input);
        prop_assert_eq!(
            matches!(fast, std::borrow::Cow::Borrowed(_)),
            matches!(slow, std::borrow::Cow::Borrowed(_)),
            "Cow decision diverged on {:?}", input
        );
        prop_assert_eq!(sanitize(&fast, max_len).as_ref(), fast.as_ref());
    }

    /// The equivalence survives the lossy-UTF-8 door raw datagrams come
    /// through (replacement chars, truncated multi-byte tails).
    #[test]
    fn swar_sanitize_matches_oracle_on_lossy_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
        max_len in 1usize..96,
    ) {
        let input = String::from_utf8_lossy(&bytes);
        let fast = sanitize(&input, max_len);
        let slow = fleetd::ingest::oracle::sanitize(&input, max_len);
        prop_assert_eq!(fast.as_ref(), slow.as_ref());
        prop_assert_eq!(
            matches!(fast, std::borrow::Cow::Borrowed(_)),
            matches!(slow, std::borrow::Cow::Borrowed(_))
        );
    }

    /// The SWAR DNS name fold ≡ its char-at-a-time oracle.
    #[test]
    fn dns_fold_matches_scalar_oracle(name in "\\PC{0,64}") {
        prop_assert_eq!(netpkt::fold_name(&name), netpkt::fold_name_oracle(&name));
    }
}

/// The pinned hostile corpus, replayed through both sanitizers: every
/// adversarial payload that ever crashed a parser must sanitize to the
/// same bytes with the same borrow decision on the SWAR and scalar
/// paths.
#[test]
fn hostile_corpus_sanitizes_identically_on_swar_and_oracle() {
    let corpus: Vec<Vec<u8>> = vec![
        vec![],
        vec![0],
        vec![0xFF; 64],
        vec![0xC3, 0x28, 0xE2, 0x82, 0x28, 0xF0, 0x90, 0x28],
        b"<134>1 - h a - - - \x1b[2J\x1b[31mCEF:0|v|p|1|s|n|3|k=\x1b[0mv\x07".to_vec(),
        b"\x1b]0;evil title\x07<134>1 - h a - - - msg".to_vec(),
        b"\x1b]payload\x1b\\still here\x1b]unterminated".to_vec(),
        (0u8..32).chain(0u8..32).collect(),
        b"\x1b".to_vec(),
        b"\x1bA".to_vec(),
        b"abc\x1b[".to_vec(),
        vec![0xC2, 0x9B, b'[', b'2', b'J'], // C1 CSI spelled in UTF-8
        encode_batch_datagram(
            &WindowBatch {
                host: 1,
                seq: 1,
                week: Week::Train,
                start: 0,
                counts: vec![1, 2, 3],
                poison: false,
            },
            "h",
            "a",
        ),
    ];
    for (i, payload) in corpus.iter().enumerate() {
        let input = String::from_utf8_lossy(payload);
        for max_len in [1usize, 7, 64, 8 * 1024] {
            let fast = sanitize(&input, max_len);
            let slow = fleetd::ingest::oracle::sanitize(&input, max_len);
            assert_eq!(fast, slow, "corpus[{i}] content diverged at max_len {max_len}");
            assert_eq!(
                matches!(fast, std::borrow::Cow::Borrowed(_)),
                matches!(slow, std::borrow::Cow::Borrowed(_)),
                "corpus[{i}] Cow decision diverged at max_len {max_len}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// 4e. Pinned sanitizer regressions (OSC, capacity, truncated escapes)
// ---------------------------------------------------------------------

/// Pinned regression: OSC sequences (`ESC ] … BEL`/`ST`) are swallowed
/// whole, exactly like CSI — previously their payload leaked through
/// with only the controls stripped.
#[test]
fn sanitize_swallows_osc_like_csi() {
    assert_eq!(sanitize("a\u{1b}]0;owned\u{7}b", 100), "ab");
    assert_eq!(sanitize("a\u{1b}]0;owned\u{1b}\\b", 100), "ab"); // ST
    assert_eq!(sanitize("a\u{1b}]no terminator", 100), "a");
    // A bare ESC inside the payload ends the OSC and is re-examined.
    assert_eq!(sanitize("a\u{1b}]x\u{1b}[31mz", 100), "az");
    // Still idempotent with OSC in play.
    let dirty = "pre\u{1b}]t\u{7}mid\u{1b}[0mpost";
    let once = sanitize(dirty, 100);
    assert_eq!(sanitize(&once, 100), once);
}

/// Pinned regression: the rebuild's scratch-capacity hint used
/// `max_len * 4`, which overflows in debug builds when callers pass
/// `usize::MAX`-ish bounds; it must saturate instead.
#[test]
fn sanitize_huge_max_len_does_not_overflow() {
    for max_len in [usize::MAX, usize::MAX / 4 + 1, usize::MAX / 2] {
        assert_eq!(sanitize("abc\u{1b}[31mdef", max_len), "abcdef");
        assert_eq!(
            fleetd::ingest::oracle::sanitize("abc\u{1b}[31mdef", max_len),
            "abcdef"
        );
    }
}

/// Pinned: a bare or truncated ESC is dropped alone and the next byte is
/// re-examined — it must not swallow what follows.
#[test]
fn sanitize_truncated_escape_tails_pinned() {
    assert_eq!(sanitize("\u{1b}", 100), "");
    assert_eq!(sanitize("\u{1b}A", 100), "A");
    assert_eq!(sanitize("abc\u{1b}", 100), "abc");
    assert_eq!(sanitize("abc\u{1b}Az", 100), "abcAz");
    assert_eq!(sanitize("\u{1b}\u{1b}A", 100), "A");
    assert_eq!(sanitize("abc\u{1b}[", 100), "abc");
}
