//! Crash-recovery contract for the `fleetd` streaming evaluation daemon.
//!
//! The headline property: kill the daemon at *any* applied-batch boundary
//! or WAL byte offset — including torn mid-frame writes — restart it,
//! redeliver unacknowledged work, and the per-host output CSV is
//! byte-identical to a run that was never interrupted. This suite drives
//! that property over a seeded schedule of kill points, plus the failure
//! modes around it: poison-batch quarantine, circuit-breaker darkness,
//! overload shedding, and on-disk corruption of the WAL and snapshots.
//!
//! Property suites at the bottom pin the WAL frame scanner and snapshot
//! codec as total functions; `tests/daemon.proptest-regressions` records
//! previously-shrunk failure cases, each re-pinned here as an explicit
//! `regression_*` test.

use std::collections::BTreeMap;

use experiments::daemon::{
    build_batches, hosts_csv, run, unique_run_dir, DaemonRun, DaemonScenario,
};
use experiments::{Corpus, CorpusConfig};
use faultsim::{ByteFaults, KillPoint};
use fleetd::wal::{frame_batch, frame_command, frame_rollout, scan_frames, WAL_HEADER_LEN, WAL_MAGIC};
use fleetd::{
    Admit, Daemon, DaemonConfig, DaemonError, EpochState, HostState, KillSwitch, QueueConfig,
    Snapshot, SupervisorConfig, WalRecord, Week, WindowBatch,
};
use hids_core::degraded::HostStatus;
use hids_core::WindowAccumulator;
use proptest::prelude::*;

const WINDOWS_PER_WEEK: u32 = 672;
const BATCH_WINDOWS: usize = 112; // 6 batches per week, 12 per host
const N_USERS: usize = 8;

fn small_corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        n_users: N_USERS,
        n_weeks: 2,
        ..CorpusConfig::small()
    })
}

fn base_scenario() -> DaemonScenario {
    DaemonScenario {
        batch_windows: BATCH_WINDOWS,
        daemon: DaemonConfig {
            n_shards: 3,
            snapshot_every: 20,
            queue: QueueConfig {
                capacity: 64,
                high: 48,
                low: 16,
                shed_after: 1_000_000,
                quantum: 4,
            },
            ..DaemonConfig::default()
        },
        ..DaemonScenario::default()
    }
}

fn run_in_fresh_dir(
    tag: &str,
    scenario: &DaemonScenario,
    batches: &[WindowBatch],
    kills: &[KillPoint],
) -> DaemonRun {
    let dir = unique_run_dir(tag);
    let result = run(&dir, scenario, batches, kills).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    result
}

// ---------------------------------------------------------------------
// Headline property: byte-identical output CSV across seeded kills.
// ---------------------------------------------------------------------

#[test]
fn kill_recovery_is_byte_identical_at_twenty_seeded_points() {
    let corpus = small_corpus();
    let scenario = base_scenario();
    let batches = build_batches(&corpus, &scenario);
    assert_eq!(batches.len(), N_USERS * 12);

    let reference = run_in_fresh_dir("kill-ref", &scenario, &batches, &[]);
    reference.check().unwrap();
    let ref_csv = hosts_csv(&reference);
    assert_eq!(reference.total_applied, batches.len() as u64);

    let mut points = faultsim::kill_points(
        0xD00D_FEED,
        20,
        reference.total_applied,
        reference.total_wal_bytes,
    );
    // Two handcrafted torn writes on top of the seeded schedule: one dies
    // inside the frame header, one deep inside the payload.
    points.push(KillPoint::AtWalByte {
        offset: reference.total_wal_bytes / 3,
        torn: 7,
    });
    points.push(KillPoint::AtWalByte {
        offset: reference.total_wal_bytes / 2,
        torn: 300,
    });
    assert!(points.len() >= 20);

    let mut fired = 0u32;
    let mut torn_seen = false;
    for (i, &point) in points.iter().enumerate() {
        let killed = run_in_fresh_dir(&format!("kill-{i}"), &scenario, &batches, &[point]);
        assert_eq!(killed.lost_batches, 0, "kill point {i} ({point:?})");
        assert_eq!(
            hosts_csv(&killed),
            ref_csv,
            "hosts CSV diverged at kill point {i} ({point:?})"
        );
        assert!(killed.recovery.kills <= 1);
        fired += killed.recovery.kills;
        torn_seen |= killed.recovery.wal_torn_bytes > 0;
    }
    assert!(
        fired >= 20,
        "at least 20 of the {} scheduled kills must fire, got {fired}",
        points.len()
    );
    assert!(
        torn_seen,
        "at least one torn mid-frame write must be observed and truncated"
    );
}

#[test]
fn repeated_kills_in_one_run_converge() {
    let corpus = small_corpus();
    let scenario = base_scenario();
    let batches = build_batches(&corpus, &scenario);

    let reference = run_in_fresh_dir("multi-ref", &scenario, &batches, &[]);
    let a = reference.total_applied;
    let w = reference.total_wal_bytes;
    // Five kills in increasing order (batch and byte meters advance
    // together), two of them torn mid-frame.
    let kills = [
        KillPoint::AfterBatches(a / 6),
        KillPoint::AtWalByte {
            offset: w / 3,
            torn: 13,
        },
        KillPoint::AfterBatches(a / 2),
        KillPoint::AtWalByte {
            offset: 2 * w / 3,
            torn: 47,
        },
        KillPoint::AfterBatches(a - 1),
    ];
    let killed = run_in_fresh_dir("multi-kill", &scenario, &batches, &kills);
    assert_eq!(killed.recovery.kills, 5);
    assert_eq!(killed.recovery.lifetimes, 6);
    assert_eq!(killed.lost_batches, 0);
    assert!(killed.recovery.wal_torn_bytes > 0, "torn tails were written");
    assert!(
        killed.recovery.snapshots_loaded >= 1,
        "later recoveries start from a snapshot"
    );
    assert_eq!(hosts_csv(&killed), hosts_csv(&reference));
}

// ---------------------------------------------------------------------
// Poison batches: quarantine, survival, degraded coverage accounting.
// ---------------------------------------------------------------------

#[test]
fn poison_batch_is_quarantined_and_coverage_accounted() {
    let corpus = small_corpus();
    let mut scenario = base_scenario();
    scenario.poison_hosts = vec![3];
    let batches = build_batches(&corpus, &scenario);

    let r1 = run_in_fresh_dir("poison-a", &scenario, &batches, &[]);
    r1.check().unwrap();
    assert_eq!(r1.recovery.lifetimes, 1, "the panic must not kill the daemon");
    assert_eq!(r1.stats.quarantined, 1);
    assert_eq!(r1.lost_batches, 0);

    // Host 3 lost exactly its poisoned first test batch; the degraded
    // evaluation sees precisely that coverage hole.
    let eval = r1.evaluation.as_ref().expect("population evaluates");
    let missing = BATCH_WINDOWS as f64 / f64::from(WINDOWS_PER_WEEK);
    for (i, (host, st)) in r1.hosts.iter().enumerate() {
        let u = &eval.users[i];
        assert_eq!(u.train_coverage, 1.0);
        if *host == 3 {
            assert_eq!(u.status, HostStatus::Evaluated);
            assert_eq!(u.test_coverage, 1.0 - missing);
            assert_eq!(st.test.len(), WINDOWS_PER_WEEK as usize - BATCH_WINDOWS);
        } else {
            assert_eq!(u.test_coverage, 1.0, "host {host} must be untouched");
        }
    }

    // A kill in the middle of the poisoned scenario still converges to
    // the identical CSV: quarantine is deterministic across restarts.
    let killed = run_in_fresh_dir(
        "poison-b",
        &scenario,
        &batches,
        &[KillPoint::AfterBatches(r1.total_applied / 2)],
    );
    assert_eq!(killed.lost_batches, 0);
    assert_eq!(hosts_csv(&killed), hosts_csv(&r1));
}

// ---------------------------------------------------------------------
// Circuit breaker: a crash-looping shard goes dark and sheds, feeding
// the degraded evaluation's coverage accounting.
// ---------------------------------------------------------------------

#[test]
fn breaker_trips_shard_dark_and_sheds_deterministically() {
    let corpus = small_corpus();
    let mut scenario = base_scenario();
    scenario.poison_hosts = vec![0];
    // A huge quarantine budget turns the poison batch into a pure crash
    // loop; the breaker must cut it off after three consecutive panics.
    scenario.daemon.supervisor = SupervisorConfig {
        backoff_base: 1,
        backoff_cap_exp: 4,
        quarantine_strikes: 1000,
        breaker_failures: 3,
    };
    let batches = build_batches(&corpus, &scenario);

    let r = run_in_fresh_dir("breaker-a", &scenario, &batches, &[]);
    r.check().unwrap();
    assert_eq!(r.recovery.lifetimes, 1);
    assert_eq!(r.stats.breaker_trips, 1);
    assert_eq!(r.lost_batches, 0, "dark-shard arrivals shed, not lose");
    // Shard 0 owns hosts {0, 3, 6}. All training applied before the trip
    // (train batches precede test batches per host); every test batch of
    // the dark shard sheds: 3 at the trip (the re-queued poison plus the
    // two queued peers) and the rest on arrival.
    assert_eq!(r.stats.shed_dark, 3 * 6);
    assert_eq!(r.stats.applied, (N_USERS as u64 - 3) * 6 + N_USERS as u64 * 6);

    let eval = r.evaluation.as_ref().expect("population evaluates");
    for (i, (host, st)) in r.hosts.iter().enumerate() {
        let u = &eval.users[i];
        assert_eq!(u.train_coverage, 1.0);
        if host % 3 == 0 {
            assert_eq!(u.test_coverage, 0.0, "host {host} went dark mid-test");
            assert_ne!(u.status, HostStatus::Evaluated);
            assert!(st.test.is_empty());
        } else {
            assert_eq!(u.test_coverage, 1.0);
            assert_eq!(u.status, HostStatus::Evaluated);
        }
    }

    // Deterministic: the identical schedule reproduces counters and CSV.
    let r2 = run_in_fresh_dir("breaker-b", &scenario, &batches, &[]);
    assert_eq!(r2.stats, r.stats);
    assert_eq!(hosts_csv(&r2), hosts_csv(&r));
}

// ---------------------------------------------------------------------
// Overload: watermark backpressure bounds memory; stale work sheds
// deterministically under the conservation law.
// ---------------------------------------------------------------------

#[test]
fn sustained_overload_sheds_deterministically_within_memory_bound() {
    let corpus = small_corpus();
    let mut scenario = base_scenario();
    // One slow shard for the whole fleet: 1 batch per tick against 8
    // stop-and-wait senders, freshness deadline of 3 ticks.
    scenario.daemon.n_shards = 1;
    scenario.daemon.queue = QueueConfig {
        capacity: 16,
        high: 6,
        low: 2,
        shed_after: 3,
        quantum: 1,
    };
    let batches = build_batches(&corpus, &scenario);

    let r = run_in_fresh_dir("overload-a", &scenario, &batches, &[]);
    r.check().unwrap();
    assert_eq!(r.recovery.lifetimes, 1);
    assert!(r.stats.shed_overload > 0, "overload must shed stale work");
    assert_eq!(r.stats.overflow, 0, "backpressure-honoring source never overflows");
    assert!(
        r.max_queue_depth <= scenario.daemon.queue.high,
        "queue memory bound violated: depth {} > high watermark {}",
        r.max_queue_depth,
        scenario.daemon.queue.high
    );
    // Conservation at quiescence: every admitted batch has exactly one
    // terminal disposition.
    assert_eq!(
        r.stats.admitted,
        r.stats.applied + r.stats.duplicates + r.stats.shed_overload
    );
    assert_eq!(r.lost_batches, 0);

    let r2 = run_in_fresh_dir("overload-b", &scenario, &batches, &[]);
    assert_eq!(r2.stats, r.stats);
    assert_eq!(hosts_csv(&r2), hosts_csv(&r));
}

// ---------------------------------------------------------------------
// On-disk corruption: recovery is total, and at-least-once redelivery
// converges back to the uninterrupted state.
// ---------------------------------------------------------------------

/// Offer every batch directly and drain; per-shard FIFOs preserve each
/// host's seq order, so this is equivalent to the harness delivery path.
fn offer_all_and_drain(daemon: &mut Daemon, kill: &mut KillSwitch, batches: &[WindowBatch]) {
    for b in batches {
        assert_ne!(daemon.offer(b.clone()), Admit::Overflow);
    }
    assert!(daemon.drain(kill, 1_000_000).unwrap());
}

fn final_hosts(daemon: &Daemon) -> Vec<(u32, HostState)> {
    daemon
        .hosts()
        .into_iter()
        .map(|(h, s)| (h, s.clone()))
        .collect()
}

#[test]
fn wal_corruption_is_truncated_and_redelivery_converges() {
    let corpus = small_corpus();
    let scenario = base_scenario();
    let batches = build_batches(&corpus, &scenario);
    let reference = run_in_fresh_dir("corrupt-ref", &scenario, &batches, &[]);

    let dir = unique_run_dir("corrupt-wal");
    // Run two thirds of the way in, then die at a batch boundary.
    {
        let (mut d, _) = Daemon::open(&dir, scenario.daemon).unwrap();
        let mut kill = KillSwitch::armed(KillPoint::AfterBatches(2 * reference.total_applied / 3));
        for b in &batches {
            assert_ne!(d.offer(b.clone()), Admit::Overflow);
        }
        match d.drain(&mut kill, 1_000_000) {
            Err(DaemonError::Killed) => {}
            other => panic!("expected the kill switch to fire, got {other:?}"),
        }
    }
    // Bit-rot and truncate the WAL.
    let wal_path = dir.join("wal.bin");
    let wal = std::fs::read(&wal_path).unwrap();
    assert!(!wal.is_empty());
    let faults = ByteFaults {
        bitflip_rate: 0.002,
        truncate_prob: 1.0,
        bad_length_rate: 0.0,
        corrupt_magic: false,
    };
    let (corrupted, log) = faults.apply(&wal, 0xBAD_5EED);
    assert!(!log.is_clean());
    std::fs::write(&wal_path, &corrupted).unwrap();

    // Recovery must not panic, must truncate to a valid prefix, and full
    // redelivery (seq-deduped) must converge to the uninterrupted state.
    let (mut d, rec) = Daemon::open(&dir, scenario.daemon).unwrap();
    assert!(rec.wal_rejected == 0 && rec.wal_quarantined == 0);
    let mut kill = KillSwitch::none();
    offer_all_and_drain(&mut d, &mut kill, &batches);
    assert_eq!(final_hosts(&d), reference.hosts);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_snapshots_are_discarded_and_redelivery_rebuilds() {
    let corpus = small_corpus();
    let scenario = base_scenario();
    let batches = build_batches(&corpus, &scenario);
    let reference = run_in_fresh_dir("snapcorrupt-ref", &scenario, &batches, &[]);

    let dir = unique_run_dir("snapcorrupt");
    {
        let (mut d, _) = Daemon::open(&dir, scenario.daemon).unwrap();
        let mut kill = KillSwitch::armed(KillPoint::AfterBatches(3 * reference.total_applied / 4));
        for b in &batches {
            assert_ne!(d.offer(b.clone()), Admit::Overflow);
        }
        match d.drain(&mut kill, 1_000_000) {
            Err(DaemonError::Killed) => {}
            other => panic!("expected the kill switch to fire, got {other:?}"),
        }
    }
    // Flip one byte in every retained snapshot and drop the WAL (without
    // its snapshot base a surviving WAL tail would be a mid-stream slice,
    // which dedup correctly refuses to backfill — the disaster-recovery
    // story for losing *all* checkpoints is full redelivery).
    let snaps = fleetd::snapshot::list_snapshots(&dir).unwrap();
    assert_eq!(snaps.len(), 2, "keep-two retention");
    for (_, path) in &snaps {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(path, &bytes).unwrap();
    }
    std::fs::remove_file(dir.join("wal.bin")).unwrap();

    let (mut d, rec) = Daemon::open(&dir, scenario.daemon).unwrap();
    assert_eq!(rec.snapshots_discarded, 2, "every flipped image is rejected");
    assert!(rec.snapshot_seq.is_none());
    let mut kill = KillSwitch::none();
    offer_all_and_drain(&mut d, &mut kill, &batches);
    assert_eq!(final_hosts(&d), reference.hosts);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn both_snapshots_corrupt_with_surviving_wal_recovers_from_wal_alone() {
    // Snapshot-retention worst case: every retained checkpoint is damaged
    // but the WAL survived. Recovery must discard both images with a
    // warning-grade report — never a panic — and rebuild exactly the
    // state the WAL tail (everything since the last checkpoint) encodes.
    let corpus = small_corpus();
    let mut scenario = base_scenario();
    // Checkpoints are taken explicitly below; an automatic one mid-tail
    // would reset the WAL and shrink the tail under test.
    scenario.daemon.snapshot_every = 1_000_000;
    let batches = build_batches(&corpus, &scenario);
    // Per-host seq order within each third is what the daemon sees from
    // stop-and-wait delivery, so offering thirds in order is equivalent.
    let thirds: Vec<&[WindowBatch]> = batches.chunks(batches.len() / 3).collect();

    let dir = unique_run_dir("allsnapcorrupt");
    {
        let (mut d, _) = Daemon::open(&dir, scenario.daemon).unwrap();
        let mut kill = KillSwitch::none();
        offer_all_and_drain(&mut d, &mut kill, thirds[0]);
        d.checkpoint().unwrap();
        offer_all_and_drain(&mut d, &mut kill, thirds[1]);
        d.checkpoint().unwrap();
        // The tail after the last checkpoint lives only in the WAL.
        for third in &thirds[2..] {
            offer_all_and_drain(&mut d, &mut kill, third);
        }
        assert!(d.wal_len() > 0, "tail must be WAL-only");
    }
    let snaps = fleetd::snapshot::list_snapshots(&dir).unwrap();
    assert_eq!(snaps.len(), 2, "keep-two retention");
    for (_, path) in &snaps {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(path, &bytes).unwrap();
    }
    // Unlike `corrupt_snapshots_are_discarded_and_redelivery_rebuilds`,
    // wal.bin is deliberately KEPT.

    let (mut d, rec) = Daemon::open(&dir, scenario.daemon).unwrap();
    assert_eq!(rec.snapshots_discarded, 2, "both images rejected, no panic");
    assert!(rec.snapshot_seq.is_none(), "nothing usable to load");
    let tail_batches: u64 = thirds[2..].iter().map(|t| t.len() as u64).sum();
    assert_eq!(rec.wal_replayed, tail_batches, "full WAL-only replay");
    assert_eq!(rec.wal_torn_bytes, 0);

    // WAL-only replay must equal a fresh daemon fed exactly the tail.
    let expect_dir = unique_run_dir("allsnapcorrupt-expect");
    let (mut expect, _) = Daemon::open(&expect_dir, scenario.daemon).unwrap();
    let mut kill = KillSwitch::none();
    for third in &thirds[2..] {
        offer_all_and_drain(&mut expect, &mut kill, third);
    }
    assert_eq!(final_hosts(&d), final_hosts(&expect));

    // And the recovered daemon is still live: new work after the replayed
    // tail applies cleanly.
    let extra = WindowBatch {
        host: 0,
        seq: batches.iter().filter(|b| b.host == 0).map(|b| b.seq).max().unwrap() + 1,
        week: Week::Test,
        start: 0,
        counts: vec![1],
        poison: false,
    };
    assert_ne!(d.offer(extra), Admit::Overflow);
    assert!(d.drain(&mut kill, 1_000).unwrap());

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&expect_dir).unwrap();
}

// ---------------------------------------------------------------------
// Property suites: the WAL scanner and snapshot codec are total, and
// recovery is exact on every prefix.
// ---------------------------------------------------------------------

fn arb_batch() -> impl Strategy<Value = WindowBatch> {
    (
        0u32..32,
        1u64..64,
        any::<bool>(),
        0u32..600,
        proptest::collection::vec(0u64..10_000, 0..40),
    )
        .prop_map(|(host, seq, test_week, start, counts)| WindowBatch {
            host,
            seq,
            week: if test_week { Week::Test } else { Week::Train },
            start,
            counts,
            poison: false,
        })
}

fn concat_frames(batches: &[WindowBatch]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut ends = Vec::new();
    for b in batches {
        log.extend(frame_batch(b));
        ends.push(log.len());
    }
    (log, ends)
}

fn arb_host_state() -> impl Strategy<Value = HostState> {
    (
        0u64..64,
        proptest::collection::vec((0u32..672, 0u64..100_000), 0..32),
        proptest::collection::vec((0u32..672, 0u64..100_000), 0..32),
        (any::<bool>(), 0u64..1_000_000),
        0u64..1000,
    )
        .prop_map(|(last_seq, train, test, (has_thresh, thresh), live_alarms)| HostState {
            last_seq,
            train: WindowAccumulator::from_pairs(train),
            test: WindowAccumulator::from_pairs(test),
            threshold: has_thresh.then(|| thresh as f64 / 7.0),
            live_alarms,
            pinned: (last_seq % 3 == 0).then(|| thresh as f64 / 11.0),
            promoted: (!has_thresh).then(|| (live_alarms as u32 % 672, thresh as f64 / 3.0)),
            train_sketch: None,
            test_sketch: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The frame scanner is total on arbitrary bytes, and whatever it
    /// accepts re-frames to exactly the valid prefix it reported.
    #[test]
    fn wal_scan_is_total_and_exact(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (records, valid, defect) = scan_frames(&bytes);
        prop_assert!(valid as usize <= bytes.len());
        let mut reframed = Vec::new();
        for r in &records {
            match r {
                WalRecord::Batch(b) => reframed.extend(frame_batch(b)),
                WalRecord::Rollout(ev) => reframed.extend(frame_rollout(ev)),
                WalRecord::Command(c) => reframed.extend(frame_command(c)),
            }
        }
        prop_assert_eq!(&reframed[..], &bytes[..valid as usize]);
        if (valid as usize) < bytes.len() {
            prop_assert!(defect.is_some(), "unconsumed bytes demand a defect");
        }
    }

    /// Cutting a well-formed log at any byte recovers exactly the frames
    /// that fit entirely before the cut; a mid-frame cut is flagged.
    #[test]
    fn wal_prefix_recovery_is_exact(
        batches in proptest::collection::vec(arb_batch(), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let (log, ends) = concat_frames(&batches);
        let cut = ((log.len() as f64) * cut_frac) as usize;
        let (recovered, valid, defect) = scan_frames(&log[..cut]);
        let whole = ends.iter().take_while(|&&e| e <= cut).count();
        prop_assert_eq!(recovered.len(), whole);
        prop_assert_eq!(valid as usize, if whole == 0 { 0 } else { ends[whole - 1] });
        for (got, want) in recovered.iter().zip(&batches) {
            prop_assert_eq!(got, &WalRecord::Batch(want.clone()));
        }
        // The cut is mid-frame exactly when bytes remain past the last
        // whole frame — and that torn tail must be flagged, never fatal.
        prop_assert_eq!(defect.is_some(), (valid as usize) < cut);
    }

    /// A single flipped byte anywhere in a log never panics the scanner
    /// and never damages frames that precede the flip.
    #[test]
    fn wal_single_byte_flip_keeps_earlier_frames(
        batches in proptest::collection::vec(arb_batch(), 1..10),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut log, ends) = concat_frames(&batches);
        let pos = (((log.len() - 1) as f64) * pos_frac) as usize;
        log[pos] ^= 1 << bit;
        let (recovered, valid, _) = scan_frames(&log);
        prop_assert!(valid as usize <= log.len());
        let intact = ends.iter().take_while(|&&e| e <= pos).count();
        prop_assert!(recovered.len() >= intact, "frames before the flip survive");
        for (got, want) in recovered.iter().take(intact).zip(&batches) {
            prop_assert_eq!(got, &WalRecord::Batch(want.clone()));
        }
    }

    /// Snapshot images roundtrip exactly through encode/decode.
    #[test]
    fn snapshot_roundtrips(
        seq in 1u64..1_000_000,
        hosts in proptest::collection::vec((0u32..64, arb_host_state()), 0..8),
    ) {
        let hosts: BTreeMap<u32, HostState> = hosts.into_iter().collect();
        let snap = Snapshot { seq, n_windows: WINDOWS_PER_WEEK, hosts, epoch: EpochState::default(), drained: Vec::new() };
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(decoded, snap);
    }

    /// Any single-byte corruption of a snapshot image is detected.
    #[test]
    fn snapshot_flip_is_detected(
        hosts in proptest::collection::vec((0u32..64, arb_host_state()), 1..6),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let hosts: BTreeMap<u32, HostState> = hosts.into_iter().collect();
        let snap = Snapshot { seq: 7, n_windows: WINDOWS_PER_WEEK, hosts, epoch: EpochState::default(), drained: vec![1] };
        let mut bytes = snap.encode();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        prop_assert!(Snapshot::decode(&bytes).is_err());
    }
}

// ---------------------------------------------------------------------
// Pinned regressions from tests/daemon.proptest-regressions. The
// vendored proptest stub does not read that file, so each recorded
// shrink is re-run here explicitly.
// ---------------------------------------------------------------------

/// Shrink `bytes = [87, 76, 82, 49]`: a bare magic with no header must
/// scan to zero frames with a short-header defect, not a panic.
#[test]
fn regression_bare_magic_is_short_header() {
    let (batches, valid, defect) = scan_frames(&WAL_MAGIC);
    assert!(batches.is_empty());
    assert_eq!(valid, 0);
    assert!(defect.is_some());
}

/// Shrink `cut = 12`: a cut exactly at the end of the frame header (a
/// complete header, zero payload bytes) is a torn tail, not a frame.
#[test]
fn regression_cut_at_header_boundary() {
    let batch = WindowBatch {
        host: 0,
        seq: 1,
        week: Week::Train,
        start: 0,
        counts: vec![5],
        poison: false,
    };
    let frame = frame_batch(&batch);
    assert!(frame.len() > WAL_HEADER_LEN);
    let (batches, valid, defect) = scan_frames(&frame[..WAL_HEADER_LEN]);
    assert!(batches.is_empty());
    assert_eq!(valid, 0);
    assert!(defect.is_some());
}

/// Shrink `(pos, bit) = (first byte of frame 2, 0)`: a flip landing on a
/// later frame's magic truncates there and keeps the first frame whole.
#[test]
fn regression_flip_in_second_frame_magic() {
    let b1 = WindowBatch {
        host: 1,
        seq: 1,
        week: Week::Train,
        start: 0,
        counts: vec![1, 2, 3],
        poison: false,
    };
    let b2 = WindowBatch {
        host: 1,
        seq: 2,
        week: Week::Test,
        start: 0,
        counts: vec![4, 5, 6],
        poison: false,
    };
    let (mut log, ends) = concat_frames(&[b1.clone(), b2]);
    log[ends[0]] ^= 1; // first byte of the second frame's magic
    let (records, valid, defect) = scan_frames(&log);
    assert_eq!(records, vec![WalRecord::Batch(b1)]);
    assert_eq!(valid as usize, ends[0]);
    assert!(defect.is_some());
}

/// Shrink `counts = []`: an empty batch frames and scans cleanly — the
/// scanner must not equate a zero-window payload with a torn record.
#[test]
fn regression_empty_batch_roundtrips() {
    let batch = WindowBatch {
        host: 9,
        seq: 3,
        week: Week::Test,
        start: 600,
        counts: Vec::new(),
        poison: true,
    };
    let frame = frame_batch(&batch);
    let (records, valid, defect) = scan_frames(&frame);
    assert_eq!(records, vec![WalRecord::Batch(batch)]);
    assert_eq!(valid as usize, frame.len());
    assert!(defect.is_none());
}

/// Shrink `hosts = {0: empty-accumulator host}`: a host that has never
/// applied a window still snapshots and restores (threshold `None`,
/// empty accumulators).
#[test]
fn regression_snapshot_of_blank_host() {
    let mut hosts = BTreeMap::new();
    hosts.insert(0u32, HostState::default());
    let snap = Snapshot {
        seq: 1,
        n_windows: WINDOWS_PER_WEEK,
        hosts,
        epoch: EpochState::default(),
        drained: Vec::new(),
    };
    let decoded = Snapshot::decode(&snap.encode()).unwrap();
    assert_eq!(decoded, snap);
}
