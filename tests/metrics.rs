//! Observability acceptance tests (ISSUE 5).
//!
//! Two guarantees over the `hids-metrics` layer:
//!
//! 1. **deterministic snapshots** — the merged Prometheus rendering of a
//!    chaos run is byte-identical at any worker-thread count, and stable
//!    under shard-merge order;
//! 2. **conservation laws** — the exported counters account for every
//!    batch: fleet-side `admitted = Σ terminal dispositions` at
//!    quiescence, delivery-side `enqueued = delivered + expired`, and the
//!    WAL/recovery counters agree with the run's own recovery totals.

use experiments::chaos::{self, ChaosConfig};
use experiments::daemon::{build_batches, run, unique_run_dir, DaemonScenario};
use experiments::{Corpus, CorpusConfig};
use fleetd::{DaemonConfig, QueueConfig};
use flowtab::FeatureKind;
use hids_metrics::{Registry, RenderOptions};

fn corpus(n_users: usize, seed: u64) -> Corpus {
    Corpus::generate(CorpusConfig {
        n_users,
        n_weeks: 2,
        seed,
        ..Default::default()
    })
}

fn chaos_snapshot(corpus: &Corpus) -> String {
    let r = chaos::run(
        corpus,
        FeatureKind::TcpConnections,
        &ChaosConfig::new(0xFA11, 0.2),
    );
    r.check().expect("chaos invariants");
    let mut reg = Registry::new();
    r.export_metrics(&mut reg);
    reg.render(RenderOptions::deterministic())
}

/// The headline determinism contract: the same work renders to the same
/// bytes no matter how many threads performed it. (The `repro` binary's
/// `--metrics-out` is the same export path; `scripts/ci.sh` smokes that
/// end of it.)
#[test]
fn chaos_metrics_snapshot_is_byte_identical_across_thread_counts() {
    let corpus = corpus(24, 42);
    let mut renders = Vec::new();
    for threads in [1usize, 4, 32] {
        hids_core::set_threads(threads);
        renders.push((threads, chaos_snapshot(&corpus)));
    }
    hids_core::set_threads(0); // back to auto for the rest of the binary
    let (_, reference) = &renders[0];
    assert!(
        reference.contains("# TYPE chaos_capture_frames_total counter"),
        "snapshot should carry the chaos families:\n{reference}"
    );
    for (threads, render) in &renders[1..] {
        assert_eq!(
            render, reference,
            "metrics snapshot diverged at --threads {threads}"
        );
    }
}

/// Registry merge must not depend on which shard finished first: folding
/// the same shard registries in opposite orders renders identically
/// (events excluded — their order IS the merge order, which the engine
/// fixes by always merging in input order).
#[test]
fn shard_merge_order_does_not_change_the_rendered_counters() {
    let shard = |id: u64| {
        let mut r = Registry::new();
        r.register_histogram("batch_span", "windows per batch", &[4, 16]);
        r.counter_add("work_total", &[("shard", &id.to_string())], id + 1);
        r.counter_add("work_total", &[], 10 * (id + 1));
        r.histogram_observe("batch_span", &[], id);
        r.gauge_set("depth", &[], id as i64);
        r
    };
    let opts = RenderOptions {
        include_events: false,
        ..RenderOptions::deterministic()
    };
    let mut forward = Registry::new();
    for i in 0..6 {
        forward.merge(&shard(i));
    }
    let mut reverse = Registry::new();
    for i in (0..6).rev() {
        reverse.merge(&shard(i));
    }
    assert_eq!(forward.render(opts), reverse.render(opts));
}

/// Conservation over a real daemon run, read back from the exported
/// registry: every admitted batch reaches exactly one terminal
/// disposition, and the delivery link neither invents nor loses batches.
#[test]
fn exported_counters_obey_the_conservation_laws() {
    let corpus = corpus(8, 7);
    let scenario = DaemonScenario {
        feature: FeatureKind::TcpConnections,
        batch_windows: 112,
        poison_hosts: vec![3],
        daemon: DaemonConfig {
            n_shards: 3,
            snapshot_every: 20,
            queue: QueueConfig {
                capacity: 64,
                high: 48,
                low: 16,
                shed_after: 1_000_000,
                quantum: 4,
            },
            ..DaemonConfig::default()
        },
        ..DaemonScenario::default()
    };
    let batches = build_batches(&corpus, &scenario);
    let dir = unique_run_dir("metrics-conservation");
    let outcome = run(&dir, &scenario, &batches, &[]).expect("daemon run");
    let _ = std::fs::remove_dir_all(&dir);

    let m = &outcome.metrics;
    let batch = |d: &str| m.counter_value("fleetd_batches_total", &[("disposition", d)]);
    let admitted = batch("admitted");
    let accounted = batch("applied")
        + batch("duplicate")
        + batch("quarantined")
        + batch("shed_overload")
        + batch("shed_dark")
        + batch("rejected");
    assert!(admitted > 0, "scenario admitted no batches");
    assert_eq!(
        admitted,
        accounted + m.gauge_value("fleetd_queue_depth", &[]) as u64,
        "fleet conservation: admitted must equal terminal dispositions + queued"
    );
    // The poisoned host must be visible in the snapshot, twice over:
    // the counter and its structured event.
    assert_eq!(batch("quarantined"), 1);
    assert!(m
        .events()
        .events()
        .any(|e| e.scope == "fleetd.shard" && e.name == "quarantined"));

    let link = |d: &str| {
        m.counter_value(
            "itc_delivery_batches_total",
            &[("queue", "daemon_link"), ("disposition", d)],
        )
    };
    assert_eq!(
        link("enqueued"),
        link("delivered") + link("expired"),
        "delivery conservation: a quiescent queue has delivered or expired \
         everything it accepted"
    );
    // Cross-layer agreement: counters exported from different structs
    // describe the same run.
    assert_eq!(
        m.counter_value("fleetd_harness_lifetimes_total", &[]),
        u64::from(outcome.recovery.lifetimes)
    );
    assert_eq!(
        m.counter_value("fleetd_snapshots_written_total", &[]),
        outcome.stats.snapshots_written
    );
}

/// The rendered text form itself: families sorted, HELP/TYPE present,
/// histograms cumulative, events parse as comments. This is what a
/// Prometheus scraper (or the ci.sh smoke grep) consumes.
#[test]
fn rendered_snapshot_is_valid_exposition_text() {
    let mut reg = Registry::new();
    reg.register_counter("z_total", "last family");
    reg.register_histogram("spans", "span histogram", &[1, 10]);
    reg.counter_add("z_total", &[], 3);
    reg.histogram_observe("spans", &[], 2);
    reg.histogram_observe("spans", &[], 100);
    reg.event("scope", "name", &[("k", "v w")]);
    let text = reg.render(RenderOptions::deterministic());
    let lines: Vec<&str> = text.lines().collect();
    // Families render in lexicographic order: spans before z_total.
    let spans_at = lines
        .iter()
        .position(|l| *l == "# HELP spans span histogram")
        .expect("spans HELP line");
    let z_at = lines
        .iter()
        .position(|l| *l == "# HELP z_total last family")
        .expect("z_total HELP line");
    assert!(spans_at < z_at);
    assert!(text.contains("spans_bucket{le=\"1\"} 0"));
    assert!(text.contains("spans_bucket{le=\"10\"} 1"));
    assert!(text.contains("spans_bucket{le=\"+Inf\"} 2"));
    assert!(text.contains("spans_sum 102"));
    assert!(text.contains("spans_count 2"));
    assert!(text.contains("z_total 3"));
    assert!(text.contains("# event 0 scope name k=\"v w\""));
    // Every non-comment line is `name{labels} integer`.
    for line in lines.iter().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit(' ').next().expect("value field");
        value.parse::<i64>().unwrap_or_else(|_| {
            unreachable!("non-integer value in deterministic render: {line}")
        });
    }
}
