//! Cross-crate integration: the complete system, packets to policy.

use monoculture_hids::prelude::*;
use synthgen::{render_flows_to_frames, render_window_flows, stream_rng};

/// The full measurement + configuration + detection + console loop on a
/// packet-level trace of one window, for several users.
#[test]
fn packets_to_console_round_trip() {
    let pop = Population::sample(PopulationConfig {
        n_users: 4,
        ..Default::default()
    });
    let windowing = Windowing::FIFTEEN_MIN;
    let console = CentralConsole::new(windowing.windows_per_week());

    for user in &pop.users {
        // Generate a week at count level and find a busy window.
        let week = synthgen::user_week_series(user, pop.config.seed, 0, windowing);
        let Some((w_idx, counts)) = week
            .windows
            .iter()
            .enumerate()
            .find(|(_, c)| {
                let total: u64 = (0..6).map(|i| c.0[i]).sum();
                (10..20_000).contains(&total)
            })
            .map(|(i, c)| (i, *c))
        else {
            continue;
        };

        // Render to packets and re-measure through the flow pipeline.
        let mut rng = stream_rng(99, user.id, 0);
        let flows = render_window_flows(user, &counts, w_idx, windowing, &mut rng);
        let frames = render_flows_to_frames(&flows, &mut rng);
        let mut ex = FlowExtractor::new(Default::default());
        for f in &frames {
            ex.push_frame(f.ts, &f.frame).expect("rendered frames parse");
        }
        let records = ex.finish();
        let series = extract_features(&records, user.addr, windowing, w_idx + 1);
        assert_eq!(series.windows[w_idx], counts, "measurement path agrees");

        // Configure a detector from the user's own training data and run it
        // over the measured window, batching alerts to the console.
        let train = EmpiricalDist::from_counts(&week.feature(FeatureKind::TcpConnections));
        let mut det = Detector::new(user.id);
        det.set_threshold(
            FeatureKind::TcpConnections,
            ThresholdHeuristic::P99.threshold(&train),
        );
        let mut batcher = AlertBatcher::new(96);
        for alert in det.evaluate(w_idx, &series.windows[w_idx]) {
            batcher.push(alert);
        }
        for batch in batcher.flush() {
            console.ingest_batch(&batch);
        }
    }

    // The console accounted for whatever fired, without losing anything.
    let stats = console.stats();
    assert_eq!(
        stats.total_alerts,
        stats.per_user.values().sum::<u64>(),
        "console bookkeeping is consistent"
    );
}

/// Policies configured on generated traces must satisfy the structural
/// relationships the paper relies on.
#[test]
fn policy_structure_on_generated_population() {
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 50,
        n_weeks: 2,
        ..Default::default()
    });
    let ds = corpus.dataset(FeatureKind::TcpConnections, 0);

    let p99 = ThresholdHeuristic::P99;
    let homog = Policy {
        grouping: Grouping::Homogeneous,
        heuristic: p99.clone(),
    }
    .configure(&ds.train);
    let full = Policy {
        grouping: Grouping::FullDiversity,
        heuristic: p99.clone(),
    }
    .configure(&ds.train);
    let partial = Policy {
        grouping: Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
        heuristic: p99,
    }
    .configure(&ds.train);

    // One threshold under monoculture, per-user under diversity.
    assert_eq!(homog.populated_groups(), 1);
    assert_eq!(full.populated_groups(), 50);
    assert!(partial.populated_groups() <= 8 && partial.populated_groups() >= 2);

    // The monoculture threshold sits above most users' own thresholds
    // (the heavy users drag it up) — the paper's core observation.
    let above = full
        .thresholds
        .iter()
        .filter(|&&t| homog.thresholds[0] > t)
        .count();
    assert!(
        above * 3 > 50 * 2,
        "global threshold exceeds at least 2/3 of personal thresholds ({above}/50)"
    );

    // Partial thresholds track user heaviness in aggregate: the heavier
    // half of the population averages a (much) higher group threshold than
    // the lighter half. (Strict pairwise monotonicity is not guaranteed —
    // bands are keyed on the interpolated q99 while thresholds come from
    // pooled discrete quantiles.)
    let mut idx: Vec<usize> = (0..50).collect();
    idx.sort_by(|&a, &b| full.thresholds[a].total_cmp(&full.thresholds[b]));
    let mean_partial = |users: &[usize]| -> f64 {
        users.iter().map(|&u| partial.thresholds[u]).sum::<f64>() / users.len() as f64
    };
    assert!(
        mean_partial(&idx[25..]) > 2.0 * mean_partial(&idx[..25]),
        "heavier half gets far higher partial thresholds"
    );
}

/// The naive attack sweep and the mimicry budget must tell the same story
/// as the evaluation metrics for the same thresholds.
#[test]
fn attack_views_are_consistent_with_evaluation() {
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 40,
        n_weeks: 2,
        ..Default::default()
    });
    let ds = corpus.dataset(FeatureKind::TcpConnections, 0);
    let cfg = EvalConfig {
        w: 0.5,
        sweep: ds.default_sweep(),
    };

    let full = evaluate_policy(
        &ds,
        &Policy {
            grouping: Grouping::FullDiversity,
            heuristic: ThresholdHeuristic::P99,
        },
        &cfg,
    );
    let thresholds: Vec<f64> = full.users.iter().map(|u| u.threshold).collect();

    // A maximal naive attack alarms everyone.
    let attack = NaiveAttack::default_for(corpus.config.windowing());
    let huge = ds.max_observed() * 2.0;
    let frac = detection_curve(&ds.test_counts, &thresholds, &[huge], &attack)[0].1;
    assert_eq!(frac, 1.0);

    // Mimicry budgets are bounded by the thresholds themselves.
    let budgets = hidden_traffic(&ds.train, &thresholds, 0.9);
    for (b, &t) in budgets.iter().zip(&thresholds) {
        assert!((b.budget as f64) <= t, "budget {} <= threshold {t}", b.budget);
    }
}

/// Storm replay, sentinels and best-user lists compose.
#[test]
fn sentinels_cover_storm_for_the_population() {
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 60,
        n_weeks: 2,
        ..Default::default()
    });
    let feature = FeatureKind::DistinctConnections;
    let ds = corpus.dataset(feature, 0);
    let thresholds = Policy {
        grouping: Grouping::FullDiversity,
        heuristic: ThresholdHeuristic::P99,
    }
    .configure(&ds.train)
    .thresholds;

    let zombie = storm_week_series(&StormConfig::default(), corpus.config.windowing(), 0);
    let zombie_counts = zombie.feature(feature);
    let perfs = replay_population(&ds.test_counts, &zombie_counts, &thresholds);
    assert_eq!(perfs.len(), 60);

    // The most sensitive users detect (weakly) more than the population
    // median — the premise of collaborative detection.
    let sentinels = best_users(&thresholds, 10);
    let mut detections: Vec<f64> = perfs.iter().map(|p| p.detection).collect();
    let sentinel_mean = sentinels
        .iter()
        .map(|&u| perfs[u].detection)
        .sum::<f64>()
        / 10.0;
    detections.sort_by(|a, b| a.total_cmp(b));
    let median = detections[30];
    assert!(
        sentinel_mean >= median - 1e-9,
        "sentinels ({sentinel_mean:.3}) at least as good as the median user ({median:.3})"
    );
}
