//! Acceptance suite for the live control plane: validated hot-reload
//! config, crash-safe journaled operator commands, and the admin
//! endpoint.
//!
//! The contracts under test:
//!
//! * **reject-and-keep-old** — an invalid reload is refused atomically:
//!   the prior generation stays live (old values provably in effect) and
//!   a `config_rejected` event lands in the ring;
//! * **command crash safety** — an operator command killed mid-WAL-record
//!   recovers to *not applied*; killed between apply and ack it recovers
//!   to *applied exactly once*; and a seeded ≥10-point kill sweep over
//!   the whole scripted operator timeline (drain/pin/undrain, canary
//!   rollout + force-rollback, reloads) recovers a hosts CSV
//!   byte-identical to an uninterrupted run;
//! * **admin totality** — the HTTP/1.0 admin plane is a total function
//!   of its input: hostile, truncated, oversized, or random requests get
//!   a well-formed 4xx, never a panic or a hang.

use experiments::controlplane::{hosts_csv, run, ControlScenario};
use experiments::daemon::build_batches_for;
use experiments::{Corpus, CorpusConfig};
use faultsim::{command_kill_points, KillPoint};
use fleetd::admin::respond;
use fleetd::{
    AdminConfig, AdminHandler, AdminServer, ControlCommand, Daemon, DaemonConfig, DaemonControl,
    DaemonError, FleetConfig, KillSwitch,
};
use proptest::prelude::*;

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("control-accept-{}-{}-{}", tag, std::process::id(), n))
}

fn small_corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        n_users: 8,
        n_weeks: 2,
        ..CorpusConfig::small()
    })
}

// ---------------------------------------------------------------------------
// Reject-and-keep-old reload semantics
// ---------------------------------------------------------------------------

#[test]
fn invalid_reload_keeps_prior_generation_provably_live() {
    let dir = unique_dir("reload");
    let cfg = DaemonConfig::default();
    let (mut d, _) = Daemon::open(&dir, cfg).unwrap();

    // A valid reload through the operator's own config format.
    let fc = FleetConfig::parse("snapshot_every = 333\n").unwrap();
    assert_eq!(d.reload(&fc.daemon).unwrap(), 2);
    assert_eq!(d.config().snapshot_every, 333);

    // A structural change arrives bundled with an otherwise-tempting
    // live change: the reload must be rejected as a unit.
    let bad_text = format!(
        "n_shards = {}\nsnapshot_every = 999\n",
        cfg.n_shards + 1
    );
    let bad = FleetConfig::parse(&bad_text).unwrap();
    let err = match d.reload(&bad.daemon) {
        Err(DaemonError::Config(msg)) => msg,
        other => panic!("structural reload must be rejected, got {other:?}"),
    };
    assert!(err.contains("restart"), "rejection names the restart rule: {err}");

    // The prior generation is provably live: generation unmoved, every
    // old value still in effect — including the live-appliable field the
    // rejected config tried to smuggle in.
    assert_eq!(d.config_generation(), 2, "generation must not advance");
    assert_eq!(d.config().snapshot_every, 333, "old live value still in effect");
    assert_eq!(d.config().n_shards, cfg.n_shards, "structure untouched");
    assert!(d.events().contains("fleetd.control", "config_rejected"));

    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Command-journal crash safety: the two kill classes, isolated
// ---------------------------------------------------------------------------

#[test]
fn command_killed_mid_wal_record_recovers_to_not_applied() {
    let dir = unique_dir("torn");
    let cfg = DaemonConfig::default();
    let mut kill = KillSwitch::none();
    {
        let (mut d, _) = Daemon::open(&dir, cfg).unwrap();
        // Tear the very next WAL write a few bytes in: the command
        // record is half on disk when the process dies.
        kill.rearm(Some(KillPoint::AtWalByte {
            offset: kill.wal_bytes() + 2,
            torn: 3,
        }));
        let err = d.command(ControlCommand::DrainShard { shard: 1 }, &mut kill);
        assert!(matches!(err, Err(DaemonError::Killed)));
    }
    let (d, rec) = Daemon::open(&dir, cfg).unwrap();
    assert!(
        d.drained_shards().is_empty(),
        "a torn command record must recover to not-applied"
    );
    assert!(rec.wal_torn_bytes > 0, "the torn tail was found and truncated");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn command_killed_between_apply_and_ack_recovers_to_applied_once() {
    let dir = unique_dir("ack");
    let cfg = DaemonConfig::default();
    let mut kill = KillSwitch::none();
    {
        let (mut d, _) = Daemon::open(&dir, cfg).unwrap();
        // The record is durable and applied; the crash hits before the
        // operator ever sees the acknowledgement.
        kill.rearm(Some(KillPoint::AfterCommands(1)));
        let err = d.command(ControlCommand::DrainShard { shard: 1 }, &mut kill);
        assert!(matches!(err, Err(DaemonError::Killed)));
    }
    let (d, rec) = Daemon::open(&dir, cfg).unwrap();
    assert_eq!(
        d.drained_shards(),
        vec![1],
        "an acked-but-unacknowledged command replays to applied exactly once"
    );
    assert_eq!(rec.wal_commands, 1, "one command record replayed");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// The headline sweep: ≥10 seeded kill points over the operator script
// ---------------------------------------------------------------------------

#[test]
fn ten_point_command_kill_sweep_recovers_byte_identical_csvs() {
    let corpus = small_corpus();
    let scenario = ControlScenario::default();
    let batches = build_batches_for(&corpus, scenario.feature, scenario.batch_windows, &[]);

    let ref_dir = unique_dir("sweep-ref");
    let reference = run(&ref_dir, &scenario, &batches, &[]).unwrap();
    std::fs::remove_dir_all(&ref_dir).unwrap();
    reference.check(&scenario).unwrap();
    let ref_csv = hosts_csv(&reference);

    // Seeded schedule across every kill class the command journal can
    // meet: batch boundaries, raw WAL byte offsets (clean and torn —
    // including torn command records), and post-command ack windows.
    let kills = command_kill_points(
        0xC0DE_CAFE,
        12,
        reference.total_applied,
        reference.total_wal_bytes,
        reference.total_commands as u32,
    );
    assert!(kills.len() >= 10, "the sweep must schedule at least 10 points");

    let kill_dir = unique_dir("sweep-kill");
    let killed = run(&kill_dir, &scenario, &batches, &kills).unwrap();
    std::fs::remove_dir_all(&kill_dir).unwrap();
    killed.check(&scenario).unwrap();
    assert!(killed.recovery.kills > 0, "the schedule must actually fire");
    assert!(killed.recovery.lifetimes > 1, "recovery must actually happen");
    assert_eq!(
        hosts_csv(&killed),
        ref_csv,
        "no kill placement may change a single output byte — commands are \
         fully-applied-or-not-applied"
    );
    // The scripted evidence also survived the crashes.
    assert!(killed.evidence.rollback_operator);
    assert!(killed.evidence.drain_refused);
}

// ---------------------------------------------------------------------------
// Admin endpoint totality
// ---------------------------------------------------------------------------

/// A handler that answers without touching a daemon, for totality tests.
struct Stub;

impl AdminHandler for Stub {
    fn metrics_text(&mut self) -> String {
        "# TYPE control_config_generation gauge\ncontrol_config_generation 1\n".into()
    }
    fn state_json(&mut self) -> String {
        "{\"config_generation\":1}".into()
    }
    fn reload(&mut self, _config_text: &str) -> Result<u64, String> {
        Err("stub rejects".into())
    }
    fn command(&mut self, _line: &str) -> Result<(), String> {
        Err("stub rejects".into())
    }
}

fn status_of(resp: &[u8]) -> u16 {
    let text = std::str::from_utf8(&resp[..resp.len().min(12)]).unwrap_or("");
    text.strip_prefix("HTTP/1.0 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[test]
fn hostile_requests_get_well_formed_4xx_responses() {
    let hostile: &[&[u8]] = &[
        b"",
        b"\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET /metrics\r\n\r\n",
        b"GET /metrics SPDY/3\r\n\r\n",
        b"FROB /metrics HTTP/1.0\r\n\r\n",
        b"GET /../etc/passwd HTTP/1.0\r\n\r\n",
        b"POST /reload HTTP/1.0\r\nContent-Length: oops\r\n\r\n",
        b"POST /reload HTTP/1.0\r\nContent-Length: 99999999999999999999\r\n\r\n",
        b"GET /metrics HTTP/1.0\r\nX: \xff\xfe\xfd\r\n\r\n",
        b"\xff\xff\xff\xff\r\n\r\n",
        b"GET  /metrics  HTTP/1.0\r\n\r\n",
    ];
    for raw in hostile {
        let resp = respond(raw, 4096, &mut Stub);
        let status = status_of(&resp);
        assert!(
            (400..=499).contains(&status),
            "hostile input must yield 4xx, got {status} for {raw:?}"
        );
        let text = String::from_utf8_lossy(&resp);
        assert!(text.contains("\r\n\r\n"), "response must be fully framed");
        assert!(text.contains("Connection: close"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The admin responder is a total function of the raw request bytes:
    /// any input gets exactly one well-formed, fully-framed HTTP/1.0
    /// response with a known status code.
    #[test]
    fn admin_responder_total_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        max in 16usize..4096,
    ) {
        let resp = respond(&bytes, max, &mut Stub);
        let status = status_of(&resp);
        prop_assert!(
            matches!(status, 200 | 400 | 404 | 405 | 408 | 413 | 422),
            "unknown status {status}"
        );
        let text = String::from_utf8_lossy(&resp);
        prop_assert!(text.starts_with("HTTP/1.0 "));
        prop_assert!(text.contains("\r\n\r\n"));
    }

    /// Seeding garbage *around* a valid request line must never crash
    /// either — header torture with a recognisable route.
    #[test]
    fn admin_responder_total_on_mangled_headers(
        junk in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut raw = b"POST /command HTTP/1.0\r\n".to_vec();
        raw.extend_from_slice(&junk);
        raw.extend_from_slice(b"\r\n\r\npin-threshold 0 42");
        let resp = respond(&raw, 4096, &mut Stub);
        prop_assert!(status_of(&resp) != 0, "must still answer with HTTP/1.0");
    }
}

#[test]
fn admin_endpoint_drives_a_live_daemon_over_tcp() {
    use std::io::{Read as _, Write as _};

    let dir = unique_dir("tcp");
    let cfg = DaemonConfig::default();
    let (mut d, _) = Daemon::open(&dir, cfg).unwrap();
    let mut kill = KillSwitch::none();
    let server = AdminServer::bind(0, AdminConfig::default()).unwrap();
    let port = server.port();

    let requests: Vec<Vec<u8>> = vec![
        b"POST /reload HTTP/1.0\r\nContent-Length: 21\r\n\r\nsnapshot_every = 257\n".to_vec(),
        format!(
            "POST /reload HTTP/1.0\r\nContent-Length: {}\r\n\r\nn_shards = {}\n",
            format!("n_shards = {}\n", cfg.n_shards + 1).len(),
            cfg.n_shards + 1
        )
        .into_bytes(),
        b"POST /command HTTP/1.0\r\nContent-Length: 20\r\n\r\npin-threshold 0 42.5".to_vec(),
        b"GET /metrics HTTP/1.0\r\n\r\n".to_vec(),
    ];
    let n = requests.len();
    let client = std::thread::spawn(move || -> Vec<String> {
        requests
            .into_iter()
            .map(|raw| {
                let mut s = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
                s.write_all(&raw).unwrap();
                let mut resp = String::new();
                s.read_to_string(&mut resp).unwrap();
                resp
            })
            .collect()
    });
    {
        let mut ctl = DaemonControl {
            daemon: &mut d,
            kill: &mut kill,
        };
        for _ in 0..n {
            server.serve_one(&mut ctl).unwrap();
        }
    }
    let responses = client.join().unwrap();

    assert!(responses[0].starts_with("HTTP/1.0 200"), "valid reload: {}", responses[0]);
    assert!(responses[0].contains("\"generation\":2"));
    assert!(responses[1].starts_with("HTTP/1.0 422"), "structural reload: {}", responses[1]);
    assert!(responses[1].contains("restart"));
    assert!(responses[2].starts_with("HTTP/1.0 200"), "pin command: {}", responses[2]);
    assert!(responses[3].starts_with("HTTP/1.0 200"));
    assert!(responses[3].contains("control_config_generation 2"));
    assert!(responses[3].contains("control_reloads_total{outcome=\"rejected\"} 1"));
    assert!(responses[3].contains("control_commands_total{command=\"pin-threshold\"} 1"));

    // The TCP-applied effects landed in the daemon itself.
    assert_eq!(d.config().snapshot_every, 257);
    assert_eq!(d.hosts().get(&0).and_then(|st| st.pinned), Some(42.5));

    std::fs::remove_dir_all(&dir).unwrap();
}
