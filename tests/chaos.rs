//! End-to-end fault-injection acceptance tests (ISSUE 2).
//!
//! Two guarantees, checked through the whole pipeline (corrupted capture →
//! degraded evaluation → faulty batch delivery → console):
//!
//! 1. **no panics, consistent accounting** — at every tested severity the
//!    chaos run completes and every cross-stage conservation law holds
//!    (nothing is silently created or destroyed; loss is counted);
//! 2. **faults off ⇒ bit-exact clean pipeline** — at severity 0 the
//!    degraded path reproduces the clean evaluators exactly and the
//!    rendered CSV artifact is byte-identical at any thread count.

use experiments::chaos::{self, ChaosConfig};
use experiments::{Corpus, CorpusConfig};
use faultsim::{FaultPlan, TelemetryFaults};
use flowtab::FeatureKind;

fn corpus(seed: u64) -> Corpus {
    Corpus::generate(CorpusConfig {
        n_users: 30,
        n_weeks: 2,
        seed,
        ..Default::default()
    })
}

/// (a) Seeded fault schedules up to 20% severity complete without panic,
/// across several fault seeds, and the loss/coverage counters always sum
/// consistently.
#[test]
fn chaos_pipeline_survives_all_severities() {
    let corpus = corpus(42);
    for fault_seed in [0xFA11, 0xBEEF, 7] {
        for severity in [0.0, 0.05, 0.2] {
            let r = chaos::run(
                &corpus,
                FeatureKind::TcpConnections,
                &ChaosConfig::new(fault_seed, severity),
            );
            r.check().unwrap_or_else(|e| {
                panic!("seed {fault_seed:#x} severity {severity}: {e}")
            });
        }
    }
}

/// (b) With faults disabled the chaos artifact is byte-identical across
/// thread counts, and identical to itself run-to-run: the fault layer and
/// the parallel engine are both invisible at severity 0.
#[test]
fn zero_fault_csv_byte_identical_across_thread_counts() {
    let run_once = |threads: usize| -> String {
        hids_core::set_threads(threads);
        let corpus = corpus(99);
        let r = chaos::run(
            &corpus,
            FeatureKind::TcpConnections,
            &ChaosConfig::new(0xFA11, 0.0),
        );
        r.check().expect("severity 0 invariants");
        chaos::table(&r).to_csv()
    };
    let single = run_once(1);
    let quad = run_once(4);
    hids_core::set_threads(0); // restore auto-detection for other tests
    assert_eq!(
        single.as_bytes(),
        quad.as_bytes(),
        "zero-fault chaos CSV differs across thread counts"
    );
}

/// Faulty runs are a pure function of `(corpus, config)` too — rendering
/// the same seeded schedule twice gives the same bytes.
#[test]
fn faulty_csv_reproducible_at_fixed_seed() {
    let corpus = corpus(7);
    let cfg = ChaosConfig::new(0xFA11, 0.2);
    let a = chaos::table(&chaos::run(&corpus, FeatureKind::UdpConnections, &cfg)).to_csv();
    let b = chaos::table(&chaos::run(&corpus, FeatureKind::UdpConnections, &cfg)).to_csv();
    assert_eq!(a.as_bytes(), b.as_bytes());
}

/// Telemetry fault logs agree with the masks they describe: total windows,
/// dropped windows, and the derived coverage all reconcile.
#[test]
fn telemetry_mask_accounting_reconciles() {
    let faults = TelemetryFaults {
        window_drop_rate: 0.15,
        dropout_prob: 0.3,
        dropout_max_windows: 40,
    };
    let (n_hosts, n_windows) = (25, 96);
    let (masks, log) = faults.apply(n_hosts, n_windows, 0xD0D0);
    assert_eq!(log.windows_total, (n_hosts * n_windows) as u64);
    let observed: u64 = masks
        .iter()
        .flat_map(|m| m.iter())
        .filter(|&&up| !up)
        .count() as u64;
    assert_eq!(log.windows_dropped, observed);
    let dark = masks.iter().filter(|m| m.iter().all(|&up| !up)).count();
    assert_eq!(log.hosts_fully_dark, dark as u64);
    let coverage = 1.0 - log.windows_dropped as f64 / log.windows_total as f64;
    assert!((log.coverage() - coverage).abs() < 1e-12);
}

/// A severity-0 plan really is a no-op end to end: the byte corruptor
/// returns the input unchanged and every telemetry mask is full.
#[test]
fn zero_severity_plan_is_identity() {
    let plan = FaultPlan::with_severity(123, 0.0);
    assert!(plan.is_none());
    let capture = vec![0xAB; 512];
    let (out, log) = plan.bytes.apply(&capture, plan.bytes_seed());
    assert_eq!(out, capture);
    assert!(log.is_clean());
    let (masks, tlog) = plan.telemetry.apply(4, 10, plan.telemetry_seed());
    assert!(masks.iter().all(|m| m.iter().all(|&up| up)));
    assert_eq!(tlog.windows_dropped, 0);
}
