//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serialises anything (reports are hand-written CSV/JSON), so this
//! stand-in provides marker traits plus a derive that emits empty impls.
//! If a future PR needs real serialisation, swap this for the actual
//! crates or grow these traits methods.

/// Marker for types that could be serialised.
pub trait Serialize {}

/// Marker for types that could be deserialised from borrowed data.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserialisable from owned data.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_for_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_for_primitives!(
    bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
