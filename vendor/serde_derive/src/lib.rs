//! Offline vendored stand-in for `serde_derive`.
//!
//! Emits empty `impl serde::Serialize` / `impl serde::Deserialize` marker
//! impls (the vendored `serde` traits have no methods). Parses the item
//! header with plain `proc_macro` token inspection — no syn/quote — which
//! covers the non-generic and simply-generic types this workspace derives
//! on.

// Compile-time diagnostics in a proc macro are panics by design; keep
// workspace panic gates from tripping on this stub.
#![allow(clippy::panic)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed header of a struct/enum definition: its name and the raw
/// generic parameter tokens (empty for non-generic types).
struct ItemHeader {
    name: String,
    generics: Vec<String>,
}

fn parse_header(input: TokenStream) -> ItemHeader {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (#[...]), visibility, and modifiers until the
    // `struct`/`enum`/`union` keyword.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the following [...] group.
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    break;
                }
                // `pub`, `pub(crate)` groups are consumed by the loop.
            }
            _ => {}
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other:?}"),
    };
    // Collect generic parameter *names* if a <...> list follows. Supports
    // plain lifetimes and type parameters with optional bounds; bails on
    // anything fancier.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut current = String::new();
            let mut at_param_start = true;
            let mut skipping_bounds = false;
            for tt in tokens.by_ref() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        if !current.is_empty() {
                            generics.push(std::mem::take(&mut current));
                        }
                        at_param_start = true;
                        skipping_bounds = false;
                        continue;
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                        skipping_bounds = true;
                        continue;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && at_param_start => {
                        current.push('\'');
                        continue;
                    }
                    TokenTree::Ident(id) if !skipping_bounds => {
                        if at_param_start || current == "'" {
                            current.push_str(&id.to_string());
                            at_param_start = false;
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            if !current.is_empty() {
                generics.push(current);
            }
        }
    }
    ItemHeader { name, generics }
}

fn render_impl(header: &ItemHeader, trait_path: &str, extra_lifetime: Option<&str>) -> String {
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        params.push(lt.to_string());
    }
    params.extend(header.generics.iter().cloned());
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let ty_generics = if header.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", header.generics.join(", "))
    };
    format!(
        "#[automatically_derived] impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}",
        name = header.name
    )
}

/// Derive the (empty) `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    render_impl(&header, "serde::Serialize", None)
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

/// Derive the (empty) `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    render_impl(&header, "serde::Deserialize<'de>", Some("'de"))
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

// Silence the unused warning for Delimiter (kept for future attribute
// handling if a type ever needs it).
#[allow(dead_code)]
fn _unused(d: Delimiter) -> Delimiter {
    d
}
