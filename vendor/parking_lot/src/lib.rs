//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps the std synchronisation primitives with parking_lot's
//! poison-free API (`lock()` returns the guard directly). Performance is
//! std's, which is plenty for this workspace's alert volumes.

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
