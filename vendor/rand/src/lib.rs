//! Offline vendored stand-in for the `rand` crate.
//!
//! The workspace pins its external dependencies to local path crates so it
//! builds with no registry access. This crate implements exactly the API
//! subset the workspace uses — `Rng::{random, random_range}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` — over a deterministic
//! xoshiro256++ generator seeded via SplitMix64. Streams are stable across
//! platforms and releases of this repo (they are part of the reproduction's
//! determinism contract), but differ from upstream `rand`'s StdRng.

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of a supported type (`f64` in `[0, 1)`, full-range
    /// integers, `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from an integer range (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their "standard" domain.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform-sampling primitive over `[lo, hi)` / `[lo, hi]`.
///
/// Mirrors rand's `SampleUniform` so the *generic* `SampleRange` impls
/// below leave the element type as a free inference variable — integer
/// literals in `rng.random_range(0..5)` then unify with the surrounding
/// expression (e.g. `usize` when used as a slice index), exactly as with
/// the real crate.
pub trait SampleUniform: Sized {
    /// Draw uniformly from `lo..hi` (`inclusive = false`) or `lo..=hi`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as $wide as u64).wrapping_sub(lo as $wide as u64);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                lo.wrapping_add(reduce_u64(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 as u64, u16 as u64, u32 as u64, u64 as u64, usize as u64,
    i8 as i64, i16 as i64, i32 as i64, i64 as i64, isize as i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                lo + (<$t as Standard>::sample(rng)) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Unbiased-enough multiply-shift reduction of a u64 into `[0, span)`.
fn reduce_u64(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic; the only constructor the
    /// workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// A small fast generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(0u64..=5);
            assert!(y <= 5);
            let z = r.random_range(-4i32..4);
            assert!((-4..4).contains(&z));
            let f = r.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn works_through_mut_ref() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut r = StdRng::seed_from_u64(4);
        let _ = takes_generic(&mut r);
        let _ = takes_generic(&mut &mut r);
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
