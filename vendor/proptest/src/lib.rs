//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, `Strategy` with `prop_map`, range and
//! `any::<T>()` strategies, `collection::vec`, `sample::Index`, `Just`,
//! `prop_oneof!`, and the `prop_assert*` macros. Sampling is deterministic
//! (seeded per test from the test's name), there is **no shrinking**, and
//! failures panic like ordinary `assert!`s with the case number included.
//!
//! Case count: `ProptestConfig::with_cases(n)` is honoured; the default is
//! 64 cases and can be raised with the `PROPTEST_CASES` env var.

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a of the name) and case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values passing `f` (resamples; gives up after 1000
    /// attempts like proptest's rejection cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Box the strategy (object form for heterogeneous collections).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Owned boxed strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence);
    }
}

/// Strategy producing a single constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.unit_f64() * 2e6 - 1e6;
        mag
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.below(0x7F - 0x20) + 0x20) as u32).unwrap()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

mod pattern;

/// String strategies from a regex-like pattern (subset: literals, char
/// classes, `{m,n}`/`{m}`/`*`/`+`/`?` quantifiers).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample_pattern(self, rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Acceptable size specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len_range)` — vectors with length drawn from the
    /// range and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Index sampling à la `proptest::sample`.

    use super::{Arbitrary, TestRng};

    /// An index into a collection of not-yet-known length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Resolve against a collection of length `len`.
        ///
        /// # Panics
        /// Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Runner configuration (only `cases` is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

pub mod prelude {
    //! Everything the `proptest!` macro and common strategies need.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( @cfg($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case as u64);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::for_case("t", 0);
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::for_case("t", 1);
        let s = crate::collection::vec(any::<u8>(), 3..7);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn pattern_strategy_shapes() {
        let mut rng = TestRng::for_case("t", 2);
        let s = "[a-z0-9]{1,20}";
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((1..=20).contains(&v.len()), "{v}");
            assert!(v.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn oneof_picks_all_arms() {
        let mut rng = TestRng::for_case("t", 3);
        let s = prop_oneof![Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end-to-end, including `mut` patterns.
        #[test]
        fn macro_end_to_end(mut v in crate::collection::vec(any::<u16>(), 0..8), x in 1u32..100) {
            v.push(0);
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(*v.last().unwrap(), 0);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
