//! Minimal regex-subset sampler backing `&str` strategies.
//!
//! Supported syntax: literal characters, character classes
//! (`[a-z0-9_.]`, ranges and literals, no negation), and the quantifiers
//! `{m}`, `{m,n}`, `*`, `+`, `?` applying to the preceding element.
//! Unbounded quantifiers cap at 8 repetitions.

use super::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum CharSet {
    Literal(char),
    /// Inclusive ranges; single literals inside a class become (c, c).
    Class(Vec<(char, char)>),
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Literal(c) => *c,
            CharSet::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = (hi as u64) - (lo as u64) + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick as u32)
                            .expect("class range stays in char space");
                    }
                    pick -= span;
                }
                unreachable!("pick < total")
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Element {
    set: CharSet,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Element> {
    let mut chars = pattern.chars().peekable();
    let mut elements: Vec<Element> = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars.next().expect("escape at end of class"),
                        Some(ch) => ch,
                        None => panic!("unterminated character class in {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            Some(']') | None => {
                                // Trailing '-' is a literal.
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                            }
                            Some(_) => {
                                let hi = chars.next().unwrap();
                                assert!(lo <= hi, "inverted range in {pattern:?}");
                                ranges.push((lo, hi));
                            }
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                CharSet::Class(ranges)
            }
            '\\' => CharSet::Literal(chars.next().expect("escape at end of pattern")),
            '.' => CharSet::Class(vec![(' ', '~')]),
            other => CharSet::Literal(other),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                if let Some((m, n)) = spec.split_once(',') {
                    let m: u32 = m.trim().parse().expect("quantifier min");
                    let n: u32 = if n.trim().is_empty() {
                        m + UNBOUNDED_CAP
                    } else {
                        n.trim().parse().expect("quantifier max")
                    };
                    (m, n)
                } else {
                    let m: u32 = spec.trim().parse().expect("quantifier count");
                    (m, m)
                }
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        elements.push(Element { set, min, max });
    }
    elements
}

/// Draw one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let elements = parse(pattern);
    let mut out = String::new();
    for el in &elements {
        let count = el.min + rng.below((el.max - el.min + 1) as u64) as u32;
        for _ in 0..count {
            out.push(el.set.sample(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::for_case("pat", 0);
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
    }

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::for_case("pat", 1);
        for _ in 0..200 {
            let s = sample_pattern("[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn escapes_and_optional() {
        let mut rng = TestRng::for_case("pat", 2);
        for _ in 0..50 {
            let s = sample_pattern(r"x\.y?", &mut rng);
            assert!(s == "x.y" || s == "x.");
        }
    }
}
