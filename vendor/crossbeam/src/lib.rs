//! Offline vendored stand-in for `crossbeam`.
//!
//! Implements the API subset this workspace uses: `thread::scope` with
//! crossbeam's closure signature (spawned closures receive `&Scope` so
//! they can spawn siblings), backed by `std::thread::scope`, and
//! `channel::{bounded, unbounded}` backed by `std::sync::mpsc`.

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    use std::any::Any;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// so it can spawn further siblings (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before this returns. Always `Ok` (a panicking
    /// child propagates its panic, as with `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! MPMC-ish channels over `std::sync::mpsc` (MPSC is all this
    //! workspace needs: many senders, one receiving worker).

    use std::sync::mpsc;

    /// Sending half of a channel.
    pub struct Sender<T>(Inner<T>);

    enum Inner<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Inner::Bounded(s) => Inner::Bounded(s.clone()),
                Inner::Unbounded(s) => Inner::Unbounded(s.clone()),
            })
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    impl<T> Sender<T> {
        /// Send a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Inner::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block for the next value; `Err` when all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Iterate until every sender disconnects.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// A channel holding at most `capacity` in-flight values.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(Inner::Bounded(tx)), Receiver(rx))
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn bounded_channel_fan_in() {
        let (tx, rx) = crate::channel::bounded::<u32>(4);
        let senders: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        for s in senders {
            s.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 400);
        assert_eq!(got[0], 0);
        assert_eq!(*got.last().unwrap(), 399);
    }
}
