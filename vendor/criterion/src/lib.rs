//! Offline vendored stand-in for `criterion`.
//!
//! Real wall-clock measurement with warmup, multiple samples, and a
//! median ± spread report — enough to compare before/after kernels — but
//! none of criterion's statistical machinery, HTML reports, or baselines.
//!
//! CLI: `--test` runs every benchmark routine once (smoke mode, used by
//! `scripts/ci.sh`); a bare positional argument filters benchmark ids by
//! substring; other flags are accepted and ignored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the
/// stand-in always regenerates inputs per timed call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Units for reported throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration, filled by the timing loop.
    measured_ns: f64,
}

#[derive(Clone, Copy)]
enum Mode {
    Test,
    Measure {
        sample_size: usize,
        measurement: Duration,
    },
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
            }
            Mode::Measure {
                sample_size,
                measurement,
            } => {
                // Warmup + per-iteration estimate.
                let mut iters = 1u64;
                let per_iter = loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(25) {
                        break elapsed.as_secs_f64() / iters as f64;
                    }
                    iters = iters.saturating_mul(2);
                };
                let per_sample = measurement.as_secs_f64() / sample_size as f64;
                let iters_per_sample = ((per_sample / per_iter) as u64).max(1);
                let mut samples = Vec::with_capacity(sample_size);
                for _ in 0..sample_size {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
                }
                self.measured_ns = median(&mut samples) * 1e9;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                let input = setup();
                black_box(routine(input));
            }
            Mode::Measure { sample_size, .. } => {
                let mut samples = Vec::with_capacity(sample_size);
                for _ in 0..sample_size {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    samples.push(start.elapsed().as_secs_f64());
                }
                self.measured_ns = median(&mut samples) * 1e9;
            }
        }
    }

    /// `iter_batched` variant taking inputs by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        match self.mode {
            Mode::Test => {
                let mut input = setup();
                black_box(routine(&mut input));
            }
            Mode::Measure { sample_size, .. } => {
                let mut samples = Vec::with_capacity(sample_size);
                for _ in 0..sample_size {
                    let mut input = setup();
                    let start = Instant::now();
                    black_box(routine(&mut input));
                    samples.push(start.elapsed().as_secs_f64());
                }
                self.measured_ns = median(&mut samples) * 1e9;
            }
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measurement: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filter: None,
            measurement: Duration::from_millis(800),
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Build from command-line arguments (see module docs for the subset
    /// understood).
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "-t" => c.test_mode = true,
                a if a.starts_with('-') => {} // accepted, ignored
                a => c.filter = Some(a.to_string()),
            }
        }
        c
    }

    /// Override measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let group = self.default_sample_size;
        self.run_one(id.to_string(), None, group, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mode = if self.test_mode {
            Mode::Test
        } else {
            Mode::Measure {
                sample_size,
                measurement: self.measurement,
            }
        };
        let mut bencher = Bencher {
            mode,
            measured_ns: 0.0,
        };
        if self.test_mode {
            print!("Testing {id} ... ");
            f(&mut bencher);
            println!("ok");
            return;
        }
        f(&mut bencher);
        let ns = bencher.measured_ns;
        let mut line = format!("{id:<48} time: [{}]", format_time(ns));
        if let Some(tp) = throughput {
            let per_sec = match tp {
                Throughput::Bytes(b) => format!("{:.1} MiB/s", b as f64 / (ns * 1e-9) / (1 << 20) as f64),
                Throughput::Elements(e) => format!("{:.3} Melem/s", e as f64 / (ns * 1e-9) / 1e6),
            };
            line.push_str(&format!("  thrpt: [{per_sec}]"));
        }
        println!("{line}");
    }

    /// Print the closing summary (no-op; per-bench lines already printed).
    pub fn final_summary(&mut self) {}
}

/// Group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Report throughput alongside timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Define and immediately run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(id, throughput, sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(2.0e9).ends_with(" s"));
    }

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_reports_nonzero() {
        let mut c = Criterion {
            measurement: Duration::from_millis(20),
            default_sample_size: 3,
            ..Criterion::default()
        };
        let mut bencher_ns = 0.0;
        c.run_one("t".into(), None, 3, |b| {
            b.iter(|| std::hint::black_box((0..100).sum::<u64>()));
            bencher_ns = b.measured_ns;
        });
        assert!(bencher_ns > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("match".into()),
            ..Criterion::default()
        };
        let mut runs = 0;
        c.bench_function("no-hit", |b| b.iter(|| runs += 1));
        c.bench_function("match-this", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
