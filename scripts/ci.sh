#!/usr/bin/env sh
# Tier-1 verification gate (referenced from ROADMAP.md).
#
# Builds the workspace, runs the root-package test suites, then smoke-runs
# every criterion bench routine once (`-- --test` executes each benchmark
# body without timing it, catching bit-rot in the bench harnesses).
#
# The fault-injection smoke stage runs the chaos experiment at a fixed
# seed and severity; `repro` prints a warning on any conservation-law
# violation, and the root `tests/chaos.rs` suite (run by `cargo test`)
# asserts the same laws hard. The clippy gate holds every workspace crate's
# library code to the no-unwrap/no-panic bar the fleetd supervisor model
# promises (test code is exempt: the gate is --lib only).
#
# The daemon stages are the crash-safety gate: the root `tests/daemon.rs`
# suite replays >=20 seeded kill points (including torn WAL tails) and
# asserts byte-identical recovery, and the `repro daemon` smoke re-runs
# the scenario under a seeded kill schedule at a fixed seed. The rollout
# smoke drives the threshold-lifecycle (canary/rollback) scenarios the
# same way, including the rollback-identity and epoch-boundary
# kill-recovery self-checks.
#
# The cluster stages are the distribution gate: the root `tests/cluster.rs`
# suite asserts byte-identical merged output across 1/2/4 nodes and a
# >=12-point node-kill/process-kill sweep, and the `repro cluster` smoke
# re-runs the 4-node scenario under a seeded kill schedule, printing a
# warning on any determinism or kill-recovery self-check failure (which
# we grep for), with the fleetd_cluster_* metric families asserted
# present in the exported snapshot.
#
# The metrics smoke stage writes a deterministic Prometheus snapshot via
# `--metrics-out` and greps for one metric family per instrumented
# subsystem; the root `tests/metrics.rs` suite (run by `cargo test`)
# asserts the stronger contracts (byte-identical across thread counts,
# conservation laws).
#
# The ingest stages are the wire-hardening gate: the root `tests/ingest.rs`
# suite asserts severity-0 byte-identity to the synthetic path across
# thread counts, zero-panic conservation across the severity sweep, flood
# degradation, DNS case-folding, and parser totality (pinned hostile
# corpus + property suites). The `repro ingest` smoke re-runs the
# identity self-check and a seeded flood at a fixed severity, with the
# ingest_* metric families asserted present in the exported snapshot.
#
# The control-plane stages are the operator-surface gate: the root
# `tests/control.rs` suite asserts reject-and-keep-old reloads, the two
# command-journal crash classes, a >=10-point seeded kill sweep with
# byte-identical recovery, and totality of the admin HTTP core under
# hostile/property-generated requests. The `repro controlplane` smoke
# replays the scripted operator timeline under a seeded kill schedule
# with the admin endpoint live, exercising reload + invalid reload +
# pin-threshold over raw TCP; we grep the control_* metric families, the
# journaled config_rejected event, and every self-check line.
#
# The pipeline stages are the end-to-end gate: the root `tests/pipeline.rs`
# suite asserts the cross-stage laws (loss-free clean capture, packet-path
# feature identity, exact sanitize→decode wire round trip, the paper's
# grouping ordering, exact replay), and the `repro pipeline` smoke drives
# pcap → decode → sanitize → features → sweep at a fixed seed, printing
# each self-check line (which we grep for) and recording the end-to-end
# throughput figure in BENCH_pipeline.json (asserted nonzero).
#
# The megafleet smoke runs the sketch-backed fleet path at reduced scale
# with its health gauges exported, asserting the tailstats_sketch_*
# families exist and that the run's internal merge-order / rank-budget
# self-checks pass (a violated invariant prints a warning we grep for).
# The sketchablate smoke verifies the sketch-vs-exact rank error bound on
# a small corpus the same way.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -q --test daemon
cargo test -q --test rollout
cargo test -q --test cluster
cargo test -q --test metrics
cargo test -q --test ingest
cargo test -q --test pipeline
cargo test -q --test control
cargo clippy -q \
    -p netpkt -p flowtab -p tailstats -p synthgen -p hids-core \
    -p attacksim -p itconsole -p faultsim -p fleetd -p experiments -p bench \
    -p hids-metrics \
    --lib --no-deps -- -D clippy::unwrap_used -D clippy::panic
cargo run -q --release -p experiments --bin repro -- \
    --users 40 --weeks 2 --fault-seed 64273 --fault-rate 0.2 chaos
cargo run -q --release -p experiments --bin repro -- \
    --users 16 --weeks 2 --seed 42 --fault-seed 64273 --fault-rate 0.2 daemon
cargo run -q --release -p experiments --bin repro -- \
    --users 16 --weeks 2 --seed 42 --fault-seed 64273 --fault-rate 0.2 rollout
metrics_out="target/ci-metrics.prom"
rm -f "$metrics_out"
cargo run -q --release -p experiments --bin repro -- \
    --users 16 --weeks 2 --seed 42 --fault-seed 64273 --fault-rate 0.2 \
    --metrics-out "$metrics_out" daemon
for family in fleetd_batches_total fleetd_snapshots_written_total \
    itc_delivery_batches_total hids_degraded_hosts hids_sweep_tables_total \
    fleetd_harness_lifetimes_total; do
    grep -q "^# TYPE $family " "$metrics_out" || {
        echo "ci.sh: metrics smoke missing family: $family" >&2
        exit 1
    }
done
cluster_metrics="target/ci-cluster.prom"
cluster_log="target/ci-cluster.log"
rm -f "$cluster_metrics" "$cluster_log"
cargo run -q --release -p experiments --bin repro -- \
    --users 16 --weeks 2 --seed 42 --nodes 4 --kill-seed 64273 \
    --fault-seed 64273 --fault-rate 0.2 --metrics-out "$cluster_metrics" \
    cluster 2> "$cluster_log" > /dev/null
for family in fleetd_cluster_batches_total fleetd_cluster_nodes \
    fleetd_cluster_node_deaths_total fleetd_cluster_handoffs_total \
    fleetd_cluster_wire_frames_total fleetd_cluster_harness_lifetimes_total; do
    grep -q "^# TYPE $family " "$cluster_metrics" || {
        echo "ci.sh: cluster smoke missing family: $family" >&2
        exit 1
    }
done
grep -q "cluster determinism check (4 nodes vs 1)" "$cluster_log" || {
    echo "ci.sh: cluster determinism check did not run" >&2
    cat "$cluster_log" >&2
    exit 1
}
grep -q "cluster kill-recovery check:" "$cluster_log" || {
    echo "ci.sh: cluster kill-recovery check did not run" >&2
    cat "$cluster_log" >&2
    exit 1
}
if grep -q "FAILED" "$cluster_log"; then
    echo "ci.sh: cluster self-check failed" >&2
    cat "$cluster_log" >&2
    exit 1
fi
ingest_metrics="target/ci-ingest.prom"
ingest_log="target/ci-ingest.log"
rm -f "$ingest_metrics" "$ingest_log"
cargo run -q --release -p experiments --bin repro -- \
    --users 16 --weeks 2 --seed 42 --fault-seed 64273 --fault-severity 0.2 \
    --metrics-out "$ingest_metrics" ingest 2> "$ingest_log" > /dev/null
for family in ingest_datagrams_total ingest_malformed_total \
    ingest_sources ingest_dns_names_total; do
    grep -q "^# TYPE $family " "$ingest_metrics" || {
        echo "ci.sh: ingest smoke missing family: $family" >&2
        exit 1
    }
done
grep -q "ingest identity check: severity-0 hosts CSV identical" "$ingest_log" || {
    echo "ci.sh: ingest identity check did not run" >&2
    cat "$ingest_log" >&2
    exit 1
}
grep -q "ingest flood check:" "$ingest_log" || {
    echo "ci.sh: ingest flood check did not run" >&2
    cat "$ingest_log" >&2
    exit 1
}
if grep -q "FAILED" "$ingest_log"; then
    echo "ci.sh: ingest self-check failed" >&2
    cat "$ingest_log" >&2
    exit 1
fi
control_metrics="target/ci-control.prom"
control_log="target/ci-control.log"
rm -f "$control_metrics" "$control_log"
cargo run -q --release -p experiments --bin repro -- \
    --users 16 --weeks 2 --seed 42 --fault-seed 64273 --fault-rate 0.2 \
    --admin-port 18141 --metrics-out "$control_metrics" \
    controlplane 2> "$control_log" > /dev/null
for family in control_config_generation control_reloads_total \
    control_commands_total control_drained_shards; do
    grep -q "^# TYPE $family " "$control_metrics" || {
        echo "ci.sh: controlplane smoke missing family: $family" >&2
        exit 1
    }
done
grep -q "# event .* fleetd\.control config_rejected" "$control_metrics" || {
    echo "ci.sh: controlplane smoke missing config_rejected event" >&2
    exit 1
}
grep -q "controlplane script check:" "$control_log" || {
    echo "ci.sh: controlplane script check did not run" >&2
    cat "$control_log" >&2
    exit 1
}
grep -q "controlplane determinism check: hosts CSV identical" "$control_log" || {
    echo "ci.sh: controlplane determinism check did not run" >&2
    cat "$control_log" >&2
    exit 1
}
grep -q "controlplane kill-recovery check:" "$control_log" || {
    echo "ci.sh: controlplane kill-recovery check did not run" >&2
    cat "$control_log" >&2
    exit 1
}
grep -q "controlplane admin check: reload applied at generation 2" "$control_log" || {
    echo "ci.sh: controlplane admin check did not run" >&2
    cat "$control_log" >&2
    exit 1
}
if grep -q "FAILED" "$control_log"; then
    echo "ci.sh: controlplane self-check failed" >&2
    cat "$control_log" >&2
    exit 1
fi
pipeline_out="target/ci-pipeline"
pipeline_log="target/ci-pipeline.log"
rm -rf "$pipeline_out"
rm -f "$pipeline_log"
cargo run -q --release -p experiments --bin repro -- \
    --seed 7 --out "$pipeline_out" pipeline 2> "$pipeline_log" > /dev/null
for check in "pipeline capture check: clean pcap loss-free" \
    "pipeline feature check: packet-path features identical" \
    "pipeline wire check:" \
    "pipeline throughput:"; do
    grep -q "$check" "$pipeline_log" || {
        echo "ci.sh: pipeline self-check missing: $check" >&2
        cat "$pipeline_log" >&2
        exit 1
    }
done
if grep -q "FAILED" "$pipeline_log"; then
    echo "ci.sh: pipeline self-check failed" >&2
    cat "$pipeline_log" >&2
    exit 1
fi
grep -Eq '"end_to_end_events_per_sec": [1-9][0-9]*' \
    "$pipeline_out/BENCH_pipeline.json" || {
    echo "ci.sh: BENCH_pipeline.json missing nonzero events/sec" >&2
    cat "$pipeline_out/BENCH_pipeline.json" >&2
    exit 1
}
cargo bench -p bench --bench pipeline -- --test
mega_metrics="target/ci-megafleet.prom"
mega_log="target/ci-megafleet.log"
rm -f "$mega_metrics" "$mega_log"
cargo run -q --release -p experiments --bin repro -- \
    --users 20000 --sketch-eps 0.01 --metrics-out "$mega_metrics" \
    megafleet 2> "$mega_log"
for family in tailstats_sketch_bytes_total tailstats_sketch_peak_host_bytes \
    tailstats_sketch_compactions_total tailstats_sketch_rank_error_ppm_max; do
    grep -q "^# TYPE $family " "$mega_metrics" || {
        echo "ci.sh: megafleet smoke missing family: $family" >&2
        exit 1
    }
done
if grep -q "megafleet invariant violated" "$mega_log"; then
    echo "ci.sh: megafleet self-check failed" >&2
    cat "$mega_log" >&2
    exit 1
fi
ablate_log="target/ci-sketchablate.log"
rm -f "$ablate_log"
cargo run -q --release -p experiments --bin repro -- \
    --users 40 --weeks 2 --sketch-eps 0.05 sketchablate 2> "$ablate_log" \
    > /dev/null
grep -q "sketchablate self-check: worst rank deviation" "$ablate_log" || {
    echo "ci.sh: sketchablate rank bound violated" >&2
    cat "$ablate_log" >&2
    exit 1
}
cargo bench -p bench -- --test

echo "ci.sh: all gates passed"
