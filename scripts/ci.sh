#!/usr/bin/env sh
# Tier-1 verification gate (referenced from ROADMAP.md).
#
# Builds the workspace, runs the root-package test suites, then smoke-runs
# every criterion bench routine once (`-- --test` executes each benchmark
# body without timing it, catching bit-rot in the bench harnesses).
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench -p bench -- --test

echo "ci.sh: all gates passed"
