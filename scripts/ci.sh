#!/usr/bin/env sh
# Tier-1 verification gate (referenced from ROADMAP.md).
#
# Builds the workspace, runs the root-package test suites, then smoke-runs
# every criterion bench routine once (`-- --test` executes each benchmark
# body without timing it, catching bit-rot in the bench harnesses).
#
# The fault-injection smoke stage runs the chaos experiment at a fixed
# seed and severity; `repro` prints a warning on any conservation-law
# violation, and the root `tests/chaos.rs` suite (run by `cargo test`)
# asserts the same laws hard. The clippy gate keeps the packet-decode
# paths free of `unwrap()` (they must degrade, not panic).
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -q -p netpkt -p flowtab --lib -- -D clippy::unwrap_used
cargo run -q --release -p experiments --bin repro -- \
    --users 40 --weeks 2 --fault-seed 64273 --fault-rate 0.2 chaos
cargo bench -p bench -- --test

echo "ci.sh: all gates passed"
